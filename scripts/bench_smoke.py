#!/usr/bin/env python
"""CI smoke benchmark: tiny-size timings of the repository's hot paths.

Runs a handful of representative workloads at deliberately tiny sizes —
batched vs sequential inference on the simulation engine, one training
stream, and two paper-experiment drivers — and writes the wall-clock
timings to a JSON file.  The CI pipeline uploads that file as an artifact
on every push, seeding a performance trajectory across PRs without gating
merges on noisy shared-runner timings.

Usage::

    python scripts/bench_smoke.py --output bench-smoke.json
    python scripts/bench_smoke.py --batch-size 32 --repeats 3
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict


def _time_best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn`` (min reduces noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_smoke(batch_size: int, repeats: int) -> Dict[str, object]:
    """Execute every smoke workload and return the timing report."""
    import numpy as np

    import repro
    from repro.core.config import SpikeDynConfig
    from repro.datasets.synthetic_mnist import SyntheticDigits
    from repro.experiments import (
        run_architecture_reduction,
        run_processing_time_study,
    )
    from repro.experiments.common import ExperimentScale
    from repro.models.spikedyn_model import SpikeDynModel

    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=40, t_sim=40.0, seed=0)
    source = SyntheticDigits(image_size=14, seed=0)
    images = source.generate(3, batch_size, rng=0)

    timings: Dict[str, float] = {}

    # Fixed reference workload used by bench_compare.py to normalize the
    # absolute timings: dividing every *_s metric by the machine's
    # calibration time cancels raw hardware speed, so a baseline recorded on
    # one machine gates meaningfully on another.  The workload deliberately
    # mirrors the simulation engine's profile — a Python loop over small
    # numpy operations (below BLAS threading thresholds), not one large
    # GEMM — and uses no repro code, so engine optimizations still register
    # as improvements instead of being normalized away.
    calib_rng = np.random.default_rng(0)
    calib_matrix = calib_rng.standard_normal((64, 256))
    calib_vector = calib_rng.standard_normal(256)

    def calibration() -> None:
        vector = calib_vector
        total = 0.0
        for _ in range(300):
            spikes = np.tanh(calib_matrix @ vector)
            vector = vector * 0.99
            vector[:64] += 0.01 * spikes
            total += float(spikes.sum())

    timings["calibration_s"] = _time_best_of(calibration, max(3, repeats))

    model = SpikeDynModel(config)
    trains = model.encode_batch(images)

    def sequential_inference() -> None:
        for train in trains:
            model.network.run_sample(train, learning=False)

    def batched_inference() -> None:
        model.network.run_batch(trains, learning=False)

    timings["inference_sequential_s"] = _time_best_of(sequential_inference, repeats)
    timings["inference_batched_s"] = _time_best_of(batched_inference, repeats)
    timings["inference_speedup_x"] = (
        timings["inference_sequential_s"] / timings["inference_batched_s"]
    )

    def training_stream() -> None:
        fresh = SpikeDynModel(config)
        for image in images[: max(2, batch_size // 8)]:
            fresh.train_sample(image)

    timings["training_stream_s"] = _time_best_of(training_stream, repeats)

    # Compute backends: dense reference vs sparse event-driven kernels on the
    # batched inference hot path.  The comparison runs at paper-like input
    # width (28x28) with a mid-size excitatory layer and a low-density random
    # spike train — the regime the sparse backend is built for; the tiny
    # encoder-driven workloads above stay on the dense default.
    backend_trains = (
        np.random.default_rng(42).random((16, 30, 784)) < 0.03
    )

    def backend_runner(backend: str):
        backend_config = SpikeDynConfig.scaled_down(
            n_input=784, n_exc=200, t_sim=30.0, seed=0, backend=backend
        )
        network = SpikeDynModel(backend_config).network
        return lambda: network.run_batch(backend_trains, learning=False)

    timings["backends_dense_s"] = _time_best_of(backend_runner("dense"),
                                                repeats)
    timings["backends_sparse_s"] = _time_best_of(backend_runner("sparse"),
                                                 repeats)
    timings["backends_speedup_x"] = (
        timings["backends_dense_s"] / timings["backends_sparse_s"]
    )
    # The newer backends on the same workload: float32 (half-memory state)
    # and the profiling auto-dispatcher (its runner's first, untimed call
    # profiles the workload's buckets; the timed passes measure dispatch).
    timings["backends_float32_s"] = _time_best_of(backend_runner("float32"),
                                                  repeats)
    auto_runner = backend_runner("auto")
    auto_runner()  # profiling pass, outside the clock
    timings["backends_auto_s"] = _time_best_of(auto_runner, repeats)
    # The event-queue engine on its native workload: long-horizon bursty
    # streams at sub-1% density, run through Network.run_events (analytic
    # silent-gap jumps).  A different regime from the batched grid above —
    # the clock-driven timings are not comparable to this key.
    from repro.snn.events import EventStream

    event_rng = np.random.default_rng(43)
    event_trains = np.zeros((800, 784), dtype=bool)
    for start in range(0, 800, 160):
        event_trains[start:start + 6] = event_rng.random((6, 784)) < 0.2
    event_stream = EventStream.from_dense(event_trains)
    eventqueue_config = SpikeDynConfig.scaled_down(
        n_input=784, n_exc=100, t_sim=800.0, seed=0, backend="eventqueue"
    )
    eventqueue_network = SpikeDynModel(eventqueue_config).network

    def eventqueue_runner() -> None:
        eventqueue_network.run_events(event_stream, learning=False)

    timings["backends_eventqueue_s"] = _time_best_of(eventqueue_runner,
                                                     repeats)

    # Optional-dependency backend: timed only where numba is installed
    # (bench_compare treats the key as new/missing, never as a regression).
    from repro.backends import NumbaBackend

    if NumbaBackend.available():
        numba_runner = backend_runner("numba")
        numba_runner()  # JIT compilation pass, outside the clock
        timings["backends_numba_s"] = _time_best_of(numba_runner, repeats)

    # Serving: micro-batched replica pool vs per-request sequential serving
    # under concurrent load (the in-process stack behind `repro serve`).
    import tempfile

    from repro.serving import ReplicaPool, load_artifact, pool_sender, run_load

    # Two rounds of the image set amortize the fixed pool start-up cost, so
    # the metric tracks the steady-state batching win, not thread creation.
    serve_images = [np.asarray(image, dtype=float) for image in images] * 2
    serve_seeds = list(range(len(serve_images)))

    with tempfile.TemporaryDirectory(prefix="repro-bench-smoke-") as tmp:
        artifact = load_artifact(model.save(tmp))

        def serve_with(max_batch: int) -> None:
            # from_artifact gives every worker an independent replica.
            pool = ReplicaPool.from_artifact(
                artifact, workers=1, max_batch=max_batch, max_wait_ms=5.0,
                max_queue=4 * len(serve_images),
            )
            with pool:
                report = run_load(pool_sender(pool), serve_images,
                                  serve_seeds,
                                  concurrency=min(32, len(serve_images)))
            if report.errors:  # pragma: no cover - invalidates the timing
                raise RuntimeError(
                    f"serving smoke failed: {report.errors[:3]}"
                )

        timings["serving_sequential_s"] = _time_best_of(
            lambda: serve_with(1), repeats
        )
        timings["serving_batched_s"] = _time_best_of(
            lambda: serve_with(batch_size), repeats
        )
    timings["serving_speedup_x"] = (
        timings["serving_sequential_s"] / timings["serving_batched_s"]
    )

    # Serving control plane: process shards vs the thread pool at identical
    # worker counts.  Both pools are started (shard processes spawned and
    # loaded) and warmed with one untimed pass before any clock runs, so the
    # metric tracks steady-state dispatch throughput, not spawn cost.  The
    # speedup only exceeds 1x on multi-core machines (the engine is
    # GIL-bound in threads); the ratio gate is one-sided, so a single-core
    # baseline still gates meaningfully on multi-core CI runners.
    from repro.serving import ShardProcessPool

    serving_workers = 2

    with tempfile.TemporaryDirectory(prefix="repro-bench-smoke-mp-") as tmp:
        artifact = load_artifact(model.save(tmp))
        sp_pool = ReplicaPool.from_artifact(
            artifact, workers=serving_workers, max_batch=8, max_wait_ms=5.0,
            max_queue=4 * len(serve_images),
        )
        mp_pool = ShardProcessPool.from_artifact(
            artifact, shards=serving_workers, max_batch=8, max_wait_ms=5.0,
            max_queue=4 * len(serve_images),
        )

        def drive(pool) -> None:
            report = run_load(pool_sender(pool), serve_images, serve_seeds,
                              concurrency=min(64, len(serve_images)))
            if report.errors:  # pragma: no cover - invalidates the timing
                raise RuntimeError(
                    f"serving mp smoke failed: {report.errors[:3]}"
                )

        with sp_pool:
            drive(sp_pool)  # warm-up
            timings["serving_sp_s"] = _time_best_of(
                lambda: drive(sp_pool), repeats
            )
        with mp_pool:
            drive(mp_pool)  # warm-up
            timings["serving_mp_s"] = _time_best_of(
                lambda: drive(mp_pool), repeats
            )
    timings["serving_mp_speedup_x"] = (
        timings["serving_sp_s"] / timings["serving_mp_s"]
    )

    # Distributed-tracing overhead: the same requests, with and without an
    # active trace.  Untraced requests pay one contextvar read; traced
    # requests additionally record queue_wait/serve_batch/encode/kernel
    # spans, batched into the ledger write the untraced path performs
    # anyway.  The overhead percentage is machine-independent by
    # construction (same machine, same workload, back to back), so
    # bench_history gates it absolutely (<= 3 %) instead of against the
    # calibration-normalized baseline.  Measurement hygiene matters more
    # than elsewhere because the quantity is a *difference* of two noisy
    # timings, so three choices keep the estimator's noise floor well
    # under the gate:
    #
    # * requests run the paper's full 350-step presentation, the workload
    #   the overhead claim is actually about — against a toy presentation
    #   the fixed per-span cost reads as an inflated percentage;
    # * the pool serves with no batching wait (the stream is sequential,
    #   so ``max_wait_ms`` would only add condvar-scheduling jitter);
    # * the variants alternate request by request and each request keeps
    #   its best-of-``repeats`` time, so drifting machine load cancels
    #   pairwise instead of biasing whichever variant ran later.
    from repro.observability.ledger import RunLedger
    from repro.observability.tracing import TraceContext, trace_scope

    trace_model = SpikeDynModel(
        SpikeDynConfig.scaled_down(n_input=196, n_exc=40, t_sim=350.0, seed=0)
    )
    trace_images = serve_images[:16]
    trace_seeds = serve_seeds[:16]
    with tempfile.TemporaryDirectory(prefix="repro-bench-smoke-tr-") as tmp:
        artifact = load_artifact(trace_model.save(tmp))
        trace_pool = ReplicaPool.from_artifact(
            artifact, workers=1, max_batch=8, max_wait_ms=0.0,
            max_queue=4 * len(serve_images),
            ledger=RunLedger(Path(tmp) / "ledger"),
        )
        with trace_pool:
            for image, seed in zip(trace_images, trace_seeds):  # warm-up
                trace_pool.predict(image, seed=seed, timeout=120.0)
            best_untraced = [float("inf")] * len(trace_images)
            best_traced = [float("inf")] * len(trace_images)
            # Five paired passes minimum: the gate sits at 3 % and each
            # extra pass tightens the per-request minima that the
            # difference is taken over.
            for repeat in range(max(5, repeats)):
                for index, (image, seed) in enumerate(
                    zip(trace_images, trace_seeds)
                ):
                    started = time.perf_counter()
                    trace_pool.predict(image, seed=seed, timeout=120.0)
                    best_untraced[index] = min(
                        best_untraced[index], time.perf_counter() - started
                    )
                    started = time.perf_counter()
                    with trace_scope(
                        TraceContext(trace_id=f"bench-smoke-{repeat}-{index}")
                    ):
                        trace_pool.predict(image, seed=seed, timeout=120.0)
                    best_traced[index] = min(
                        best_traced[index], time.perf_counter() - started
                    )
            timings["tracing_untraced_s"] = sum(best_untraced)
            timings["tracing_traced_s"] = sum(best_traced)
    timings["tracing_overhead_pct"] = max(
        0.0,
        (timings["tracing_traced_s"] - timings["tracing_untraced_s"])
        / timings["tracing_untraced_s"] * 100.0,
    )

    scale = ExperimentScale.tiny(network_sizes=(10,), class_sequence=(0, 1),
                                 samples_per_task=2, eval_samples_per_class=2,
                                 t_sim=30.0)
    timings["experiment_table2_s"] = _time_best_of(
        lambda: run_processing_time_study(scale), 1
    )
    timings["experiment_fig4_s"] = _time_best_of(
        lambda: run_architecture_reduction(scale), 1
    )

    return {
        "version": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "batch_size": batch_size,
        "repeats": repeats,
        "timings": timings,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="bench-smoke.json",
                        help="path of the timing JSON to write")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="batch size of the inference workloads")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repetitions per workload (best-of timing)")
    args = parser.parse_args(argv)

    report = run_smoke(max(1, args.batch_size), max(1, args.repeats))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, seconds in sorted(report["timings"].items()):
        print(f"{name:30s} {seconds:10.4f}")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI smoke test for the serving subsystem.

Fires concurrent requests at a serving deployment and asserts that **every**
response is valid and that every prediction is bit-identical to the offline
batched evaluation path for the same ``(image, seed)`` pairs.

Two modes:

* ``--url`` given — drive an already-running server (e.g. a backgrounded
  ``repro serve``) over HTTP; ``--artifact`` must point at the artifact it
  serves so the offline reference can be computed locally.  The script
  polls the health endpoint until the server is up.
* no ``--url`` — self-contained: train a tiny model (or load
  ``--artifact``), boot an in-process server on an ephemeral port, and
  hammer that.

All HTTP goes through :class:`repro.client.ServingClient`.  By default the
requests hit the deprecated ``/predict`` alias (proving pre-1.7 clients
still work); ``--model NAME`` switches to the versioned
``/v1/models/NAME/predict`` route and validates the per-model ``/v1``
metrics instead.

Exit code 0 only when every response arrived and matched.

Usage::

    python scripts/serving_smoke.py                      # fully self-contained
    python scripts/serving_smoke.py --artifact dir --url http://127.0.0.1:8765
    python scripts/serving_smoke.py --artifact dir --url http://... --model m
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.client import ServingClient
from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.spikedyn_model import SpikeDynModel
from repro.observability import parse_prometheus_text
from repro.serving import (
    ModelServer,
    ReplicaPool,
    SpikeCountDriftDetector,
    http_sender,
    load_artifact,
    offline_predictions,
    run_load,
)

#: Series every healthy /metrics exposition must carry.
REQUIRED_METRICS = (
    "repro_serving_requests_total",
    "repro_serving_responses_total",
    "repro_serving_batch_size_bucket",
    "repro_serving_batch_size_count",
    "repro_serving_latency_ms",
    "repro_serving_info",
)


def check_prometheus(text: str, minimum_requests: int) -> list:
    """Validate the /metrics exposition; returns a list of problems.

    Parses every line with the strict text-format parser, asserts the
    required series are present, and cross-checks the request counter
    against the load that was actually generated.
    """
    problems = []
    try:
        families = parse_prometheus_text(text)
    except ValueError as error:
        return [f"/metrics is not valid Prometheus text format: {error}"]
    for name in REQUIRED_METRICS:
        if name not in families:
            problems.append(f"/metrics is missing the {name!r} series")
    samples = families.get("repro_serving_requests_total", {})
    total = sum(samples.values()) if samples else 0.0
    if total < minimum_requests:
        problems.append(
            f"repro_serving_requests_total is {total:g}, expected >= "
            f"{minimum_requests}"
        )
    return problems


def train_tiny_artifact(directory: Path, *, n_exc: int, seed: int) -> Path:
    """Train a seconds-scale model on three classes and save it."""
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=n_exc,
                                        t_sim=40.0, seed=seed)
    model = SpikeDynModel(config)
    source = SyntheticDigits(image_size=14, seed=seed)
    assign_images, assign_labels = [], []
    for cls in (0, 1, 2):
        for image in source.generate(cls, 3, rng=seed + 1):
            model.train_sample(image)
        for image in source.generate(cls, 2, rng=seed + 2):
            assign_images.append(image)
            assign_labels.append(cls)
    model.assign_labels(assign_images, assign_labels)
    return model.save(directory)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact", type=Path, default=None,
                        help="artifact directory (trained fresh when omitted)")
    parser.add_argument("--url", default=None,
                        help="base URL of a running server (in-process "
                             "server on an ephemeral port when omitted)")
    parser.add_argument("--model", default=None,
                        help="drive POST /v1/models/<MODEL>/predict and the "
                             "/v1 metrics instead of the deprecated aliases")
    parser.add_argument("--requests", type=int, default=64,
                        help="number of requests to fire (default: 64)")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="client threads (default: 16)")
    parser.add_argument("--workers", type=int, default=2,
                        help="replica workers of the in-process server")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="micro-batch bound of the in-process server")
    parser.add_argument("--n-exc", type=int, default=16,
                        help="excitatory neurons of the freshly trained model")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--startup-timeout", type=float, default=60.0,
                        help="seconds to wait for --url to become healthy")
    args = parser.parse_args(argv)

    if args.url is not None and args.artifact is None:
        # A freshly trained model would be an unrelated reference and every
        # prediction comparison against the real server would fail.
        parser.error("--url requires --artifact (the artifact the server "
                     "at that URL is serving)")

    with tempfile.TemporaryDirectory(prefix="repro-serving-smoke-") as tmp:
        if args.artifact is None:
            print("training a tiny artifact ...", flush=True)
            artifact_dir = train_tiny_artifact(
                Path(tmp) / "artifact", n_exc=args.n_exc, seed=args.seed
            )
        else:
            artifact_dir = args.artifact
        artifact = load_artifact(artifact_dir)
        model = artifact.build_model()

        source = SyntheticDigits(image_size=int(np.sqrt(artifact.n_input)),
                                 seed=args.seed)
        per_class = max(1, args.requests // 3 + 1)
        images = []
        for cls in (0, 1, 2):
            images.extend(source.generate(cls, per_class, rng=args.seed + 7))
        images = [np.asarray(image, dtype=float)
                  for image in images[:args.requests]]
        seeds = list(range(len(images)))

        print(f"computing the offline reference for {len(images)} "
              "requests ...", flush=True)
        reference = offline_predictions(model, images, seeds)

        def hammer(url: str):
            client = ServingClient(url, retries=0)
            report = run_load(http_sender(url, model=args.model),
                              images, seeds, concurrency=args.concurrency)
            if args.model is not None:
                snapshots = client.metrics_json()["models"]
                key = next(
                    (key for key in snapshots
                     if key == args.model
                     or key.startswith(f"{args.model}@")),
                    None,
                )
                if key is None:
                    raise SystemExit(
                        f"/v1/metrics.json has no snapshot for model "
                        f"{args.model!r} (got: {sorted(snapshots)})"
                    )
                return report, snapshots[key], client.metrics_text()
            # deprecated aliases: default-model metrics, 1.6-shaped
            return (report, client.request("GET", "/metrics.json"),
                    client.request("GET", "/metrics")["text"])

        if args.url is not None:
            print(f"waiting for {args.url} ...", flush=True)
            health = ServingClient(args.url, retries=0).wait_until_healthy(
                timeout=args.startup_timeout
            )
            print(f"healthz: {json.dumps(health)}", flush=True)
            report, metrics, prometheus_text = hammer(args.url)
        else:
            pool = ReplicaPool.from_artifact(
                artifact, workers=args.workers, max_batch=args.max_batch,
                max_queue=4 * len(images),
                drift_detector=SpikeCountDriftDetector(
                    window=max(len(images) // 2, 8)
                ),
            )
            with ModelServer(pool, port=0) as server:
                print(f"in-process server at {server.url}", flush=True)
                report, metrics, prometheus_text = hammer(server.url)

    print(json.dumps(report.summary(), indent=2))
    failures = 0
    if report.errors:
        failures += 1
        for index, message in report.errors[:10]:
            print(f"request {index} failed: {message}", file=sys.stderr)
        print(f"error: {len(report.errors)}/{report.n_requests} requests "
              "failed", file=sys.stderr)
    mismatches = np.flatnonzero(report.predictions != reference)
    if mismatches.size:
        failures += 1
        print(f"error: {mismatches.size} predictions differ from the "
              f"offline batched path (first: request {mismatches[0]}, "
              f"served {report.predictions[mismatches[0]]}, offline "
              f"{reference[mismatches[0]]})", file=sys.stderr)
    histogram = metrics.get("batch_size_histogram", {})
    print(f"batch-size histogram: {json.dumps(histogram)}")
    print(f"latency: {json.dumps(metrics.get('latency', {}))}")
    problems = check_prometheus(prometheus_text, minimum_requests=report.ok)
    if problems:
        failures += 1
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
    else:
        lines = len(prometheus_text.strip().splitlines())
        print(f"GET /metrics: valid Prometheus text exposition "
              f"({lines} lines)")
    if failures:
        return 1
    print(f"OK: {report.ok}/{report.n_requests} responses valid and "
          "prediction-identical to offline evaluation")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Paper-network-size follow-up pass for the energy/memory experiments.

``run_all_experiments.py`` keeps its default energy experiments at N100/N200
so the whole sweep stays fast.  This script re-runs the experiments whose
cost does not depend on training a full protocol — Fig. 4(b,c), Fig. 5,
Fig. 11, Table II, and the Alg. 1 search — at the paper's own network sizes
(N200 / N400, 28x28 inputs), plus two slower accuracy panels at a larger
scale than the default sweep:

* Fig. 4(d): accuracy-profile parity of the two architectures under the same
  plain-STDP rule;
* Fig. 9 (dynamic, N100): the three-way accuracy comparison with 28x28 inputs
  and more samples per task.

Run with::

    python scripts/run_paper_scale_energy.py [--out results] [--skip-accuracy]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import (
    run_analytical_validation,
    run_architecture_reduction,
    run_dynamic_accuracy_comparison,
    run_energy_comparison,
    run_model_search_study,
    run_processing_time_study,
)
from repro.experiments.common import ExperimentScale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results",
                        help="output directory for the text reports")
    parser.add_argument("--skip-accuracy", action="store_true",
                        help="only run the (fast) energy/memory experiments")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    energy_scale = ExperimentScale.tiny(
        image_size=28, network_sizes=(200, 400), t_sim=100.0
    )
    parity_scale = ExperimentScale.small(
        network_sizes=(40,), class_sequence=tuple(range(10)),
        samples_per_task=10, eval_samples_per_class=4, t_sim=60.0,
    )
    accuracy_scale = ExperimentScale.tiny(
        image_size=28, network_sizes=(100,), class_sequence=tuple(range(10)),
        samples_per_task=20, eval_samples_per_class=4, t_sim=100.0,
    )

    jobs = [
        ("fig04_arch_reduction_n200_n400",
         lambda: run_architecture_reduction(
             energy_scale, include_accuracy_profile=False).to_text()),
        ("fig05_analytical_models_n200_n400",
         lambda: run_analytical_validation(
             energy_scale, actual_run_samples=2).to_text()),
        ("fig11_energy_n200_n400",
         lambda: run_energy_comparison(energy_scale).to_text()),
        ("table2_processing_time_n200_n400",
         lambda: run_processing_time_study(energy_scale).to_text()),
        ("alg1_model_search_n200_n400",
         lambda: run_model_search_study(energy_scale, n_add=100).to_text()),
    ]
    if not args.skip_accuracy:
        jobs.append(
            ("fig04d_accuracy_parity",
             lambda: run_architecture_reduction(
                 parity_scale, include_accuracy_profile=True).to_text()))
        jobs.append(
            ("fig09_dynamic_accuracy_n100_28px",
             lambda: run_dynamic_accuracy_comparison(accuracy_scale).to_text()))

    for name, job in jobs:
        started = time.time()
        print(f"[run_paper_scale_energy] running {name} ...", flush=True)
        text = job()
        elapsed = time.time() - started
        path = out_dir / f"{name}.txt"
        path.write_text(text + f"\n\n(generated in {elapsed:.1f} s)\n",
                        encoding="utf-8")
        print(f"[run_paper_scale_energy] wrote {path} ({elapsed:.1f} s)", flush=True)

    print("[run_paper_scale_energy] done")


if __name__ == "__main__":
    main()

"""Regenerate every table and figure of the SpikeDyn paper.

The script runs each experiment driver from :mod:`repro.experiments` and
writes its plain-text report to ``results/<experiment>.txt``.  The numbers
recorded in EXPERIMENTS.md were produced by this script.

Two scales are used:

* accuracy experiments (Fig. 1c, 4d, 6, 9, 10, ablation) run on the synthetic
  digit workload at a reduced scale (14x14 images, N20/N40 networks, 10 tasks,
  10 samples per task) so the whole sweep finishes on a laptop;
* energy/memory/latency experiments (Fig. 1b, 4b-c, 5, 11, Table II, Alg. 1)
  use the paper's input size (28x28) and larger networks (N100/N200 by
  default, ``--paper-networks`` switches to N200/N400), since they only need
  a handful of sample presentations per model.

Run with::

    python scripts/run_all_experiments.py [--out results] [--quick]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import (
    gpu_specification_table,
    run_analytical_validation,
    run_architecture_reduction,
    run_confusion_study,
    run_decay_theta_sweep,
    run_dynamic_accuracy_comparison,
    run_energy_comparison,
    run_mechanism_ablation,
    run_model_search_study,
    run_motivation_study,
    run_nondynamic_accuracy_comparison,
    run_processing_time_study,
)
from repro.experiments.common import ExperimentScale


def accuracy_scale(quick: bool) -> ExperimentScale:
    """Scale used by the accuracy (protocol-driven) experiments."""
    if quick:
        return ExperimentScale.tiny()
    return ExperimentScale.small(
        network_sizes=(20, 40),
        class_sequence=tuple(range(10)),
        samples_per_task=10,
        eval_samples_per_class=4,
        nondynamic_checkpoints=(10, 20, 40, 80),
        t_sim=60.0,
    )


def energy_scale(quick: bool, paper_networks: bool) -> ExperimentScale:
    """Scale used by the energy/memory/latency experiments."""
    if quick:
        return ExperimentScale.tiny(image_size=28, network_sizes=(50, 100),
                                    t_sim=50.0)
    sizes = (200, 400) if paper_networks else (100, 200)
    return ExperimentScale.tiny(image_size=28, network_sizes=sizes, t_sim=100.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results",
                        help="output directory for the text reports")
    parser.add_argument("--quick", action="store_true",
                        help="run everything at the CI-sized tiny scale")
    parser.add_argument("--paper-networks", action="store_true",
                        help="use N200/N400 for the energy experiments")
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    acc_scale = accuracy_scale(args.quick)
    nrg_scale = energy_scale(args.quick, args.paper_networks)
    sweep_scale = acc_scale.replace(class_sequence=tuple(range(10)),
                                    network_sizes=(max(acc_scale.network_sizes),))

    jobs = [
        ("table1_gpu_specs", lambda: gpu_specification_table()),
        ("fig05_analytical_models",
         lambda: run_analytical_validation(nrg_scale, actual_run_samples=2).to_text()),
        ("fig04_arch_reduction",
         lambda: run_architecture_reduction(
             nrg_scale, include_accuracy_profile=False).to_text()),
        ("fig01_motivation",
         lambda: run_motivation_study(
             acc_scale.replace(network_sizes=nrg_scale.network_sizes,
                               image_size=nrg_scale.image_size,
                               t_sim=nrg_scale.t_sim,
                               class_sequence=acc_scale.class_sequence)
             if not args.quick else acc_scale).to_text()),
        ("fig11_energy", lambda: run_energy_comparison(nrg_scale).to_text()),
        ("table2_processing_time",
         lambda: run_processing_time_study(nrg_scale).to_text()),
        ("alg1_model_search",
         lambda: run_model_search_study(nrg_scale, n_add=50).to_text()),
        ("fig09_dynamic_accuracy",
         lambda: run_dynamic_accuracy_comparison(acc_scale).to_text()),
        ("fig09_nondynamic_accuracy",
         lambda: run_nondynamic_accuracy_comparison(acc_scale).to_text()),
        ("fig10_confusion", lambda: run_confusion_study(acc_scale).to_text()),
        ("fig06_decay_theta_sweep",
         lambda: run_decay_theta_sweep(sweep_scale).to_text()),
        ("ablation_mechanisms",
         lambda: run_mechanism_ablation(sweep_scale).to_text()),
    ]

    for name, job in jobs:
        started = time.time()
        print(f"[run_all_experiments] running {name} ...", flush=True)
        text = job()
        elapsed = time.time() - started
        path = out_dir / f"{name}.txt"
        path.write_text(text + f"\n\n(generated in {elapsed:.1f} s)\n",
                        encoding="utf-8")
        print(f"[run_all_experiments] wrote {path} ({elapsed:.1f} s)", flush=True)

    print("[run_all_experiments] done")


if __name__ == "__main__":
    main()

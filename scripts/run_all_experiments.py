#!/usr/bin/env python
"""Regenerate every table and figure of the SpikeDyn paper.

A thin wrapper around ``repro run-all`` that maps this script's historical
flags (``--quick`` / ``--paper-networks``) onto the CLI's scale presets.
The suite runs through the parallel runner (:mod:`repro.runner`): jobs
execute concurrently across ``--workers`` processes with crash isolation and
per-job timeouts, completed results land in the content-addressed cache, and
every outcome is recorded in ``<out>/manifest.json`` so an interrupted run
resumes where it stopped.  Plain-text reports are written to
``results/<experiment>.txt``; the numbers recorded in EXPERIMENTS.md were
produced by this script.

Two scales are used (as in every previous revision of this script):

* accuracy experiments (Fig. 1c, 4d, 6, 9, 10, ablation) run on the synthetic
  digit workload at a reduced scale (14x14 images, N20/N40 networks, 10 tasks,
  10 samples per task) so the whole sweep finishes on a laptop;
* energy/memory/latency experiments (Fig. 1b, 4b-c, 5, 11, Table II, Alg. 1)
  use the paper's input size (28x28) and larger networks (N100/N200 by
  default, ``--paper-networks`` switches to N200/N400), since they only need
  a handful of sample presentations per model.

Run with::

    python scripts/run_all_experiments.py [--out results] [--quick] [--workers N]
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import _nonnegative_int
from repro.cli import main as cli_main


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="results", help="output directory for the text reports")
    parser.add_argument(
        "--quick", action="store_true", help="run everything at the CI-sized tiny scale"
    )
    parser.add_argument(
        "--paper-networks", action="store_true", help="use N200/N400 for the energy experiments"
    )
    parser.add_argument(
        "--workers",
        type=_nonnegative_int,
        default=1,
        help="concurrent worker processes (default: 1; 0 = in-process, no isolation)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed of every experiment")
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-job wall-clock budget in seconds"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the content-addressed result cache"
    )
    parser.add_argument(
        "--force", action="store_true", help="re-execute every job, ignoring cache and manifest"
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    preset = "tiny" if args.quick else "small"
    cli_args = ["run-all", "--scale", preset, "--out", args.out]
    cli_args.extend(["--workers", str(args.workers), "--seed", str(args.seed)])
    if args.paper_networks:
        cli_args.append("--paper-networks")
    if args.timeout is not None:
        cli_args.extend(["--timeout", str(args.timeout)])
    if args.no_cache:
        cli_args.append("--no-cache")
    if args.force:
        cli_args.append("--force")
    return cli_main(cli_args)


if __name__ == "__main__":
    sys.exit(main())

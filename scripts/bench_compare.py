#!/usr/bin/env python
"""Gate CI on smoke-benchmark regressions.

Compares a fresh ``bench_smoke.py`` report against the committed baseline
(``benchmarks/baseline_smoke.json``) and exits non-zero when any metric
regresses beyond the tolerance:

* timing metrics (``*_s``) regress when ``current > baseline * tolerance``;
* speedup metrics (``*_x``) regress when ``current < baseline / tolerance``;
* percentage metrics (``*_pct``) are informational here — they gate
  absolutely (fixed ceiling) in ``bench_history.py --check`` instead.

When both reports carry the ``calibration_s`` reference workload, every
timing metric is first divided by its report's calibration time.  That
cancels raw machine speed, so a baseline recorded on a developer laptop
gates meaningfully on a slower shared CI runner; only genuine per-operation
regressions trip the gate.  The calibration metric itself never gates.

Metrics present in only one report are listed but never gate (new benchmarks
must be able to land before their baseline).  Refresh the baseline with
``--update`` after an intentional performance change.

Usage::

    python scripts/bench_smoke.py --output bench-smoke.json
    python scripts/bench_compare.py --current bench-smoke.json
    python scripts/bench_compare.py --current bench-smoke.json --tolerance 2.0
    python scripts/bench_compare.py --current bench-smoke.json --update
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Dict, List, Tuple

from repro.evaluation.reporting import format_table

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baseline_smoke.json"

#: Reference-workload metric used to normalize timings across machines.
CALIBRATION_METRIC = "calibration_s"


def load_timings(path: Path) -> Dict[str, float]:
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    timings = report.get("timings")
    if not isinstance(timings, dict):
        raise ValueError(f"{path} has no 'timings' section")
    return {name: float(value) for name, value in timings.items()}


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
    ratio_tolerance: float,
) -> Tuple[List[List[object]], List[str]]:
    """Comparison rows and the list of regressed metric names.

    The table shows the raw measured values; the ``norm_ratio`` column is
    the calibration-normalized current/baseline ratio the verdict is based
    on (equal to the raw ratio when either report lacks the calibration
    metric).
    """
    base_calibration = baseline.get(CALIBRATION_METRIC)
    curr_calibration = current.get(CALIBRATION_METRIC)
    normalize = bool(base_calibration and curr_calibration)

    rows: List[List[object]] = []
    regressions: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        curr = current.get(name)
        if base is None or curr is None:
            rows.append([name, base, curr, "-", "missing" if curr is None else "new"])
            continue
        if name == CALIBRATION_METRIC:
            rows.append([name, f"{base:.4f}", f"{curr:.4f}", "-", "reference"])
            continue
        if name.endswith("_pct"):
            # Percentage metrics gate absolutely in bench_history --check
            # (a fixed ceiling), not relatively: a baseline near zero
            # would make any ratio gate here meaninglessly twitchy.
            rows.append([name, f"{base:.4f}", f"{curr:.4f}", "-", "info"])
            continue
        higher_is_better = name.endswith("_x")
        norm_base, norm_curr = base, curr
        if normalize and not higher_is_better:
            norm_base = base / base_calibration
            norm_curr = curr / curr_calibration
        ratio = (norm_curr / norm_base) if norm_base > 0 else float("inf")
        if higher_is_better:
            regressed = norm_curr < norm_base / ratio_tolerance
        else:
            regressed = norm_curr > norm_base * tolerance
        verdict = "REGRESSED" if regressed else "ok"
        if regressed:
            regressions.append(name)
        rows.append([name, f"{base:.4f}", f"{curr:.4f}", f"{ratio:.2f}x", verdict])
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline report (default: benchmarks/baseline_smoke.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="freshly generated bench_smoke.py report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="allowed slowdown factor before a timing metric gates (default: 1.5)",
    )
    parser.add_argument(
        "--ratio-tolerance",
        type=float,
        default=None,
        help="allowed shrink factor for ratio (*_x) metrics, which cannot be "
             "calibration-normalized and are noisier on loaded machines "
             "(default: same as --tolerance)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy --current over --baseline instead of comparing",
    )
    args = parser.parse_args(argv)

    if args.tolerance <= 1.0:
        parser.error(f"--tolerance must be > 1.0, got {args.tolerance}")
    ratio_tolerance = args.ratio_tolerance if args.ratio_tolerance is not None else args.tolerance
    if ratio_tolerance <= 1.0:
        parser.error(f"--ratio-tolerance must be > 1.0, got {ratio_tolerance}")

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated from {args.current} -> {args.baseline}")
        return 0

    try:
        baseline = load_timings(args.baseline)
    except FileNotFoundError:
        print(
            f"error: no baseline at {args.baseline}; create one with --update",
            file=sys.stderr,
        )
        return 2
    current = load_timings(args.current)

    rows, regressions = compare(baseline, current, args.tolerance, ratio_tolerance)
    print(format_table(["metric", "baseline", "current", "norm_ratio", "verdict"], rows))
    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond tolerance: "
            + ", ".join(regressions),
            file=sys.stderr,
        )
        return 1
    print(f"\nno regressions beyond {args.tolerance:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())

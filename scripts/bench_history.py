#!/usr/bin/env python
"""In-repo benchmark history: one committed snapshot per release.

Every release commits a normalized smoke-benchmark snapshot at the repo
root (``BENCH_v<version>.json``), so the performance trajectory of the
project lives in git history next to the code that produced it — no
external dashboard required.  Snapshots carry both the raw wall-clock
timings and the calibration-normalized values (every ``*_s`` metric
divided by the report's ``calibration_s`` reference workload), which is
what makes snapshots recorded on different machines comparable.

Modes::

    python scripts/bench_history.py                       # run + write snapshot
    python scripts/bench_history.py --from-report r.json  # reuse a report
    python scripts/bench_history.py --check               # CI gate
    python scripts/bench_history.py --list                # show the history

``--check`` is the CI gate: it fails unless the snapshot for the *current*
package version exists at the repo root, is schema-valid, matches the
package version, and its normalized timings are consistent with the
committed baseline (``benchmarks/baseline_smoke.json``) within a tolerance
— catching both a forgotten snapshot refresh and a snapshot generated
from a stale or foreign benchmark run.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline_smoke.json"

#: Reference-workload metric used to normalize timings across machines.
CALIBRATION_METRIC = "calibration_s"

#: Absolute gates on dimensionless metrics: unlike the *_s timings (which
#: gate relatively against the committed baseline), these percentages are
#: machine-independent by construction — both sides of the ratio were
#: measured back to back on the same machine — so a fixed ceiling applies.
ABSOLUTE_GATES_PCT = {
    "tracing_overhead_pct": 3.0,
}

#: Top-level keys every snapshot must carry.
REQUIRED_KEYS = (
    "version",
    "python",
    "numpy",
    "platform",
    "batch_size",
    "repeats",
    "timings",
    "normalized",
)

_SNAPSHOT_NAME = re.compile(r"^BENCH_v(?P<version>\d+\.\d+\.\d+)\.json$")


def snapshot_path(version: str, root: Path = REPO_ROOT) -> Path:
    """The snapshot file for ``version`` (``<root>/BENCH_v<version>.json``)."""
    return root / f"BENCH_v{version}.json"


def normalize_timings(timings: Dict[str, float]) -> Dict[str, float]:
    """Calibration-normalized view of a raw ``timings`` section.

    Timing metrics (``*_s``) are divided by ``calibration_s``; ratio
    metrics (``*_x``) are already dimensionless and pass through; the
    calibration reference itself is excluded (it would always be 1.0).
    """
    calibration = float(timings.get(CALIBRATION_METRIC, 0.0))
    if calibration <= 0.0:
        raise ValueError(f"timings lack a positive {CALIBRATION_METRIC!r} reference")
    normalized: Dict[str, float] = {}
    for name, value in timings.items():
        if name == CALIBRATION_METRIC:
            continue
        if name.endswith("_s"):
            normalized[name] = float(value) / calibration
        else:
            normalized[name] = float(value)
    return normalized


def build_snapshot(report: Dict[str, object]) -> Dict[str, object]:
    """Normalize one ``bench_smoke.py`` report into a history snapshot."""
    timings = report.get("timings")
    if not isinstance(timings, dict):
        raise ValueError("report has no 'timings' section")
    snapshot: Dict[str, object] = {}
    missing: List[str] = []
    for key in REQUIRED_KEYS:
        if key == "normalized":
            continue
        if key in report:
            snapshot[key] = report[key]
        else:
            missing.append(key)
    if missing:
        raise ValueError(f"report is missing {', '.join(missing)}")
    snapshot["normalized"] = normalize_timings(
        {name: float(value) for name, value in timings.items()}
    )
    return snapshot


def validate_snapshot(
    snapshot: Dict[str, object], expect_version: Optional[str] = None
) -> List[str]:
    """Schema problems of a loaded snapshot (empty list = valid)."""
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in snapshot:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems
    if expect_version is not None and snapshot["version"] != expect_version:
        problems.append(
            f"snapshot records version {snapshot['version']!r} but the "
            f"package is {expect_version!r}"
        )
    timings = snapshot["timings"]
    normalized = snapshot["normalized"]
    if not isinstance(timings, dict) or not isinstance(normalized, dict):
        return problems + ["'timings'/'normalized' must be objects"]
    if float(timings.get(CALIBRATION_METRIC, 0.0)) <= 0.0:
        problems.append(f"'timings' lacks a positive {CALIBRATION_METRIC!r} reference")
        return problems
    # The normalized section must be exactly what normalize_timings produces
    # from the raw section — a hand-edited or truncated snapshot fails here.
    expected = normalize_timings({name: float(value) for name, value in timings.items()})
    if set(normalized) != set(expected):
        problems.append("'normalized' metrics do not match 'timings'")
        return problems
    for name, value in expected.items():
        if abs(float(normalized[name]) - value) > 1e-9 * max(1.0, abs(value)):
            problems.append(f"normalized[{name!r}] is inconsistent with the raw timing")
    return problems


def check_against_baseline(
    snapshot: Dict[str, object], baseline_path: Path, tolerance: float
) -> List[str]:
    """Calibration-consistency problems vs the committed baseline.

    Both the snapshot and the baseline are normalized by their own
    ``calibration_s``, so machine speed cancels; a shared timing metric
    drifting beyond ``tolerance`` in either direction means the snapshot
    was not generated from a run consistent with the committed baseline.
    """
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot read baseline {baseline_path}: {error}"]
    raw = baseline.get("timings", {})
    try:
        baseline_norm = normalize_timings({name: float(value) for name, value in raw.items()})
    except ValueError as error:
        return [f"baseline {baseline_path}: {error}"]
    snapshot_norm = snapshot["normalized"]
    problems: List[str] = []
    for name in sorted(set(baseline_norm) & set(snapshot_norm)):
        if not name.endswith("_s"):
            continue  # ratio metrics are load-sensitive; the *_s gates suffice
        base = baseline_norm[name]
        curr = float(snapshot_norm[name])
        if base <= 0.0:
            continue
        ratio = curr / base
        if ratio > tolerance or ratio < 1.0 / tolerance:
            problems.append(
                f"normalized {name} drifts {ratio:.2f}x from the baseline "
                f"(tolerance {tolerance:.2f}x)"
            )
    return problems


def check_absolute_gates(snapshot: Dict[str, object]) -> List[str]:
    """Absolute-ceiling problems on the snapshot's own timings.

    Applies :data:`ABSOLUTE_GATES_PCT` to metrics present in the snapshot;
    a gated metric missing from the snapshot is not a problem (older
    snapshots predate the metric).
    """
    timings = snapshot.get("timings", {})
    problems: List[str] = []
    for name, ceiling in sorted(ABSOLUTE_GATES_PCT.items()):
        if name not in timings:
            continue
        value = float(timings[name])
        if value > ceiling:
            problems.append(
                f"{name} is {value:.2f}% which exceeds the "
                f"{ceiling:.2f}% ceiling"
            )
    return problems


def _cmd_list(root: Path) -> int:
    rows = []
    for path in sorted(root.glob("BENCH_v*.json")):
        match = _SNAPSHOT_NAME.match(path.name)
        if not match:
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            timings = snapshot.get("timings", {})
            calibration = float(timings.get(CALIBRATION_METRIC, 0.0))
            python = snapshot.get("python", "?")
            rows.append((match.group("version"), python, calibration, len(timings)))
        except (OSError, ValueError):
            rows.append((match.group("version"), "?", 0.0, 0))
    if not rows:
        print(f"no BENCH_v*.json snapshots at {root}")
        return 1
    print(f"{'version':10s} {'python':8s} {'calibration_s':>14s} {'metrics':>8s}")
    for version, python, calibration, metrics in rows:
        print(f"{version:10s} {python:8s} {calibration:14.4f} {metrics:8d}")
    return 0


def _cmd_check(root: Path, tolerance: float) -> int:
    import repro

    path = snapshot_path(repro.__version__, root)
    if not path.exists():
        print(
            f"error: no benchmark-history snapshot at {path}; generate it "
            "with scripts/bench_history.py and commit it",
            file=sys.stderr,
        )
        return 1
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except ValueError as error:
        print(f"error: {path} is not valid JSON: {error}", file=sys.stderr)
        return 1
    problems = validate_snapshot(snapshot, expect_version=repro.__version__)
    if not problems:
        problems = check_against_baseline(snapshot, BASELINE_PATH, tolerance)
        problems += check_absolute_gates(snapshot)
    if problems:
        for problem in problems:
            print(f"error: {path.name}: {problem}", file=sys.stderr)
        return 1
    normalized = snapshot["normalized"]
    print(
        f"{path.name}: schema valid, version matches {repro.__version__}, "
        f"{len(normalized)} normalized metrics consistent with "
        f"{BASELINE_PATH.name} (tolerance {tolerance:.2f}x)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the committed snapshot for the current package version (CI gate)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the committed snapshot history",
    )
    parser.add_argument(
        "--from-report",
        type=Path,
        default=None,
        help="normalize an existing bench_smoke.py report instead of running the benchmark",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="snapshot path (default: <repo>/BENCH_v<version>.json)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help=argparse.SUPPRESS,  # tests point this at a tmp directory
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed normalized-metric drift factor vs the baseline in --check (default: 3.0)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="batch size of the benchmark workloads",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per workload (best-of timing)",
    )
    args = parser.parse_args(argv)

    if args.tolerance <= 1.0:
        parser.error(f"--tolerance must be > 1.0, got {args.tolerance}")
    if args.check and args.list:
        parser.error("--check and --list are mutually exclusive")
    if args.check:
        return _cmd_check(args.root, args.tolerance)
    if args.list:
        return _cmd_list(args.root)

    if args.from_report is not None:
        with open(args.from_report, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    else:
        from bench_smoke import run_smoke

        print("running the smoke benchmark ...", flush=True)
        report = run_smoke(max(1, args.batch_size), max(1, args.repeats))

    snapshot = build_snapshot(report)
    output = args.output
    if output is None:
        output = snapshot_path(str(snapshot["version"]), args.root)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, value in sorted(snapshot["normalized"].items()):
        print(f"{name:30s} {value:10.2f}")
    print(f"snapshot written to {output}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.exit(main())

"""Inspect what the excitatory neurons learned (receptive fields & statistics).

After unsupervised STDP training, each excitatory neuron's incoming weight
vector converges towards the input pattern it responds to.  This example
trains a small SpikeDyn model on a few digit classes and then uses
``repro.analysis`` to:

* render each neuron's receptive field as an ASCII heat map,
* label neurons by the class prototype their weights resemble most,
* report population statistics (winner share, sparseness, selectivity), and
* plot the normalized per-model training energy as an ASCII bar chart.

Run with::

    python examples/inspect_receptive_fields.py [--classes 0 1 3] [--n-exc 12]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import SpikeDynConfig, SpikeDynModel, SyntheticDigits
from repro.analysis import (
    ascii_bar_chart,
    ascii_heatmap,
    class_selectivity,
    neuron_class_map,
    receptive_field,
    response_statistics,
)
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import GTX_1080_TI
from repro.experiments.common import build_model


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--classes", type=int, nargs="+", default=[0, 1, 3],
                        help="digit classes to train on")
    parser.add_argument("--n-exc", type=int, default=12,
                        help="number of excitatory neurons")
    parser.add_argument("--image-size", type=int, default=14,
                        help="side length of the synthetic digits")
    parser.add_argument("--train-per-class", type=int, default=10,
                        help="training samples per class")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = SpikeDynConfig.scaled_down(
        n_input=args.image_size * args.image_size,
        n_exc=args.n_exc,
        seed=args.seed,
    )
    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
    model = SpikeDynModel(config)
    rng = np.random.default_rng(args.seed)

    print(f"training on classes {args.classes} "
          f"({args.train_per_class} samples per class)...\n")
    for digit in args.classes:
        for image in source.generate(digit, args.train_per_class, rng=rng):
            model.train_sample(image)

    # Weight-based neuron labels: which prototype does each field resemble?
    prototypes = {digit: source.prototype(digit) for digit in args.classes}
    weight_labels = neuron_class_map(model, prototypes)

    print("Receptive fields (ASCII heat maps), labelled by weight similarity:")
    for neuron in range(model.n_exc):
        label = weight_labels[neuron]
        label_text = f"digit-{label}" if label >= 0 else "silent"
        print(f"\nneuron {neuron:2d}  (closest prototype: {label_text})")
        print(ascii_heatmap(receptive_field(model, neuron)))

    # Response statistics on a mixed evaluation batch.
    images, labels = [], []
    for digit in args.classes:
        for image in source.generate(digit, 5, rng=rng):
            images.append(image)
            labels.append(digit)
    responses = model.respond_batch(images)
    stats = response_statistics(responses)
    selectivity = class_selectivity(responses, labels)

    print("\nPopulation statistics over the evaluation batch:")
    print(f"  mean spikes per sample   : {stats.mean_spikes_per_sample:.1f}")
    print(f"  active neuron fraction   : {stats.active_neuron_fraction:.2f}")
    print(f"  silent sample fraction   : {stats.silent_sample_fraction:.2f}")
    print(f"  mean winner share        : {stats.mean_winner_share:.2f}")
    print("  per-class selectivity    : "
          + ", ".join(f"digit-{cls}: {value:.2f}"
                      for cls, value in selectivity.items()))

    # Training-energy comparison of the three techniques on this workload.
    energy_model = EnergyModel(GTX_1080_TI)
    sample = source.generate(args.classes[0], 1, rng=rng)[0]
    energies = {}
    for name in ("baseline", "asp", "spikedyn"):
        probe = build_model(name, config)
        before = probe.counter.copy()
        probe.train_sample(sample)
        energies[name] = energy_model.estimate(probe.counter - before).joules
    normalized = {name: value / energies["baseline"] for name, value in energies.items()}

    print("\nPer-sample training energy, normalized to the baseline:")
    print(ascii_bar_chart(normalized, width=30))


if __name__ == "__main__":
    main()

"""Energy and processing-time report across GPUs (paper Fig. 11 / Table II).

The paper's energy methodology derives a phase's energy from the processing
time and the measured processing power of the target GPU.  This example
measures the per-sample operation counts of the three techniques (baseline,
ASP, SpikeDyn), converts them into time and energy on each of the paper's
three GPUs, and prints

* the training and inference energy normalized to the baseline (Fig. 11), and
* the extrapolated full-MNIST processing time of SpikeDyn (Table II).

Run with::

    python examples/energy_report.py [--n-exc 100 200] [--image-size 28]
"""

from __future__ import annotations

import argparse

from repro.estimation.hardware import default_devices
from repro.experiments import run_energy_comparison, run_processing_time_study
from repro.experiments.common import ExperimentScale


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-exc", type=int, nargs="+", default=[100, 200],
                        help="network sizes to compare (default: 100 200)")
    parser.add_argument("--image-size", type=int, default=28,
                        help="side length of the input images (default: 28)")
    parser.add_argument("--t-sim", type=float, default=100.0,
                        help="presentation window in ms (default: 100)")
    parser.add_argument("--samples", type=int, default=2,
                        help="samples averaged per energy measurement (default: 2)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = ExperimentScale.tiny(
        image_size=args.image_size,
        network_sizes=tuple(args.n_exc),
        t_sim=args.t_sim,
        seed=args.seed,
    )
    devices = default_devices()

    print("measuring per-sample operation counts "
          f"(image {args.image_size}x{args.image_size}, "
          f"networks {list(args.n_exc)}, {args.t_sim:.0f} ms presentations)...\n")

    energy = run_energy_comparison(
        scale, devices=devices, energy_measurement_samples=args.samples
    )
    print(energy.to_text())

    savings_vs_asp = energy.savings_vs("asp")
    savings_vs_baseline = energy.savings_vs("baseline")
    print()
    print(f"mean SpikeDyn savings vs ASP      : "
          f"training {savings_vs_asp['training'] * 100.0:.0f}%, "
          f"inference {savings_vs_asp['inference'] * 100.0:.0f}%")
    print(f"mean SpikeDyn savings vs baseline : "
          f"training {savings_vs_baseline['training'] * 100.0:.0f}%, "
          f"inference {savings_vs_baseline['inference'] * 100.0:.0f}%")

    print()
    study = run_processing_time_study(
        scale, devices=devices, energy_measurement_samples=args.samples
    )
    print(study.to_text())
    print()
    print("note: hours are extrapolated to the full 60k/10k MNIST split from "
          "per-sample operation counts through each device's throughput model")


if __name__ == "__main__":
    main()

"""Quickstart: train a small SpikeDyn model and classify synthetic digits.

The script builds a laptop-scale SpikeDyn model (direct lateral inhibition +
the continual/unsupervised learning rule of the paper's Alg. 2), trains it
unsupervised on a handful of digit classes, assigns a class label to every
excitatory neuron from a small labelled set, and reports the classification
accuracy together with the estimated energy of the run.

Run with::

    python examples/quickstart.py [--classes 0 1 2] [--n-exc 30]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import SpikeDynConfig, SpikeDynModel, SyntheticDigits
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import get_device
from repro.evaluation.reporting import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--classes", type=int, nargs="+", default=[0, 1, 2],
                        help="digit classes to learn (default: 0 1 2)")
    parser.add_argument("--n-exc", type=int, default=30,
                        help="number of excitatory neurons (default: 30)")
    parser.add_argument("--image-size", type=int, default=14,
                        help="side length of the synthetic digits (default: 14)")
    parser.add_argument("--train-per-class", type=int, default=8,
                        help="training samples per class (default: 8)")
    parser.add_argument("--eval-per-class", type=int, default=5,
                        help="evaluation samples per class (default: 5)")
    parser.add_argument("--device", default="GTX 1080 Ti",
                        help="GPU profile for the energy report")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    rng = np.random.default_rng(args.seed)

    # 1. Configure and build the model (optimized architecture + Alg. 2 rule).
    config = SpikeDynConfig.scaled_down(
        n_input=args.image_size * args.image_size,
        n_exc=args.n_exc,
        seed=args.seed,
    )
    model = SpikeDynModel(config)
    print(f"built {model!r}")

    # 2. Generate a synthetic digit workload (MNIST-like, fully offline).
    source = SyntheticDigits(image_size=args.image_size, seed=args.seed)

    # 3. Unsupervised training: labels are never shown to the learning rule.
    print(f"training on classes {args.classes} "
          f"({args.train_per_class} samples per class)...")
    for digit in args.classes:
        for image in source.generate(digit, args.train_per_class, rng=rng):
            model.train_sample(image)

    # 4. Read-out: assign each neuron the class it responds to most strongly.
    assign_images, assign_labels = [], []
    for digit in args.classes:
        for image in source.generate(digit, args.eval_per_class, rng=rng):
            assign_images.append(image)
            assign_labels.append(digit)
    model.assign_labels(assign_images, assign_labels)

    # 5. Evaluate on fresh samples.
    rows = []
    total_correct, total = 0, 0
    for digit in args.classes:
        images = list(source.generate(digit, args.eval_per_class, rng=rng))
        predictions = model.predict(images)
        correct = int(np.sum(predictions == digit))
        rows.append([f"digit-{digit}", correct, len(images),
                     100.0 * correct / len(images)])
        total_correct += correct
        total += len(images)
    print()
    print(format_table(["class", "correct", "evaluated", "accuracy_%"], rows))
    print(f"\noverall accuracy: {100.0 * total_correct / total:.1f}%")

    # 6. Energy report: convert the counted operations into time and energy.
    device = get_device(args.device)
    estimate = EnergyModel(device).estimate(model.counter)
    print(f"\nestimated cost of this run on the {device.name}: "
          f"{estimate.seconds:.2f} s, {estimate.joules:.1f} J "
          f"({estimate.weighted_ops:.2e} weighted operations)")


if __name__ == "__main__":
    main()

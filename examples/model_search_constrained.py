"""Memory- and energy-constrained model search for an embedded deployment.

An IoT-Edge or robotic platform comes with hard memory and energy budgets.
This example uses the paper's Alg. 1 to pick the largest SpikeDyn model that
fits a given budget: the search sweeps the number of excitatory neurons,
estimates each candidate's memory footprint analytically, measures the energy
of processing a single sample, extrapolates it to the expected workload
(``E = E1 * N``), and keeps the largest candidate that satisfies every
constraint.

Run with::

    python examples/model_search_constrained.py --memory-kb 1024 \
        --train-energy-j 2e5 --device "Jetson Nano"
"""

from __future__ import annotations

import argparse

from repro import SpikeDynConfig, search_snn_model
from repro.estimation.hardware import get_device
from repro.evaluation.reporting import format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--memory-kb", type=float, default=256.0,
                        help="memory budget in kilobytes (default: 256)")
    parser.add_argument("--train-energy-j", type=float, default=None,
                        help="training energy budget in joules (optional)")
    parser.add_argument("--infer-energy-j", type=float, default=None,
                        help="inference energy budget in joules (optional)")
    parser.add_argument("--n-train", type=int, default=60_000,
                        help="training samples the deployment will process")
    parser.add_argument("--n-infer", type=int, default=10_000,
                        help="inference samples the deployment will process")
    parser.add_argument("--n-add", type=int, default=25,
                        help="search step in excitatory neurons (default: 25)")
    parser.add_argument("--image-size", type=int, default=14,
                        help="side length of the input images (default: 14)")
    parser.add_argument("--device", default="Jetson Nano",
                        help="target device profile (default: Jetson Nano)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    device = get_device(args.device)
    base_config = SpikeDynConfig.scaled_down(
        n_input=args.image_size * args.image_size,
        n_exc=args.n_add,
        seed=args.seed,
    )

    print(f"searching for the largest SpikeDyn model that fits:")
    print(f"  memory budget          : {args.memory_kb:.0f} KB")
    if args.train_energy_j is not None:
        print(f"  training energy budget : {args.train_energy_j:g} J "
              f"({args.n_train} samples)")
    if args.infer_energy_j is not None:
        print(f"  inference energy budget: {args.infer_energy_j:g} J "
              f"({args.n_infer} samples)")
    print(f"  target device          : {device.name}\n")

    result = search_snn_model(
        base_config,
        memory_budget_bytes=args.memory_kb * 1024.0,
        training_energy_budget_joules=args.train_energy_j,
        inference_energy_budget_joules=args.infer_energy_j,
        n_training_samples=args.n_train,
        n_inference_samples=args.n_infer,
        n_add=args.n_add,
        device=device,
        rng=args.seed,
    )

    rows = []
    for candidate in result.candidates:
        rows.append([
            candidate.n_exc,
            candidate.memory_bytes / 1024.0,
            (candidate.training_energy.joules
             if candidate.training_energy is not None else float("nan")),
            (candidate.inference_energy.joules
             if candidate.inference_energy is not None else float("nan")),
            "yes" if candidate.feasible else f"no ({candidate.rejection_reason})",
        ])
    print(format_table(
        ["n_exc", "memory_KB", "training_E_J", "inference_E_J", "feasible"], rows
    ))

    print()
    if result.selected is None:
        print("no candidate satisfies every constraint — relax the budgets or "
              "reduce the input size")
    else:
        selected = result.selected
        print(f"selected model: {selected.n_exc} excitatory neurons "
              f"({selected.memory_bytes / 1024.0:.1f} KB)")
        speedup = (result.actual_run_time_seconds(args.n_train, args.n_infer)
                   / max(result.exploration_time_seconds(), 1e-12))
        print(f"exploration used one sample per candidate and phase; actually "
              f"running every configuration would have taken ~{speedup:,.0f}x longer")


if __name__ == "__main__":
    main()

"""Train a model, publish it as an artifact, serve it, and query it.

The full serving walkthrough in one script:

1. train a tiny SpikeDyn model on a few synthetic digit classes;
2. publish it into a versioned :class:`~repro.serving.ArtifactRegistry`;
3. boot the micro-batching HTTP server on an ephemeral port (the same
   stack as ``repro serve``);
4. query it concurrently over HTTP and check the answers against the
   offline batched evaluation path;
5. print the serving metrics (batch-size histogram, latency quantiles,
   drift state).

Run::

    python examples/serve_and_query.py
    python examples/serve_and_query.py --classes 0 1 2 --requests 24
"""

from __future__ import annotations

import argparse
import json
import tempfile

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.evaluation.reporting import format_table
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving import (
    ArtifactRegistry,
    ModelServer,
    ReplicaPool,
    SpikeCountDriftDetector,
    fetch_json,
    http_sender,
    offline_predictions,
    run_load,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--classes", type=int, nargs="+", default=[0, 1, 2],
                        help="digit classes to train and query")
    parser.add_argument("--n-exc", type=int, default=16,
                        help="excitatory neurons")
    parser.add_argument("--train-per-class", type=int, default=3,
                        help="training samples per class")
    parser.add_argument("--requests", type=int, default=18,
                        help="number of concurrent queries to fire")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="client threads")
    parser.add_argument("--workers", type=int, default=2,
                        help="serving replica workers")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batch bound")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    # 1. Train.
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=args.n_exc,
                                        t_sim=40.0, seed=args.seed)
    model = SpikeDynModel(config)
    source = SyntheticDigits(image_size=14, seed=args.seed)
    print(f"training spikedyn ({args.n_exc} neurons) on classes "
          f"{args.classes} ...")
    assign_images, assign_labels = [], []
    for cls in args.classes:
        for image in source.generate(cls, args.train_per_class,
                                     rng=args.seed + 1):
            model.train_sample(image)
        for image in source.generate(cls, 2, rng=args.seed + 2):
            assign_images.append(image)
            assign_labels.append(cls)
    model.assign_labels(assign_images, assign_labels)

    with tempfile.TemporaryDirectory(prefix="repro-serve-example-") as tmp:
        # 2. Publish a versioned artifact.
        registry = ArtifactRegistry(tmp)
        path = registry.publish(model, "digits")
        artifact = registry.load("digits")
        print(f"published artifact version v{registry.latest_version('digits')} "
              f"at {path}")

        # 3. Serve it (ephemeral port; `repro serve <dir>` is the CLI twin).
        pool = ReplicaPool.from_artifact(
            artifact, workers=args.workers, max_batch=args.max_batch,
            drift_detector=SpikeCountDriftDetector(window=8),
        )
        with ModelServer(pool, port=0) as server:
            print(f"serving at {server.url} "
                  f"(workers={args.workers}, max_batch={args.max_batch})")

            # 4. Query it concurrently and compare with offline evaluation.
            images, labels = [], []
            per_class = max(1, args.requests // len(args.classes))
            for cls in args.classes:
                for image in source.generate(cls, per_class,
                                             rng=args.seed + 7):
                    images.append(np.asarray(image, dtype=float))
                    labels.append(cls)
            seeds = list(range(len(images)))
            report = run_load(http_sender(server.url), images, seeds,
                              concurrency=args.concurrency)
            reference = offline_predictions(artifact.build_model(),
                                            images, seeds)

            rows = []
            for cls in args.classes:
                mask = np.asarray(labels) == cls
                correct = int((report.predictions[mask] == cls).sum())
                rows.append([f"digit-{cls}", int(mask.sum()), correct])
            print()
            print("Predictions over HTTP")
            print(format_table(["class", "queried", "correct"], rows))
            matches = int((report.predictions == reference).sum())
            print(f"served == offline batched path: {matches}/{len(images)}")
            print(f"throughput: {report.throughput_rps:.0f} req/s at "
                  f"concurrency {args.concurrency} "
                  f"(p95 {report.latency_quantile_ms(95):.1f} ms)")

            # 5. Metrics.
            metrics = fetch_json(server.url, "/metrics.json")
            print()
            print("Serving metrics")
            print(f"  requests     : {metrics['requests_total']}")
            print(f"  micro-batches: {metrics['batches_total']} "
                  f"(histogram {json.dumps(metrics['batch_size_histogram'])})")
            latency = metrics["latency"]
            print(f"  latency ms   : p50 {latency.get('p50_ms', 0.0):.1f}  "
                  f"p95 {latency.get('p95_ms', 0.0):.1f}  "
                  f"p99 {latency.get('p99_ms', 0.0):.1f}")
            drift = metrics.get("drift") or {}
            print(f"  drift        : calibrated={drift.get('calibrated')} "
                  f"alarm={drift.get('alarm')}")


if __name__ == "__main__":
    main()

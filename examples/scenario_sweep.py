"""Sweep the continual-learning scenario catalogue across models.

The SpikeDyn paper evaluates two environments: strict task-incremental
("dynamic") and i.i.d. shuffled ("non-dynamic").  The scenario engine
(`repro.scenarios`) generalizes these into a composable catalogue —
class-incremental arrival, recurring tasks, concept drift, input corruption,
class imbalance — and `repro.evaluation.continual` measures the standard
continual-learning metrics on each: average accuracy, average forgetting,
backward transfer, and forward transfer.

This example runs a selection of scenarios for the chosen models and prints
one summary row per (scenario, model) pair, plus the retention curve of the
first task under the most adversarial scenario of the sweep.

Run with::

    python examples/scenario_sweep.py [--scenarios class-incremental recurring]
                                      [--models baseline spikedyn] [--n-exc 20]
"""

from __future__ import annotations

import argparse

from repro.evaluation.reporting import format_table
from repro.experiments.common import MODEL_ORDER, ExperimentScale
from repro.experiments.scenarios import run_scenario_study
from repro.scenarios import scenario_names

DEFAULT_SCENARIOS = ("class-incremental", "recurring", "label-drift", "corrupted")


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", nargs="+", default=list(DEFAULT_SCENARIOS),
                        choices=scenario_names(),
                        help="catalogue scenarios to sweep")
    parser.add_argument("--models", nargs="+", default=list(MODEL_ORDER),
                        choices=list(MODEL_ORDER), help="models to compare")
    parser.add_argument("--n-exc", type=int, default=20,
                        help="number of excitatory neurons (default: 20)")
    parser.add_argument("--image-size", type=int, default=14,
                        help="side length of the synthetic digits (default: 14)")
    parser.add_argument("--classes", type=int, nargs="+", default=[0, 1, 2, 3],
                        help="classes the scenarios are built over")
    parser.add_argument("--samples-per-task", type=int, default=4,
                        help="training samples per task visit (default: 4)")
    parser.add_argument("--eval-per-class", type=int, default=3,
                        help="evaluation samples per class (default: 3)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    scale = ExperimentScale(
        image_size=args.image_size,
        network_sizes=(args.n_exc,),
        class_sequence=tuple(args.classes),
        samples_per_task=args.samples_per_task,
        eval_samples_per_class=args.eval_per_class,
        seed=args.seed,
    )

    studies = {}
    for scenario in args.scenarios:
        print(f"running scenario {scenario!r} for {', '.join(args.models)} ...")
        studies[scenario] = run_scenario_study(
            scale, scenario=scenario, models=tuple(args.models)
        )

    print()
    print("Continual-learning summary per scenario "
          "(accuracies and transfers in percentage points)")
    rows = []
    for scenario, study in studies.items():
        for model, result in study.results.items():
            summary = result.summary()
            rows.append([
                scenario, model,
                summary["average_accuracy"] * 100.0,
                summary["average_forgetting"] * 100.0,
                summary["backward_transfer"] * 100.0,
                summary["forward_transfer"] * 100.0,
            ])
    print(format_table(
        ["scenario", "model", "avg_accuracy", "avg_forgetting", "bwt", "fwt"], rows
    ))

    # Retention of the first task under the last swept scenario: how does the
    # accuracy of task 0 evolve while the later phases arrive?
    scenario, study = next(reversed(studies.items()))
    print()
    print(f"Retention curve of task 0 under {scenario!r} [%]")
    rows = []
    for model, result in study.results.items():
        curve = result.retention_curve(0)
        rows.append([model] + [value * 100.0 for value in curve])
    n_points = max(len(row) - 1 for row in rows)
    headers = ["model"] + [f"phase+{i}" for i in range(n_points)]
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()

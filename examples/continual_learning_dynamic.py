"""Continual learning in a dynamic environment (IoT-Edge scenario).

This example reproduces the paper's motivating use case: an embedded SNN
system deployed in a dynamically changing environment receives tasks
*consecutively* — first a stream of digit-0 samples, then digit-1, and so on —
without ever seeing previous tasks again.  A system without a forgetting
mechanism (the Diehl & Cook baseline) fills up its synapses with the first
tasks and fails to learn later ones; SpikeDyn keeps learning new tasks while
retaining most of the old information.

The script trains the baseline, ASP, and SpikeDyn on the same dynamic stream
and prints, for every technique,

* the accuracy on each task right after it was learned ("learning new tasks"),
* the accuracy on each task at the end of the sequence ("retaining old
  information"), and
* the forgetting per task (the difference between the two).

Run with::

    python examples/continual_learning_dynamic.py [--tasks 0 1 2 3 4] [--n-exc 40]
"""

from __future__ import annotations

import argparse

from repro import ASPModel, DiehlCookModel, SpikeDynConfig, SpikeDynModel, SyntheticDigits
from repro.evaluation import run_dynamic_protocol
from repro.evaluation.metrics import forgetting
from repro.evaluation.reporting import format_table

MODELS = {
    "baseline": DiehlCookModel,
    "asp": ASPModel,
    "spikedyn": SpikeDynModel,
}


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, nargs="+", default=[0, 1, 2, 3, 4],
                        help="task (class) sequence fed to the network")
    parser.add_argument("--n-exc", type=int, default=40,
                        help="number of excitatory neurons (default: 40)")
    parser.add_argument("--image-size", type=int, default=14,
                        help="side length of the synthetic digits (default: 14)")
    parser.add_argument("--samples-per-task", type=int, default=8,
                        help="training samples per task (default: 8)")
    parser.add_argument("--eval-per-class", type=int, default=4,
                        help="evaluation samples per class (default: 4)")
    parser.add_argument("--models", nargs="+", default=list(MODELS),
                        choices=list(MODELS), help="which models to compare")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = SpikeDynConfig.scaled_down(
        n_input=args.image_size * args.image_size,
        n_exc=args.n_exc,
        seed=args.seed,
    )

    results = {}
    for name in args.models:
        print(f"running the dynamic protocol for {name!r} "
              f"(tasks {args.tasks}, {args.samples_per_task} samples/task)...")
        model = MODELS[name](config)
        source = SyntheticDigits(image_size=args.image_size, seed=args.seed)
        results[name] = run_dynamic_protocol(
            model,
            source,
            class_sequence=args.tasks,
            samples_per_task=args.samples_per_task,
            eval_samples_per_class=args.eval_per_class,
            rng=args.seed,
        )

    print()
    print("Accuracy on the most recently learned task [%] "
          "(capability of learning new tasks)")
    headers = ["model"] + [f"digit-{task}" for task in args.tasks] + ["mean"]
    rows = []
    for name, result in results.items():
        per_task = [result.recent_task_accuracy[task] * 100.0 for task in args.tasks]
        rows.append([name] + per_task + [result.mean_recent_accuracy * 100.0])
    print(format_table(headers, rows))

    print()
    print("Accuracy on previously learned tasks [%] "
          "(capability of retaining old information)")
    rows = []
    for name, result in results.items():
        per_task = [result.final_task_accuracy[task] * 100.0 for task in args.tasks]
        rows.append([name] + per_task + [result.mean_final_accuracy * 100.0])
    print(format_table(headers, rows))

    print()
    print("Forgetting per task [accuracy points] "
          "(recent accuracy minus final accuracy; higher = more forgetting)")
    rows = []
    for name, result in results.items():
        per_task_forgetting = forgetting(result.recent_task_accuracy,
                                         result.final_task_accuracy)
        rows.append([name] + [per_task_forgetting[task] * 100.0 for task in args.tasks]
                    + [sum(per_task_forgetting.values()) / len(per_task_forgetting) * 100.0])
    print(format_table(headers, rows))


if __name__ == "__main__":
    main()

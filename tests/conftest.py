"""Shared fixtures for the test suite.

The fixtures provide small, deterministic building blocks: a tiny
configuration (14x14 input, a handful of excitatory neurons, short
presentation window), a synthetic digit source, and pre-built models.  All
stochastic components are seeded so test outcomes are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.experiments.common import ExperimentScale


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> SpikeDynConfig:
    """A laptop-scale configuration (14x14 input, 12 excitatory neurons)."""
    return SpikeDynConfig.scaled_down(n_input=196, n_exc=12, t_sim=40.0, seed=0)


@pytest.fixture
def tiny_source() -> SyntheticDigits:
    """A 14x14 synthetic digit source with a fixed seed."""
    return SyntheticDigits(image_size=14, seed=0)


@pytest.fixture
def micro_scale() -> ExperimentScale:
    """The smallest valid scale — used for job payloads and cheap drivers."""
    return ExperimentScale.tiny(
        network_sizes=(8,),
        class_sequence=(0, 1),
        samples_per_task=2,
        eval_samples_per_class=2,
        nondynamic_checkpoints=(2,),
        t_sim=30.0,
    )


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """The smallest experiment scale used by the experiment-driver tests."""
    return ExperimentScale.tiny(
        network_sizes=(8, 12),
        class_sequence=(0, 1),
        samples_per_task=2,
        eval_samples_per_class=2,
        nondynamic_checkpoints=(2, 4),
        t_sim=30.0,
    )


@pytest.fixture
def digit_image(tiny_source: SyntheticDigits,
                rng: np.random.Generator) -> np.ndarray:
    """One 14x14 synthetic digit-3 image."""
    return tiny_source.generate(3, 1, rng=rng)[0]


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the execution ledger at a per-test directory.

    The CLI attaches a ledger by default, so without this every test that
    goes through ``repro.cli.main`` would append to the developer's real
    ``~/.cache/repro/ledger``."""
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))

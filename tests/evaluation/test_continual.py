"""Unit tests for the continual-learning evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.continual import ContinualResult, run_scenario_protocol
from repro.models.spikedyn_model import SpikeDynModel
from repro.scenarios.spec import Phase, ScenarioSpec


def make_result(matrix, phases, tasks):
    return ContinualResult(
        model_name="m",
        scenario="s",
        phases=phases,
        task_classes=tasks,
        accuracy_matrix=np.asarray(matrix, dtype=float),
    )


def incremental_phases(n):
    return [Phase(index=i, task_id=i, classes=(i,)) for i in range(n)]


class TestContinualMetrics:
    def test_average_accuracy_is_the_last_row_mean(self):
        result = make_result(
            [[0.8, 0.1], [0.6, 0.9]], incremental_phases(2), {0: (0,), 1: (1,)}
        )
        assert result.average_accuracy == pytest.approx(0.75)
        assert result.final_accuracies == {0: 0.6, 1: 0.9}

    def test_average_forgetting_uses_the_best_earlier_accuracy(self):
        # Task 0 peaked at 0.9 (phase 0) and ended at 0.5 -> forgot 0.4.
        # Task 1 is last-trained at the final phase -> no history, excluded.
        result = make_result(
            [[0.9, 0.2], [0.5, 0.8]], incremental_phases(2), {0: (0,), 1: (1,)}
        )
        assert result.average_forgetting == pytest.approx(0.4)

    def test_backward_transfer_measures_final_minus_when_trained(self):
        result = make_result(
            [[0.9, 0.2], [0.5, 0.8]], incremental_phases(2), {0: (0,), 1: (1,)}
        )
        # Only task 0 has later phases: 0.5 - 0.9 = -0.4.
        assert result.backward_transfer == pytest.approx(-0.4)

    def test_forward_transfer_is_relative_to_chance(self):
        result = make_result(
            [[0.9, 0.3], [0.5, 0.8]], incremental_phases(2), {0: (0,), 1: (1,)}
        )
        # Task 1 before first training: 0.3; chance is 0.1.
        assert result.forward_transfer == pytest.approx(0.2)

    def test_recurring_task_uses_its_last_training_phase(self):
        phases = [
            Phase(index=0, task_id=0, classes=(0,)),
            Phase(index=1, task_id=1, classes=(1,)),
            Phase(index=2, task_id=0, classes=(0,)),
        ]
        result = make_result(
            [[0.9, 0.0], [0.4, 0.8], [0.7, 0.6]], phases, {0: (0,), 1: (1,)}
        )
        assert result.first_trained_phase(0) == 0
        assert result.last_trained_phase(0) == 2
        # Task 0 is last trained in the final phase -> excluded from BWT;
        # task 1: 0.6 - 0.8 = -0.2.
        assert result.backward_transfer == pytest.approx(-0.2)

    def test_retention_curve_starts_at_first_training(self):
        result = make_result(
            [[0.9, 0.2], [0.5, 0.8]], incremental_phases(2), {0: (0,), 1: (1,)}
        )
        assert result.retention_curve(0) == [0.9, 0.5]
        assert result.retention_curve(1) == [0.8]

    def test_single_phase_has_zero_forgetting_and_transfers(self):
        result = make_result([[0.7]], incremental_phases(1), {0: (0,)})
        assert result.average_forgetting == 0.0
        assert result.backward_transfer == 0.0
        assert result.forward_transfer == 0.0

    def test_unknown_task_rejected(self):
        result = make_result([[0.7]], incremental_phases(1), {0: (0,)})
        with pytest.raises(KeyError):
            result.retention_curve(9)

    def test_summary_contains_every_metric(self):
        result = make_result(
            [[0.9, 0.2], [0.5, 0.8]], incremental_phases(2), {0: (0,), 1: (1,)}
        )
        assert set(result.summary()) == {
            "average_accuracy", "average_forgetting",
            "backward_transfer", "forward_transfer",
        }


class TestRunScenarioProtocol:
    @pytest.fixture
    def spec(self):
        return ScenarioSpec(
            name="ci",
            schedule={"kind": "class_incremental", "tasks": [[0], [1]],
                      "samples_per_task": 2},
        )

    def test_matrix_shape_and_range(self, tiny_config, tiny_source, spec):
        model = SpikeDynModel(tiny_config)
        result = run_scenario_protocol(
            model, tiny_source, spec, eval_samples_per_class=2, rng=0
        )
        assert result.accuracy_matrix.shape == (2, 2)
        assert (result.accuracy_matrix >= 0.0).all()
        assert (result.accuracy_matrix <= 1.0).all()
        assert result.scenario == "ci"
        assert result.task_classes == {0: (0,), 1: (1,)}
        # Chance is relative to the scenario's two declared classes, not the
        # full ten-digit universe.
        assert result.chance_level == pytest.approx(0.5)

    def test_fixed_seed_is_deterministic(self, tiny_config, tiny_source, spec):
        first = run_scenario_protocol(
            SpikeDynModel(tiny_config), tiny_source, spec,
            eval_samples_per_class=2, rng=3,
        )
        second = run_scenario_protocol(
            SpikeDynModel(tiny_config), tiny_source, spec,
            eval_samples_per_class=2, rng=3,
        )
        np.testing.assert_array_equal(
            first.accuracy_matrix, second.accuracy_matrix
        )

    def test_eval_batch_size_installed_on_the_model(self, tiny_config,
                                                    tiny_source, spec):
        model = SpikeDynModel(tiny_config)
        run_scenario_protocol(
            model, tiny_source, spec, eval_samples_per_class=2,
            eval_batch_size=4, rng=0,
        )
        assert model.eval_batch_size == 4

    def test_invalid_eval_settings_rejected(self, tiny_config, tiny_source, spec):
        with pytest.raises(ValueError):
            run_scenario_protocol(
                SpikeDynModel(tiny_config), tiny_source, spec,
                eval_samples_per_class=0, rng=0,
            )

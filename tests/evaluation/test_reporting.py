"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

import pytest

from repro.evaluation.reporting import format_percentage, format_table, normalize_to


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1.0], ["b", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "a" in lines[2] and "1.000" in lines[2]
        assert "b" in lines[3] and "2.500" in lines[3]

    def test_columns_are_aligned(self):
        text = format_table(["col", "x"], [["long-entry", 1.0], ["s", 2.0]])
        lines = text.splitlines()
        assert lines[2].index("1.000") == lines[3].index("2.000")

    def test_custom_float_format(self):
        text = format_table(["v"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text
        assert "1.2345" not in text

    def test_non_float_values_use_str(self):
        text = format_table(["a", "b"], [[7, None]])
        assert "7" in text
        assert "None" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one-cell"]])

    def test_empty_rows_render_headers_only(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestNormalizeTo:
    def test_reference_becomes_one(self):
        normalized = normalize_to({"baseline": 4.0, "asp": 6.0, "spikedyn": 2.0},
                                  "baseline")
        assert normalized["baseline"] == 1.0
        assert normalized["asp"] == pytest.approx(1.5)
        assert normalized["spikedyn"] == pytest.approx(0.5)

    def test_missing_reference_rejected(self):
        with pytest.raises(KeyError):
            normalize_to({"a": 1.0}, "missing")

    def test_zero_reference_rejected(self):
        with pytest.raises(ZeroDivisionError):
            normalize_to({"a": 0.0, "b": 1.0}, "a")


class TestFormatPercentage:
    def test_rendering(self):
        assert format_percentage(0.735) == "73.5%"
        assert format_percentage(1.0) == "100.0%"
        assert format_percentage(0.0) == "0.0%"

"""Tests for the dynamic and non-dynamic evaluation protocols (Section IV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.evaluation.protocols import (
    DynamicProtocolResult,
    NonDynamicProtocolResult,
    run_dynamic_protocol,
    run_nondynamic_protocol,
)
from repro.models.spikedyn_model import SpikeDynModel


@pytest.fixture
def config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=64, n_exc=8, t_sim=20.0, seed=0)


@pytest.fixture
def source() -> SyntheticDigits:
    return SyntheticDigits(image_size=8, seed=0)


class TestDynamicProtocol:
    def test_result_structure(self, config, source):
        model = SpikeDynModel(config)
        result = run_dynamic_protocol(model, source, class_sequence=[0, 1],
                                      samples_per_task=2,
                                      eval_samples_per_class=2, rng=0)
        assert isinstance(result, DynamicProtocolResult)
        assert result.model_name == "spikedyn"
        assert result.class_sequence == [0, 1]
        assert set(result.recent_task_accuracy) == {0, 1}
        assert set(result.final_task_accuracy) == {0, 1}
        assert result.confusion.shape == (10, 10)

    def test_accuracies_are_fractions(self, config, source):
        model = SpikeDynModel(config)
        result = run_dynamic_protocol(model, source, class_sequence=[0, 1],
                                      samples_per_task=2,
                                      eval_samples_per_class=2, rng=0)
        for value in list(result.recent_task_accuracy.values()) + list(
                result.final_task_accuracy.values()):
            assert 0.0 <= value <= 1.0
        assert 0.0 <= result.mean_recent_accuracy <= 1.0
        assert 0.0 <= result.mean_final_accuracy <= 1.0

    def test_confusion_counts_match_the_evaluation_set(self, config, source):
        model = SpikeDynModel(config)
        result = run_dynamic_protocol(model, source, class_sequence=[0, 1, 2],
                                      samples_per_task=2,
                                      eval_samples_per_class=3, rng=0)
        assert result.confusion.sum() == 3 * 3
        for task in (0, 1, 2):
            assert result.confusion[task].sum() == 3
        # Tasks that never appeared contribute no confusion rows.
        assert result.confusion[5].sum() == 0

    def test_training_happens(self, config, source):
        model = SpikeDynModel(config)
        run_dynamic_protocol(model, source, class_sequence=[0, 1],
                             samples_per_task=3, eval_samples_per_class=2, rng=0)
        assert model.samples_trained == 6

    def test_model_is_trained_task_by_task(self, config, source):
        """The stream is consecutive (dynamic): after the protocol, the model
        saw samples_per_task samples of each class, in sequence order."""
        seen = []

        class RecordingModel(SpikeDynModel):
            def train_sample(self, image):
                seen.append(np.asarray(image).copy())
                return super().train_sample(image)

        model = RecordingModel(config)
        run_dynamic_protocol(model, source, class_sequence=[1, 0],
                             samples_per_task=2, eval_samples_per_class=2, rng=0)
        assert len(seen) == 4

    def test_empty_class_sequence_rejected(self, config, source):
        model = SpikeDynModel(config)
        with pytest.raises(ValueError):
            run_dynamic_protocol(model, source, class_sequence=[],
                                 samples_per_task=2, eval_samples_per_class=2)

    def test_invalid_sample_counts_rejected(self, config, source):
        model = SpikeDynModel(config)
        with pytest.raises(ValueError):
            run_dynamic_protocol(model, source, samples_per_task=0)
        with pytest.raises(ValueError):
            run_dynamic_protocol(model, source, eval_samples_per_class=0)

    def test_mean_accuracies(self):
        result = DynamicProtocolResult(
            model_name="m", class_sequence=[0, 1],
            recent_task_accuracy={0: 1.0, 1: 0.5},
            final_task_accuracy={0: 0.25, 1: 0.75},
        )
        assert result.mean_recent_accuracy == pytest.approx(0.75)
        assert result.mean_final_accuracy == pytest.approx(0.5)


class TestNonDynamicProtocol:
    def test_result_structure(self, config, source):
        model = SpikeDynModel(config)
        result = run_nondynamic_protocol(model, source, checkpoints=(2, 4),
                                         classes=[0, 1],
                                         eval_samples_per_class=2, rng=0)
        assert isinstance(result, NonDynamicProtocolResult)
        assert result.checkpoints == [2, 4]
        assert set(result.accuracy_at_checkpoint) == {2, 4}
        for value in result.accuracy_at_checkpoint.values():
            assert 0.0 <= value <= 1.0

    def test_trains_exactly_up_to_the_last_checkpoint(self, config, source):
        model = SpikeDynModel(config)
        run_nondynamic_protocol(model, source, checkpoints=(2, 5), classes=[0, 1],
                                eval_samples_per_class=2, rng=0)
        assert model.samples_trained == 5

    def test_final_accuracy_property(self):
        result = NonDynamicProtocolResult(
            model_name="m", checkpoints=[2, 4],
            accuracy_at_checkpoint={2: 0.5, 4: 0.8},
        )
        assert result.final_accuracy == 0.8

    def test_final_accuracy_requires_checkpoints(self):
        with pytest.raises(ValueError):
            NonDynamicProtocolResult(model_name="m").final_accuracy

    def test_checkpoints_must_be_increasing_and_positive(self, config, source):
        model = SpikeDynModel(config)
        with pytest.raises(ValueError):
            run_nondynamic_protocol(model, source, checkpoints=(4, 2))
        with pytest.raises(ValueError):
            run_nondynamic_protocol(model, source, checkpoints=(0, 2))
        with pytest.raises(ValueError):
            run_nondynamic_protocol(model, source, checkpoints=())


class TestProtocolDeterminism:
    def test_same_seed_same_result(self, config, source):
        def run():
            model = SpikeDynModel(config)
            fresh_source = SyntheticDigits(image_size=8, seed=0)
            return run_dynamic_protocol(model, fresh_source, class_sequence=[0, 1],
                                        samples_per_task=2,
                                        eval_samples_per_class=2, rng=3)

        first, second = run(), run()
        assert first.recent_task_accuracy == second.recent_task_accuracy
        assert first.final_task_accuracy == second.final_task_accuracy
        np.testing.assert_array_equal(first.confusion, second.confusion)


class TestEvalBatchSizePlumbing:
    def test_dynamic_protocol_installs_the_batch_size(self, config, source):
        model = SpikeDynModel(config)
        run_dynamic_protocol(model, source, class_sequence=[0],
                             samples_per_task=2, eval_samples_per_class=2,
                             eval_batch_size=4, rng=0)
        assert model.eval_batch_size == 4

    def test_nondynamic_protocol_installs_the_batch_size(self, config, source):
        model = SpikeDynModel(config)
        run_nondynamic_protocol(model, source, checkpoints=[2], classes=[0, 1],
                                eval_samples_per_class=2, eval_batch_size=8,
                                rng=0)
        assert model.eval_batch_size == 8

    def test_invalid_batch_size_is_rejected(self, config, source):
        model = SpikeDynModel(config)
        with pytest.raises(ValueError, match="eval_batch_size"):
            run_nondynamic_protocol(model, source, checkpoints=[2],
                                    classes=[0], eval_samples_per_class=2,
                                    eval_batch_size=0, rng=0)

    def test_results_are_independent_of_the_batch_size(self, config, source):
        """Chunk size must not change protocol outcomes (exact equality)."""
        outcomes = []
        for size in (2, 8):
            model = SpikeDynModel(config)
            result = run_dynamic_protocol(model, source, class_sequence=[0, 1],
                                          samples_per_task=2,
                                          eval_samples_per_class=2,
                                          eval_batch_size=size, rng=0)
            outcomes.append(result)
        assert outcomes[0].recent_task_accuracy == outcomes[1].recent_task_accuracy
        assert outcomes[0].final_task_accuracy == outcomes[1].final_task_accuracy
        np.testing.assert_array_equal(outcomes[0].confusion, outcomes[1].confusion)

"""Tests for the classification metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import (
    accuracy,
    forgetting,
    improvement_percentage_points,
    mean_accuracy,
    per_class_accuracy,
    top_k_response_sparsity,
)


class TestAccuracy:
    def test_fraction_of_matches(self):
        assert accuracy(np.array([1, 2, 3, 4]), np.array([1, 2, 0, 4])) == 0.75

    def test_perfect_and_zero(self):
        assert accuracy(np.array([1, 1]), np.array([1, 1])) == 1.0
        assert accuracy(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1, 2]), np.array([1, 2, 3]))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestPerClassAccuracy:
    def test_per_class_breakdown(self):
        predictions = np.array([0, 0, 1, 2])
        labels = np.array([0, 1, 1, 2])
        result = per_class_accuracy(predictions, labels, classes=[0, 1, 2])
        assert result[0] == 1.0
        assert result[1] == 0.5
        assert result[2] == 1.0

    def test_missing_class_reported_as_nan(self):
        result = per_class_accuracy(np.array([0]), np.array([0]), classes=[0, 5])
        assert result[0] == 1.0
        assert np.isnan(result[5])

    def test_mean_accuracy_ignores_nan(self):
        assert mean_accuracy({0: 1.0, 1: 0.5, 2: float("nan")}) == pytest.approx(0.75)

    def test_mean_accuracy_with_only_nan_rejected(self):
        with pytest.raises(ValueError):
            mean_accuracy({0: float("nan")})


class TestImprovementPercentagePoints:
    def test_positive_improvement(self):
        assert improvement_percentage_points(0.75, 0.54) == pytest.approx(21.0)

    def test_negative_improvement(self):
        assert improvement_percentage_points(0.4, 0.5) == pytest.approx(-10.0)

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            improvement_percentage_points(1.2, 0.5)
        with pytest.raises(ValueError):
            improvement_percentage_points(0.5, -0.1)


class TestForgetting:
    def test_positive_when_accuracy_drops(self):
        recent = {0: 0.9, 1: 0.8}
        final = {0: 0.5, 1: 0.8}
        result = forgetting(recent, final)
        assert result[0] == pytest.approx(0.4)
        assert result[1] == pytest.approx(0.0)

    def test_missing_task_rejected(self):
        with pytest.raises(KeyError):
            forgetting({0: 0.9}, {1: 0.5})


class TestTopKSparsity:
    def test_single_dominant_neuron(self):
        responses = np.array([[10.0, 0.0, 0.0]])
        assert top_k_response_sparsity(responses, k=1) == pytest.approx(1.0)

    def test_uniform_responses(self):
        responses = np.ones((1, 4))
        assert top_k_response_sparsity(responses, k=1) == pytest.approx(0.25)

    def test_silent_samples_contribute_zero(self):
        responses = np.zeros((2, 4))
        assert top_k_response_sparsity(responses, k=2) == 0.0

    def test_k_larger_than_population(self):
        responses = np.array([[1.0, 2.0]])
        assert top_k_response_sparsity(responses, k=2) == pytest.approx(1.0)

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            top_k_response_sparsity(np.zeros(3), k=1)
        with pytest.raises(ValueError):
            top_k_response_sparsity(np.zeros((2, 3)), k=0)

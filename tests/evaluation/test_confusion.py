"""Tests for the confusion matrix (paper Fig. 10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.confusion import confusion_matrix, most_confused_pair


class TestConfusionMatrix:
    def test_rows_are_targets_columns_are_predictions(self):
        labels = np.array([0, 0, 1, 1])
        predictions = np.array([0, 1, 1, 1])
        matrix = confusion_matrix(labels, predictions, n_classes=2)
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_total_equals_sample_count(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 5, size=100)
        predictions = rng.integers(0, 5, size=100)
        matrix = confusion_matrix(labels, predictions, n_classes=5)
        assert matrix.sum() == 100

    def test_row_sums_match_class_counts(self):
        labels = np.array([0, 0, 0, 2, 2, 4])
        predictions = np.array([0, 1, 2, 2, 2, 4])
        matrix = confusion_matrix(labels, predictions, n_classes=5)
        np.testing.assert_array_equal(matrix.sum(axis=1), [3, 0, 2, 0, 1])

    def test_perfect_prediction_is_diagonal(self):
        labels = np.array([0, 1, 2, 3])
        matrix = confusion_matrix(labels, labels, n_classes=4)
        np.testing.assert_array_equal(matrix, np.eye(4, dtype=int))

    def test_repeated_pairs_accumulate(self):
        labels = np.array([4, 4, 4])
        predictions = np.array([9, 9, 9])
        matrix = confusion_matrix(labels, predictions, n_classes=10)
        assert matrix[4, 9] == 3

    def test_empty_inputs_give_a_zero_matrix(self):
        matrix = confusion_matrix(np.array([], dtype=int), np.array([], dtype=int), 3)
        assert matrix.shape == (3, 3)
        assert matrix.sum() == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]), 2)

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 5]), np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0, -1]), 2)


class TestMostConfusedPair:
    def test_finds_the_largest_off_diagonal_entry(self):
        matrix = np.array([
            [10, 1, 0],
            [0, 12, 2],
            [7, 0, 5],
        ])
        assert most_confused_pair(matrix) == (2, 0)

    def test_ignores_the_diagonal(self):
        matrix = np.diag([100, 100, 100])
        target, predicted = most_confused_pair(matrix)
        assert target != predicted or matrix[target, predicted] == 0

    def test_paper_style_four_vs_nine_confusion(self):
        labels = np.array([4] * 10 + [9] * 10)
        predictions = np.array([9] * 8 + [4] * 2 + [9] * 10)
        matrix = confusion_matrix(labels, predictions, n_classes=10)
        assert most_confused_pair(matrix) == (4, 9)

    def test_rejects_non_square_input(self):
        with pytest.raises(ValueError):
            most_confused_pair(np.zeros((2, 3)))

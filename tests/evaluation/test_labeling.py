"""Tests for neuron labelling and response-based prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.labeling import assign_neuron_labels, predict_from_responses


class TestAssignNeuronLabels:
    def test_assigns_the_strongest_class(self):
        # Neuron 0 responds to class 0, neuron 1 to class 1.
        responses = np.array([
            [10.0, 0.0],   # sample of class 0
            [12.0, 1.0],   # sample of class 0
            [0.0, 9.0],    # sample of class 1
            [1.0, 11.0],   # sample of class 1
        ])
        labels = np.array([0, 0, 1, 1])
        assignments = assign_neuron_labels(responses, labels, n_classes=2)
        np.testing.assert_array_equal(assignments, [0, 1])

    def test_silent_neurons_stay_unassigned(self):
        responses = np.array([[5.0, 0.0], [4.0, 0.0]])
        labels = np.array([0, 1])
        assignments = assign_neuron_labels(responses, labels, n_classes=2)
        assert assignments[1] == -1

    def test_uses_mean_not_total_response(self):
        """A class with many weak samples must not beat one strong class."""
        responses = np.array([
            [1.0],  # class 0 (three samples, weak)
            [1.0],
            [1.0],
            [9.0],  # class 1 (one sample, strong)
        ])
        labels = np.array([0, 0, 0, 1])
        assignments = assign_neuron_labels(responses, labels, n_classes=2)
        assert assignments[0] == 1

    def test_classes_absent_from_the_assignment_set_are_ignored(self):
        responses = np.array([[3.0, 1.0]])
        labels = np.array([4])
        assignments = assign_neuron_labels(responses, labels, n_classes=10)
        np.testing.assert_array_equal(assignments, [4, 4])

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            assign_neuron_labels(np.zeros(3), np.zeros(3, dtype=int), 2)
        with pytest.raises(ValueError):
            assign_neuron_labels(np.zeros((3, 2)), np.zeros(4, dtype=int), 2)


class TestPredictFromResponses:
    def test_predicts_the_class_of_the_most_active_assigned_group(self):
        assignments = np.array([0, 0, 1])
        responses = np.array([
            [5.0, 6.0, 1.0],   # class-0 neurons dominate
            [0.0, 1.0, 9.0],   # class-1 neuron dominates
        ])
        predictions = predict_from_responses(responses, assignments, n_classes=2)
        np.testing.assert_array_equal(predictions, [0, 1])

    def test_scores_are_averaged_per_class_group(self):
        """Two weak class-0 neurons must not outvote one strong class-1 neuron."""
        assignments = np.array([0, 0, 1])
        responses = np.array([[2.0, 2.0, 5.0]])
        predictions = predict_from_responses(responses, assignments, n_classes=2)
        assert predictions[0] == 1

    def test_unassigned_neurons_do_not_vote(self):
        assignments = np.array([-1, 1])
        responses = np.array([[100.0, 1.0]])
        predictions = predict_from_responses(responses, assignments, n_classes=2)
        assert predictions[0] == 1

    def test_silent_sample_defaults_to_class_zero(self):
        assignments = np.array([0, 1])
        responses = np.zeros((1, 2))
        predictions = predict_from_responses(responses, assignments, n_classes=2)
        assert predictions[0] == 0

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            predict_from_responses(np.zeros((2, 3)), np.zeros(2, dtype=int), 2)
        with pytest.raises(ValueError):
            predict_from_responses(np.zeros(3), np.zeros(3, dtype=int), 2)

    def test_round_trip_with_labelling(self):
        """Labelling then predicting on the same well-separated responses
        recovers the original labels."""
        rng = np.random.default_rng(0)
        n_per_class, n_neurons = 10, 12
        responses, labels = [], []
        for cls in range(3):
            block = np.zeros((n_per_class, n_neurons))
            block[:, cls * 4:(cls + 1) * 4] = 5.0 + rng.random((n_per_class, 4))
            responses.append(block)
            labels.extend([cls] * n_per_class)
        responses = np.vstack(responses)
        labels = np.array(labels)
        assignments = assign_neuron_labels(responses, labels, n_classes=3)
        predictions = predict_from_responses(responses, assignments, n_classes=3)
        np.testing.assert_array_equal(predictions, labels)

"""Tests for the random-number-generator helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passes_through_unchanged(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(7)).random(3)
        b = ensure_rng(7).random(3)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("bad", ["seed", 1.5, [1, 2]])
    def test_rejects_other_types(self, bad):
        with pytest.raises(TypeError):
            ensure_rng(bad)


class TestSpawnRngs:
    def test_returns_requested_count(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4
        assert all(isinstance(child, np.random.Generator) for child in children)

    def test_children_are_deterministic_in_seed(self):
        first = [g.random(3) for g in spawn_rngs(0, 3)]
        second = [g.random(3) for g in spawn_rngs(0, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_children_are_mutually_independent(self):
        children = spawn_rngs(0, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.array_equal(a, b)

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

"""Tests for the lightweight logging facade."""

from __future__ import annotations

import io
import logging

from repro.utils.logging import configure_logging, get_logger


class TestGetLogger:
    def test_default_logger_is_library_namespaced(self):
        assert get_logger().name == "repro"

    def test_child_logger_name(self):
        assert get_logger("core.model_search").name == "repro.core.model_search"

    def test_child_logger_propagates_to_library_logger(self):
        child = get_logger("some.child")
        assert child.parent.name.startswith("repro")


class TestConfigureLogging:
    def test_attaches_stream_handler(self):
        stream = io.StringIO()
        logger = configure_logging(level=logging.INFO, stream=stream)
        logger.info("hello from the test")
        assert "hello from the test" in stream.getvalue()

    def test_respects_level(self):
        stream = io.StringIO()
        logger = configure_logging(level=logging.WARNING, stream=stream)
        logger.info("should be filtered")
        logger.warning("should appear")
        output = stream.getvalue()
        assert "should be filtered" not in output
        assert "should appear" in output

    def test_repeated_configuration_does_not_duplicate_handlers(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        configure_logging(stream=stream)
        logger = configure_logging(stream=stream)
        library_handlers = [
            handler for handler in logger.handlers
            if getattr(handler, "_repro_handler", False)
        ]
        assert len(library_handlers) == 1
        logger.warning("only once")
        assert stream.getvalue().count("only once") == 1

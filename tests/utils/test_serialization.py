"""Tests for the JSON / npz serialization helpers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.utils.serialization import load_arrays, load_json, save_arrays, save_json


class TestJsonRoundTrip:
    def test_plain_dict_round_trip(self, tmp_path):
        data = {"a": 1, "b": [1, 2, 3], "c": {"nested": "value"}}
        path = save_json(data, tmp_path / "data.json")
        assert load_json(path) == data

    def test_numpy_scalars_are_converted(self, tmp_path):
        data = {
            "int": np.int64(3),
            "float": np.float64(2.5),
            "bool": np.bool_(True),
            "array": np.arange(3),
        }
        path = save_json(data, tmp_path / "data.json")
        loaded = load_json(path)
        assert loaded == {"int": 3, "float": 2.5, "bool": True, "array": [0, 1, 2]}

    def test_creates_parent_directories(self, tmp_path):
        path = save_json({"x": 1}, tmp_path / "deep" / "nested" / "data.json")
        assert path.exists()

    def test_output_is_valid_json_text(self, tmp_path):
        path = save_json({"b": 2, "a": 1}, tmp_path / "data.json")
        with open(path, "r", encoding="utf-8") as handle:
            parsed = json.load(handle)
        assert parsed == {"a": 1, "b": 2}

    def test_unserializable_object_raises(self, tmp_path):
        with pytest.raises(TypeError):
            save_json({"x": object()}, tmp_path / "bad.json")


class TestArrayRoundTrip:
    def test_round_trip_preserves_values(self, tmp_path):
        arrays = {
            "weights": np.random.default_rng(0).random((4, 5)),
            "labels": np.array([1, 2, 3]),
        }
        path = save_arrays(arrays, tmp_path / "state.npz")
        loaded = load_arrays(path)
        assert set(loaded) == {"weights", "labels"}
        np.testing.assert_array_equal(loaded["weights"], arrays["weights"])
        np.testing.assert_array_equal(loaded["labels"], arrays["labels"])

    def test_suffix_is_normalized(self, tmp_path):
        path = save_arrays({"a": np.zeros(2)}, tmp_path / "state")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_arrays_are_copies(self, tmp_path):
        path = save_arrays({"a": np.arange(3)}, tmp_path / "state.npz")
        loaded = load_arrays(path)
        loaded["a"][0] = 99
        reloaded = load_arrays(path)
        assert reloaded["a"][0] == 0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_arrays(tmp_path / "missing.npz")

"""Tests for the argument-validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_choice,
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive_value(self):
        assert check_positive(2.5, "x") == 2.5

    def test_returns_float(self):
        assert isinstance(check_positive(3, "x"), float)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_infinity(self):
        with pytest.raises(ValueError):
            check_positive(float("inf"), "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_non_negative(7.0, "x") == 7.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_non_negative(float("nan"), "x")


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(5, "n") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(3), "n") == 3

    def test_result_is_builtin_int(self):
        assert type(check_positive_int(np.int64(3), "n")) is int

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "n")

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            check_positive_int(2.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_positive_int(True, "n")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan")])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")

    def test_fraction_alias(self):
        assert check_fraction(0.25, "f") == 0.25
        with pytest.raises(ValueError):
            check_fraction(2.0, "f")


class TestCheckShape:
    def test_accepts_matching_shape(self):
        array = np.zeros((2, 3))
        assert check_shape(array, (2, 3), "a") is not None

    def test_converts_lists(self):
        result = check_shape([[1, 2], [3, 4]], (2, 2), "a")
        assert isinstance(result, np.ndarray)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="a must have shape"):
            check_shape(np.zeros((2, 2)), (2, 3), "a")


class TestCheckChoice:
    def test_accepts_member(self):
        assert check_choice("set", ("set", "add"), "mode") == "set"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode"):
            check_choice("multiply", ("set", "add"), "mode")

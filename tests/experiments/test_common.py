"""Tests for the shared experiment infrastructure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import (
    MODEL_BUILDERS,
    MODEL_ORDER,
    ExperimentScale,
    build_model,
    default_digit_source,
    measure_sample_counters,
    sample_images,
)
from repro.models.asp_model import ASPModel
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel


class TestExperimentScale:
    def test_presets_exist_and_grow(self):
        tiny = ExperimentScale.tiny()
        small = ExperimentScale.small()
        paper = ExperimentScale.paper()
        assert max(tiny.network_sizes) < max(small.network_sizes) < max(paper.network_sizes)
        assert paper.image_size == 28
        assert paper.network_sizes == (200, 400)
        assert paper.t_sim == 350.0

    def test_n_input_is_square_of_image_size(self):
        assert ExperimentScale(image_size=14).n_input == 196

    def test_network_labels(self):
        scale = ExperimentScale(network_sizes=(200, 400))
        assert scale.network_labels == ("N200", "N400")

    def test_config_carries_the_scale_settings(self):
        scale = ExperimentScale(image_size=10, t_sim=44.0, update_interval=11.0,
                                seed=5)
        config = scale.config(17)
        assert config.n_input == 100
        assert config.n_exc == 17
        assert config.t_sim == 44.0
        assert config.update_interval == 11.0
        assert config.seed == 5

    def test_config_overrides(self):
        config = ExperimentScale().config(10, c_theta=0.25)
        assert config.c_theta == 0.25

    def test_replace(self):
        scale = ExperimentScale.tiny().replace(seed=9)
        assert scale.seed == 9

    def test_preset_overrides(self):
        scale = ExperimentScale.tiny(network_sizes=(5,))
        assert scale.network_sizes == (5,)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(network_sizes=())
        with pytest.raises(ValueError):
            ExperimentScale(class_sequence=())
        with pytest.raises(ValueError):
            ExperimentScale(samples_per_task=0)


class TestBuildModel:
    def test_registry_contains_the_three_partners(self):
        assert set(MODEL_BUILDERS) == {"baseline", "asp", "spikedyn"}
        assert MODEL_ORDER == ("baseline", "asp", "spikedyn")

    def test_builds_each_model(self, tiny_scale):
        config = tiny_scale.config(6)
        assert isinstance(build_model("baseline", config), DiehlCookModel)
        assert isinstance(build_model("asp", config), ASPModel)
        assert isinstance(build_model("spikedyn", config), SpikeDynModel)

    def test_name_is_case_insensitive(self, tiny_scale):
        config = tiny_scale.config(6)
        assert isinstance(build_model("SpikeDyn", config), SpikeDynModel)

    def test_unknown_name_rejected(self, tiny_scale):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("cnn", tiny_scale.config(6))


class TestDigitSourceAndImages:
    def test_source_matches_the_scale(self):
        scale = ExperimentScale.tiny(image_size=10)
        source = default_digit_source(scale)
        assert source.image_size == 10

    def test_sample_images_shape(self):
        scale = ExperimentScale.tiny(image_size=10)
        images = sample_images(scale, 3)
        assert images.shape == (3, 10, 10)

    def test_sample_images_are_seed_deterministic(self):
        scale = ExperimentScale.tiny()
        np.testing.assert_array_equal(sample_images(scale, 2), sample_images(scale, 2))


class TestMeasureSampleCounters:
    def test_measures_both_phases(self, tiny_scale):
        model = build_model("spikedyn", tiny_scale.config(6))
        images = sample_images(tiny_scale, 2)
        counters = measure_sample_counters(model, images)
        assert counters.model_name == "spikedyn"
        assert counters.n_exc == 6
        assert counters.training.total_ops() > 0
        assert counters.inference.total_ops() > 0

    def test_training_costs_at_least_as_much_as_inference(self, tiny_scale):
        model = build_model("spikedyn", tiny_scale.config(6))
        counters = measure_sample_counters(model, sample_images(tiny_scale, 2))
        assert counters.training.total_ops() >= counters.inference.total_ops()

    def test_requires_at_least_one_image(self, tiny_scale):
        model = build_model("spikedyn", tiny_scale.config(6))
        with pytest.raises(ValueError):
            measure_sample_counters(model, [])

    def test_asp_training_is_most_expensive(self, tiny_scale):
        """The Fig. 1(b)/Fig. 11 energy ordering at the operation-count level."""
        images = sample_images(tiny_scale, 2)
        totals = {}
        for name in MODEL_ORDER:
            model = build_model(name, tiny_scale.config(8))
            totals[name] = measure_sample_counters(model, images).training.total_ops()
        assert totals["asp"] > totals["baseline"]
        assert totals["spikedyn"] < totals["asp"]

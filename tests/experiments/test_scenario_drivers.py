"""Tests for the scenario experiment drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.scenarios import (
    run_class_incremental_scenario,
    run_scenario_study,
)


class TestRunScenarioStudy:
    def test_runs_every_requested_model(self, micro_scale):
        result = run_scenario_study(
            micro_scale, scenario="class-incremental",
            models=("baseline", "spikedyn"),
        )
        assert set(result.results) == {"baseline", "spikedyn"}
        assert result.n_exc == max(micro_scale.network_sizes)
        assert result.scenario == "class-incremental"

    def test_report_contains_matrix_and_summary(self, micro_scale):
        result = run_class_incremental_scenario(
            micro_scale, models=("spikedyn",)
        )
        text = result.to_text()
        assert "accuracy matrix of 'spikedyn'" in text
        assert "avg_forgetting" in text
        assert "task-0" in text

    def test_deterministic_for_a_fixed_seed(self, micro_scale):
        first = run_scenario_study(micro_scale, scenario="corrupted",
                                   models=("spikedyn",))
        second = run_scenario_study(micro_scale, scenario="corrupted",
                                    models=("spikedyn",))
        np.testing.assert_array_equal(
            first.results["spikedyn"].accuracy_matrix,
            second.results["spikedyn"].accuracy_matrix,
        )
        assert first.to_text() == second.to_text()

    def test_seed_changes_the_study(self, micro_scale):
        first = run_scenario_study(micro_scale, scenario="class-incremental",
                                   models=("spikedyn",))
        second = run_scenario_study(
            micro_scale.replace(seed=micro_scale.seed + 1),
            scenario="class-incremental", models=("spikedyn",),
        )
        # The streams differ, so at minimum the rendered reports differ in
        # their accuracy tables for almost every seed pair; guard loosely on
        # the matrices not being forced equal.
        assert first.scale.seed != second.scale.seed

    def test_unknown_scenario_rejected(self, micro_scale):
        with pytest.raises(KeyError, match="known scenarios"):
            run_scenario_study(micro_scale, scenario="zero-gravity")


class TestRegistryIntegration:
    @pytest.mark.parametrize("name,scenario", [
        ("scen-classinc", "class-incremental"),
        ("scen-recurring", "recurring"),
        ("scen-drift", "label-drift"),
        ("scen-corrupt", "corrupted"),
    ])
    def test_registered_drivers_report(self, name, scenario, micro_scale):
        spec = get_experiment(name)
        result = spec.run(micro_scale, models=("spikedyn",))
        assert result.scenario == scenario
        for field_name in spec.schema:
            assert hasattr(result, field_name)
        assert f"Scenario {scenario!r}" in spec.report(
            micro_scale, models=("spikedyn",)
        )

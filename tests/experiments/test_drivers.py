"""Tests for the per-figure/table experiment drivers.

These run every driver at a very small scale and check the structure and the
robust qualitative properties of the results (orderings that follow directly
from operation counts), leaving the quantitative shapes to the benchmark
harness and EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO
from repro.experiments import (
    gpu_specification_table,
    run_analytical_validation,
    run_architecture_reduction,
    run_confusion_study,
    run_decay_theta_sweep,
    run_dynamic_accuracy_comparison,
    run_energy_comparison,
    run_mechanism_ablation,
    run_model_search_study,
    run_motivation_study,
    run_nondynamic_accuracy_comparison,
    run_processing_time_study,
)
from repro.experiments.ablation import ABLATION_VARIANTS
from repro.experiments.fig04_architecture import (
    LABEL_BASELINE_ARCH,
    LABEL_OPTIMIZED_ARCH,
)


class TestFig01Motivation:
    def test_structure_and_energy_ordering(self, tiny_scale):
        result = run_motivation_study(tiny_scale, energy_measurement_samples=1)
        for label in tiny_scale.network_labels:
            training = result.normalized_training_energy[label]
            inference = result.normalized_inference_energy[label]
            assert training["baseline"] == 1.0
            assert inference["baseline"] == 1.0
            assert training["asp"] > 1.0  # ASP's energy overhead (Fig. 1b)
        assert set(result.accuracy_per_task) == {"baseline", "asp"}
        text = result.to_text()
        assert "Fig. 1(b)" in text and "Fig. 1(c)" in text


class TestFig04Architecture:
    def test_memory_and_energy_savings(self, tiny_scale):
        result = run_architecture_reduction(tiny_scale, energy_measurement_samples=1,
                                            include_accuracy_profile=False)
        for label in tiny_scale.network_labels:
            assert result.memory_savings(label) > 0.0
            assert result.energy_savings(label) > 0.0
            entries = result.memory_bytes[label]
            assert entries[LABEL_OPTIMIZED_ARCH] < entries[LABEL_BASELINE_ARCH]
        assert result.accuracy_profiles == {}

    def test_accuracy_profile_panel(self, tiny_scale):
        result = run_architecture_reduction(tiny_scale, energy_measurement_samples=1,
                                            include_accuracy_profile=True)
        assert set(result.accuracy_profiles) == {LABEL_BASELINE_ARCH,
                                                 LABEL_OPTIMIZED_ARCH}
        assert "Fig. 4(d)" in result.to_text()


class TestFig05Analytical:
    def test_errors_and_speedup(self, tiny_scale):
        result = run_analytical_validation(tiny_scale, actual_run_samples=2)
        assert len(result.rows) == len(tiny_scale.network_sizes)
        for row in result.rows:
            assert row.analytical_memory_bytes <= row.actual_memory_bytes
            assert 0.0 <= row.memory_error < 0.5
            assert row.training_energy_error < 0.5
            assert row.inference_energy_error < 0.5
        assert result.exploration_speedup > 100.0
        assert result.max_error >= 0.0
        assert "Fig. 5" in result.to_text()

    def test_explicit_network_sizes(self, tiny_scale):
        result = run_analytical_validation(tiny_scale, network_sizes=[6],
                                           actual_run_samples=1)
        assert [row.n_exc for row in result.rows] == [6]


class TestFig06Sweep:
    def test_paper_style_slices(self, tiny_scale):
        result = run_decay_theta_sweep(
            tiny_scale, w_decay_values=(None, 1e-2), theta_scales=(1.0, 0.5)
        )
        # 2 decay values at theta=1 plus 1 extra theta at the selected decay.
        assert len(result.points) == 3
        labels = [point.label for point in result.points]
        assert labels[0] == "no / 1"
        assert len(set(labels)) == 3
        best = result.best_point()
        assert best.mean_recent_accuracy == max(
            point.mean_recent_accuracy for point in result.points
        )
        assert set(result.accuracy_by_label()) == set(labels)

    def test_full_grid(self, tiny_scale):
        result = run_decay_theta_sweep(
            tiny_scale, w_decay_values=(None, 1e-2), theta_scales=(1.0, 0.5),
            full_grid=True,
        )
        assert len(result.points) == 4

    def test_empty_sweeps_rejected(self, tiny_scale):
        with pytest.raises(ValueError):
            run_decay_theta_sweep(tiny_scale, w_decay_values=())
        with pytest.raises(ValueError):
            run_decay_theta_sweep(tiny_scale, theta_scales=())


class TestFig09Accuracy:
    def test_dynamic_comparison_structure(self, tiny_scale):
        result = run_dynamic_accuracy_comparison(tiny_scale, models=("baseline",
                                                                     "spikedyn"))
        for label in tiny_scale.network_labels:
            assert set(result.dynamic[label]) == {"baseline", "spikedyn"}
            for protocol in result.dynamic[label].values():
                assert list(protocol.class_sequence) == list(tiny_scale.class_sequence)
        improvement = result.improvement_over(tiny_scale.network_labels[0],
                                              reference="baseline")
        assert set(improvement) == {"recent", "final"}
        assert "most recently learned" in result.to_text()

    def test_nondynamic_comparison_structure(self, tiny_scale):
        result = run_nondynamic_accuracy_comparison(tiny_scale,
                                                    models=("spikedyn",))
        for label in tiny_scale.network_labels:
            protocol = result.nondynamic[label]["spikedyn"]
            assert list(protocol.checkpoints) == list(tiny_scale.nondynamic_checkpoints)
            assert result.final_accuracy(label, "spikedyn") == protocol.final_accuracy
        assert "number of training samples" in result.to_text()


class TestFig10Confusion:
    def test_confusion_structure(self, tiny_scale):
        result = run_confusion_study(tiny_scale)
        for label in tiny_scale.network_labels:
            matrix = result.confusion(label)
            assert matrix.shape == (10, 10)
            expected_total = (len(tiny_scale.class_sequence)
                              * tiny_scale.eval_samples_per_class)
            assert matrix.sum() == expected_total
            target, predicted = result.most_confused(label)
            assert 0 <= target < 10 and 0 <= predicted < 10
        assert "confusion matrix" in result.to_text()


class TestFig11Energy:
    def test_orderings_and_savings(self, tiny_scale):
        result = run_energy_comparison(tiny_scale,
                                       devices=[GTX_1080_TI, JETSON_NANO],
                                       energy_measurement_samples=1)
        assert set(result.normalized_training) == {"GTX 1080 Ti", "Jetson Nano"}
        for device in result.normalized_training:
            for label in tiny_scale.network_labels:
                training = result.normalized_training[device][label]
                assert training["baseline"] == 1.0
                assert training["asp"] > training["spikedyn"]
        savings = result.savings_vs("asp")
        assert savings["training"] > 0.0
        # Normalized energies are device independent (same operation counts),
        # so both devices report identical tables.
        np.testing.assert_allclose(
            [result.normalized_training["GTX 1080 Ti"][label]["asp"]
             for label in tiny_scale.network_labels],
            [result.normalized_training["Jetson Nano"][label]["asp"]
             for label in tiny_scale.network_labels],
        )


class TestTables:
    def test_table1_lists_all_devices(self):
        table = gpu_specification_table()
        for device in ("Jetson Nano", "GTX 1080 Ti", "RTX 2080 Ti"):
            assert device in table

    def test_table2_structure(self, tiny_scale):
        study = run_processing_time_study(tiny_scale, energy_measurement_samples=1)
        for label in tiny_scale.network_labels:
            assert study.hours("training", "Jetson Nano", label) > 0
            assert (study.hours("training", "Jetson Nano", label)
                    > study.hours("training", "RTX 2080 Ti", label))
        assert "Table II" in study.to_text()


class TestAlg1Search:
    def test_selected_sizes_grow_with_the_budget(self, tiny_scale):
        study = run_model_search_study(tiny_scale, n_add=4)
        sizes = study.selected_sizes()
        selected = [size for size in sizes.values() if size is not None]
        assert selected, "at least one budget should admit a model"
        budgets = sorted(study.results)
        chosen = [sizes[budget] for budget in budgets if sizes[budget] is not None]
        assert chosen == sorted(chosen)
        assert "Alg. 1" in study.to_text()

    def test_explicit_budgets(self, tiny_scale):
        study = run_model_search_study(tiny_scale, memory_budgets_bytes=[1e4],
                                       n_add=4)
        assert list(study.results) == [1e4]


class TestAblation:
    def test_variants_and_energy_ordering(self, tiny_scale):
        result = run_mechanism_ablation(tiny_scale, energy_measurement_samples=1)
        assert set(result.variants) == set(ABLATION_VARIANTS)
        normalized = result.normalized_training_energy()
        assert normalized["full"] == 1.0
        assert normalized["no_update_gating"] > 1.0
        assert "Mechanism ablation" in result.to_text()

    def test_subset_of_variants(self, tiny_scale):
        result = run_mechanism_ablation(tiny_scale,
                                        variants=("full", "no_weight_decay"),
                                        energy_measurement_samples=1)
        assert set(result.variants) == {"full", "no_weight_decay"}

    def test_unknown_variant_rejected(self, tiny_scale):
        with pytest.raises(ValueError):
            run_mechanism_ablation(tiny_scale, variants=("full", "no_neurons"))


class TestEventStreamStudy:
    def test_equivalence_and_event_accounting(self, tiny_scale):
        from repro.experiments import run_eventstream_study

        result = run_eventstream_study(
            tiny_scale, classes=(0, 1), duration=300.0,
            n_bursts=3, burst_steps=4,
        )
        assert result.backend == "eventqueue"
        assert result.equivalence["counts_match"] is True
        assert result.equivalence["predictions_match"] is True
        # The whole point: the executed fraction must be far below one.
        assert result.event_ops["steps_skipped"] > 0
        assert result.event_ops["executed_step_fraction"] < 0.5
        assert result.event_ops["event_total_ops"] \
            < result.event_ops["stepped_total_ops"]
        for record in result.streams:
            assert record["density"] < 0.02
        text = result.to_text()
        assert "events_processed=" in text and "steps_skipped=" in text
        assert "energy proxy" in text

    def test_stepping_fallback_backend(self, tiny_scale):
        from repro.experiments import run_eventstream_study

        result = run_eventstream_study(
            tiny_scale, backend="sparse", classes=(0,), duration=200.0,
            n_bursts=2, burst_steps=4,
        )
        # A non-event backend steps everything but stays equivalent.
        assert result.event_ops["steps_skipped"] == 0
        assert result.equivalence["counts_match"] is True

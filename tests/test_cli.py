"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENT_DRIVERS, SCALE_PRESETS, build_parser, main


class TestParser:
    def test_every_subcommand_is_registered(self):
        parser = build_parser()
        subparser_actions = [action for action in parser._actions
                             if hasattr(action, "choices") and action.choices]
        commands = set(subparser_actions[0].choices)
        assert commands == {"info", "train", "evaluate", "search", "energy",
                            "reproduce", "run-all", "scenarios", "serve",
                            "backends", "cache", "ledger", "trace"}

    def test_reproduce_knows_every_driver(self):
        assert set(EXPERIMENT_DRIVERS) == {
            "table1", "table2", "fig1", "fig4", "fig5", "fig6",
            "fig9-dynamic", "fig9-nondynamic", "fig10", "fig11",
            "alg1", "ablation", "eventstream",
            "scen-classinc", "scen-recurring", "scen-drift", "scen-corrupt",
        }

    def test_scale_presets(self):
        assert set(SCALE_PRESETS) == {"tiny", "small", "paper"}

    def test_missing_command_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])
        assert "usage" in capsys.readouterr().err.lower()

    def test_unknown_experiment_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "fig99"])


class TestInfo:
    def test_lists_models_devices_and_experiments(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "spikedyn" in output
        assert "Jetson Nano" in output
        assert "fig11" in output
        assert "dense" in output and "sparse" in output


class TestBackends:
    def test_list_prints_every_registered_backend(self, capsys):
        assert main(["backends", "list"]) == 0
        output = capsys.readouterr().out
        assert "backend" in output and "available" in output
        assert "dense" in output and "sparse" in output
        assert "yes" in output

    def test_list_shows_event_mode_availability(self, capsys):
        assert main(["backends", "list"]) == 0
        output = capsys.readouterr().out
        assert "events" in output
        eventqueue_row = next(line for line in output.splitlines()
                              if line.startswith("eventqueue"))
        assert "yes" in eventqueue_row

    def test_unknown_action_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["backends", "frobnicate"])

    def test_train_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["train", "--backend", "quantum"])


class TestTrainAndEvaluate:
    def test_train_prints_per_class_accuracy(self, capsys):
        exit_code = main([
            "train", "--model", "spikedyn", "--n-exc", "8", "--image-size", "8",
            "--t-sim", "20", "--classes", "0", "1", "--samples-per-class", "2",
            "--eval-per-class", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "digit-0" in output and "digit-1" in output
        assert "accuracy_%" in output

    def test_train_save_then_evaluate(self, tmp_path, capsys):
        save_dir = str(tmp_path / "model")
        assert main([
            "train", "--model", "spikedyn", "--n-exc", "8", "--image-size", "8",
            "--t-sim", "20", "--classes", "0", "1", "--samples-per-class", "2",
            "--eval-per-class", "2", "--save", save_dir,
        ]) == 0
        capsys.readouterr()

        assert main([
            "evaluate", save_dir, "--model", "spikedyn", "--n-exc", "8",
            "--image-size", "8", "--t-sim", "20", "--classes", "0", "1",
            "--eval-per-class", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "overall accuracy" in output

    def test_nondynamic_protocol_option(self, capsys):
        assert main([
            "train", "--protocol", "nondynamic", "--n-exc", "8",
            "--image-size", "8", "--t-sim", "20", "--classes", "0", "1",
            "--samples-per-class", "2", "--eval-per-class", "2",
        ]) == 0

    def test_evaluate_missing_model_fails(self, tmp_path, capsys):
        exit_code = main([
            "evaluate", str(tmp_path / "does_not_exist"), "--n-exc", "8",
            "--image-size", "8", "--t-sim", "20",
        ])
        assert exit_code == 1
        assert "could not load" in capsys.readouterr().err


class TestSearch:
    def test_search_selects_a_model(self, capsys):
        exit_code = main([
            "search", "--image-size", "8", "--t-sim", "20", "--n-add", "4",
            "--memory-kb", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "selected model" in output

    def test_search_with_impossible_budget_fails(self, capsys):
        exit_code = main([
            "search", "--image-size", "8", "--t-sim", "20", "--n-add", "4",
            "--memory-kb", "2", "--train-energy-j", "1e-12",
        ])
        assert exit_code == 1
        assert "no candidate" in capsys.readouterr().out


class TestEnergyAndReproduce:
    def test_energy_reports_all_three_models(self, capsys):
        assert main([
            "energy", "--image-size", "8", "--n-exc", "8", "--t-sim", "20",
            "--samples", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "baseline" in output and "asp" in output and "spikedyn" in output
        assert "training_vs_baseline" in output

    def test_energy_surfaces_event_engine_tallies(self, capsys):
        assert main([
            "energy", "--image-size", "8", "--n-exc", "8", "--t-sim", "20",
            "--samples", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "events_processed" in output and "steps_skipped" in output
        assert "event-driven execution" in output

    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        assert "Jetson Nano" in capsys.readouterr().out

    def test_reproduce_fig5_at_tiny_scale(self, capsys):
        assert main(["reproduce", "fig5", "--scale", "tiny"]) == 0
        assert "analytical" in capsys.readouterr().out


class TestEvalBatchSizeFlag:
    def test_parser_accepts_the_flag(self):
        parser = build_parser()
        args = parser.parse_args(["train", "--eval-batch-size", "8"])
        assert args.eval_batch_size == 8

    def test_flag_defaults_to_batched_evaluation(self):
        parser = build_parser()
        args = parser.parse_args(["train"])
        assert args.eval_batch_size == 32

    def test_sequential_evaluation_via_batch_size_one(self, capsys):
        assert main([
            "train", "--model", "spikedyn", "--n-exc", "8", "--image-size", "8",
            "--t-sim", "20", "--classes", "0", "--samples-per-class", "2",
            "--eval-per-class", "2", "--eval-batch-size", "1",
        ]) == 0
        assert "digit-0" in capsys.readouterr().out

    def test_non_positive_batch_size_is_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--eval-batch-size", "0"])
        assert "must be >= 1" in capsys.readouterr().err


class TestRunnerCommands:
    def test_reproduce_through_the_runner(self, tmp_path, capsys):
        exit_code = main([
            "reproduce", "table1", "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert exit_code == 0
        assert "Jetson Nano" in capsys.readouterr().out

    def test_reproduce_worker_failure_exits_nonzero(self, tmp_path, capsys):
        # A hanging job with a tiny timeout is recorded as timed out.
        from repro.experiments.common import ExperimentScale
        from repro.runner import JobSpec, ParallelRunner

        job = JobSpec(
            experiment="repro.runner.testing:hanging_driver",
            scale=ExperimentScale.tiny(),
            timeout=1.0,
        )
        record = ParallelRunner(1).run([job])[0]
        assert record.status == "timeout"

    def test_run_all_workers_zero_runs_in_process(self, tmp_path, capsys):
        exit_code = main([
            "run-all", "--scale", "tiny", "--workers", "0",
            "--drivers", "table1", "--out", str(tmp_path / "out"),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert exit_code == 0
        assert (tmp_path / "out" / "table1_gpu_specs.txt").is_file()

    def test_run_all_subset_writes_reports_and_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        exit_code = main([
            "run-all", "--scale", "tiny", "--workers", "2",
            "--drivers", "table1", "fig5",
            "--out", str(out_dir), "--cache-dir", str(tmp_path / "cache"),
        ])
        assert exit_code == 0
        assert (out_dir / "table1_gpu_specs.txt").is_file()
        assert (out_dir / "fig05_analytical_models.txt").is_file()
        assert (out_dir / "manifest.json").is_file()
        output = capsys.readouterr().out
        assert "2/2 experiments completed" in output

    def test_run_all_second_invocation_hits_cache(self, tmp_path, capsys):
        args = [
            "run-all", "--scale", "tiny", "--workers", "1",
            "--drivers", "table1",
            "--out", str(tmp_path / "r1"), "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        args[8] = str(tmp_path / "r2")  # fresh out dir, same cache
        assert main(args) == 0
        assert "cache" in capsys.readouterr().out

    def test_cache_info_list_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "run-all", "--scale", "tiny", "--workers", "1",
            "--drivers", "table1", "--out", str(tmp_path / "out"),
            "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()

        assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
        assert "entries    : 1" in capsys.readouterr().out

        assert main(["cache", "list", "--cache-dir", cache_dir]) == 0
        assert "table1" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 1" in capsys.readouterr().out

        assert main(["cache", "list", "--cache-dir", cache_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_run_all_no_cache_resume_keeps_reports_and_succeeds(self, tmp_path, capsys):
        # With caching disabled, a resumed run serves completed jobs from the
        # manifest without report text; reports were already written when the
        # jobs first completed, and the resumed run must still exit 0.
        out_dir = tmp_path / "results"
        args = [
            "run-all", "--scale", "tiny", "--workers", "1",
            "--drivers", "table1", "--out", str(out_dir), "--no-cache",
        ]
        assert main(args) == 0
        report = out_dir / "table1_gpu_specs.txt"
        assert report.is_file()
        first_contents = report.read_text(encoding="utf-8")
        capsys.readouterr()

        assert main(args) == 0
        assert "manifest" in capsys.readouterr().out
        assert report.read_text(encoding="utf-8") == first_contents

    def test_run_all_warns_when_resumed_reports_are_unrecoverable(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        args = [
            "run-all", "--scale", "tiny", "--workers", "1",
            "--drivers", "table1", "--out", str(out_dir), "--no-cache",
        ]
        assert main(args) == 0
        (out_dir / "table1_gpu_specs.txt").unlink()
        capsys.readouterr()

        assert main(args) == 0
        captured = capsys.readouterr()
        assert "no report text available" in captured.err
        assert "table1_gpu_specs" in captured.err

    def test_reproduce_warns_about_ignored_runner_flags(self, capsys):
        assert main(["reproduce", "table1", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "Jetson Nano" in captured.out
        assert "--no-cache" in captured.err and "--workers" in captured.err


class TestScenariosCommand:
    def test_list_prints_the_catalogue(self, capsys):
        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("class-incremental", "recurring", "label-drift",
                     "corrupted", "imbalanced", "mixture"):
            assert name in output
        assert "schedule" in output and "transforms" in output

    def test_run_prints_matrix_and_summary(self, capsys):
        exit_code = main([
            "scenarios", "run", "class-incremental",
            "--models", "spikedyn", "--seed", "1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "accuracy matrix of 'spikedyn'" in output
        assert "avg_forgetting" in output
        assert "bwt" in output and "fwt" in output

    def test_run_without_a_name_is_an_error(self, capsys):
        assert main(["scenarios", "run"]) == 2
        assert "needs a scenario name" in capsys.readouterr().err

    def test_unknown_scenario_is_a_clear_error(self, capsys):
        assert main(["scenarios", "run", "not-a-scenario"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and "known scenarios" in err

    def test_list_with_a_name_is_an_error(self, capsys):
        assert main(["scenarios", "list", "recurring"]) == 2
        assert "takes no scenario name" in capsys.readouterr().err

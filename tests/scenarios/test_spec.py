"""Unit tests for ScenarioSpec and the scenario catalogue."""

from __future__ import annotations

import json

import pytest

from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.experiments.common import ExperimentScale
from repro.scenarios import SCENARIOS, ScenarioSpec, get_scenario, scenario_names


@pytest.fixture
def source():
    return SyntheticDigits(image_size=8, seed=0)


@pytest.fixture
def scale():
    return ExperimentScale.tiny()


class TestScenarioSpec:
    def test_class_incremental_phases(self):
        spec = ScenarioSpec(
            name="x",
            schedule={"kind": "class_incremental", "tasks": [[0, 1], [2]],
                      "samples_per_task": 4},
        )
        phases = spec.phases()
        assert [(p.index, p.task_id, p.classes) for p in phases] == [
            (0, 0, (0, 1)), (1, 1, (2,)),
        ]
        assert spec.tasks() == {0: (0, 1), 1: (2,)}
        assert spec.classes() == (0, 1, 2)

    def test_recurring_phases_revisit_task_ids(self):
        spec = ScenarioSpec(
            name="x",
            schedule={"kind": "recurring", "tasks": [[0], [1]],
                      "samples_per_task": 2, "repeats": 3},
        )
        assert [p.task_id for p in spec.phases()] == [0, 1, 0, 1, 0, 1]
        assert spec.tasks() == {0: (0,), 1: (1,)}

    def test_iid_is_a_single_phase(self):
        spec = ScenarioSpec(
            name="x",
            schedule={"kind": "iid", "classes": [3, 4], "n_samples": 10},
        )
        assert [p.task_id for p in spec.phases()] == [0]
        assert spec.classes() == (3, 4)

    def test_build_respects_the_schedule(self, source):
        spec = ScenarioSpec(
            name="x",
            schedule={"kind": "class_incremental", "tasks": [[0], [1]],
                      "samples_per_task": 3},
        )
        stream = spec.build(source, rng=0)
        assert [s.label for s in stream] == [0, 0, 0, 1, 1, 1]
        assert [s.task_index for s in stream] == [0, 0, 0, 1, 1, 1]

    def test_transform_chain_is_applied(self, source):
        plain = ScenarioSpec(
            name="plain",
            schedule={"kind": "class_incremental", "tasks": [[0]],
                      "samples_per_task": 3},
        )
        noisy = ScenarioSpec(
            name="noisy",
            schedule=plain.schedule,
            transforms=({"kind": "gaussian_noise", "sigma": 0.3},),
        )
        a = plain.build(source, rng=0)
        b = noisy.build(source, rng=0)
        assert any((x.image != y.image).any() for x, y in zip(a, b))

    def test_serialization_round_trip(self):
        spec = ScenarioSpec(
            name="x",
            schedule={"kind": "recurring", "tasks": [[0, 1]],
                      "samples_per_task": 2, "repeats": 2},
            transforms=({"kind": "occlusion", "fraction": 0.2},),
            description="demo",
        )
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.canonical_json() == spec.canonical_json()
        assert clone.phases() == spec.phases()

    def test_spec_is_isolated_from_caller_and_to_dict_aliases(self, source):
        tasks = [[0], [1]]
        schedule = {"kind": "class_incremental", "tasks": tasks,
                    "samples_per_task": 2}
        spec = ScenarioSpec(name="x", schedule=schedule)
        before = [s.label for s in spec.build(source, rng=0)]

        # Neither the caller's dict nor a to_dict() result aliases the spec.
        tasks.append([9])
        exported = spec.to_dict()
        exported["schedule"]["tasks"].append([8])

        assert spec.tasks() == {0: (0,), 1: (1,)}
        assert [s.label for s in spec.build(source, rng=0)] == before

    def test_unknown_schedule_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule kind"):
            ScenarioSpec(name="x", schedule={"kind": "spiral"})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty name"):
            ScenarioSpec(name="", schedule={"kind": "iid", "classes": [0],
                                            "n_samples": 1})

    def test_empty_task_schedule_rejected(self):
        with pytest.raises(ValueError, match="task schedule is empty"):
            ScenarioSpec(name="x", schedule={"kind": "class_incremental",
                                             "tasks": [],
                                             "samples_per_task": 2})

    def test_iid_without_classes_rejected(self):
        with pytest.raises(ValueError, match="non-empty class list"):
            ScenarioSpec(name="x", schedule={"kind": "iid", "classes": [],
                                             "n_samples": 4})

    def test_bad_transform_rejected_at_declaration_time(self):
        with pytest.raises(ValueError, match="unknown transform kind"):
            ScenarioSpec(
                name="x",
                schedule={"kind": "iid", "classes": [0], "n_samples": 1},
                transforms=({"kind": "wormhole"},),
            )


class TestCatalogue:
    def test_names_are_stable(self):
        assert scenario_names() == [
            "class-incremental",
            "recurring",
            "label-drift",
            "abrupt-drift",
            "corrupted",
            "imbalanced",
            "mixture",
        ]

    @pytest.mark.parametrize("name", list(SCENARIOS))
    def test_every_entry_builds_and_materializes(self, name, scale, source):
        spec = get_scenario(name, scale)
        assert spec.name == name
        assert spec.description
        stream = spec.build(SyntheticDigits(image_size=8, seed=0), rng=0)
        assert stream
        assert {s.task_index for s in stream} <= {p.index for p in spec.phases()}

    def test_scenarios_scale_with_the_class_sequence(self):
        wide = ExperimentScale.tiny(class_sequence=tuple(range(10)))
        spec = get_scenario("class-incremental", wide)
        assert len(spec.phases()) == 5  # ten classes in two-class tasks

    def test_unknown_name_rejected(self, scale):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("cosmic-rays", scale)

"""Unit tests for the scenario stream transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.streams import StreamSample
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.scenarios.transforms import (
    TRANSFORMS,
    ClassImbalance,
    ContrastScale,
    GaussianNoise,
    LabelDrift,
    Occlusion,
    build_transform,
)


@pytest.fixture
def stream():
    rng = np.random.default_rng(0)
    return [
        StreamSample(image=rng.random((8, 8)), label=label, task_index=index)
        for index, label in enumerate([0, 0, 1, 1, 2, 2])
    ]


@pytest.fixture
def source():
    return SyntheticDigits(image_size=8, seed=0)


class TestGaussianNoise:
    def test_changes_pixels_but_not_labels(self, stream):
        out = GaussianNoise(sigma=0.2).apply(stream, None, np.random.default_rng(0))
        assert [s.label for s in out] == [s.label for s in stream]
        assert any(not np.array_equal(a.image, b.image)
                   for a, b in zip(out, stream))

    def test_zero_sigma_is_identity_on_clipped_images(self, stream):
        out = GaussianNoise(sigma=0.0).apply(stream, None, np.random.default_rng(0))
        for a, b in zip(out, stream):
            np.testing.assert_array_equal(a.image, b.image)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            GaussianNoise(sigma=-0.1)


class TestOcclusion:
    def test_zeroes_a_patch(self, stream):
        out = Occlusion(fraction=0.5).apply(stream, None, np.random.default_rng(0))
        for sample in out:
            assert (sample.image == 0.0).sum() >= 16  # a 4x4 patch of an 8x8

    def test_fraction_bounds_enforced(self):
        with pytest.raises(ValueError):
            Occlusion(fraction=1.5)
        with pytest.raises(ValueError):
            Occlusion(fraction=-0.1)

    def test_full_fraction_blanks_the_image(self, stream):
        out = Occlusion(fraction=1.0).apply(stream, None, np.random.default_rng(0))
        for sample in out:
            assert sample.image.max() == 0.0


class TestContrastScale:
    def test_low_factor_compresses_toward_midpoint(self, stream):
        out = ContrastScale(factor=0.1).apply(stream, None, None)
        for sample in out:
            assert sample.image.min() >= 0.4
            assert sample.image.max() <= 0.6

    def test_high_factor_saturates_within_range(self, stream):
        out = ContrastScale(factor=10.0).apply(stream, None, None)
        for sample in out:
            assert sample.image.min() >= 0.0
            assert sample.image.max() <= 1.0

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ValueError):
            ContrastScale(factor=0.0)


class TestLabelDrift:
    def make_stream(self, n=40):
        rng = np.random.default_rng(1)
        return [StreamSample(image=rng.random((8, 8)), label=0, task_index=0)
                for _ in range(n)]

    def test_abrupt_drift_switches_at_the_split_point(self, source):
        stream = self.make_stream(40)
        drift = LabelDrift(mapping={0: 5}, start=0.5, end=0.5)
        out = drift.apply(stream, source, np.random.default_rng(0))
        labels = [s.label for s in out]
        assert set(labels[:19]) == {0}
        assert set(labels[20:]) == {5}

    def test_gradual_drift_is_monotone_in_expectation(self, source):
        stream = self.make_stream(300)
        drift = LabelDrift(mapping={0: 5}, start=0.0, end=1.0)
        out = drift.apply(stream, source, np.random.default_rng(0))
        early = sum(1 for s in out[:100] if s.label == 5)
        late = sum(1 for s in out[200:] if s.label == 5)
        assert early < late

    def test_drifted_samples_get_images_of_the_new_class(self, source):
        # A drifted sample must not keep the old class's pixels: the drifted
        # image is freshly drawn from the target class.
        stream = [StreamSample(image=source.generate(0, 1, rng=7)[0],
                               label=0, task_index=0) for _ in range(10)]
        drift = LabelDrift(mapping={0: 5}, start=0.0, end=0.0)
        out = drift.apply(stream, source, np.random.default_rng(0))
        assert all(s.label == 5 for s in out)
        assert all(not np.array_equal(a.image, b.image)
                   for a, b in zip(out, stream))

    def test_unmapped_classes_untouched(self, source):
        stream = [StreamSample(image=np.zeros((8, 8)), label=3, task_index=0)]
        out = LabelDrift(mapping={0: 5}, start=0.0, end=0.0).apply(
            stream, source, np.random.default_rng(0)
        )
        assert out[0].label == 3

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            LabelDrift(mapping={0: 1}, start=0.8, end=0.2)
        with pytest.raises(ValueError):
            LabelDrift(mapping={}, start=0.0, end=1.0)

    def test_string_keys_are_coerced(self):
        drift = LabelDrift(mapping={"0": 1}, start=0.0, end=1.0)
        assert drift.mapping == {0: 1}


class TestClassImbalance:
    def test_keep_probability_thins_one_class(self, stream):
        imbalance = ClassImbalance(keep={0: 0.0})
        out = imbalance.apply(stream, None, np.random.default_rng(0))
        assert all(s.label != 0 for s in out)
        assert sum(1 for s in out if s.label in (1, 2)) == 4

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            ClassImbalance(keep={0: 1.5})
        with pytest.raises(ValueError):
            ClassImbalance(keep={})


class TestBuildTransform:
    def test_every_registered_kind_round_trips(self):
        declarations = {
            "gaussian_noise": {"kind": "gaussian_noise", "sigma": 0.1},
            "occlusion": {"kind": "occlusion", "fraction": 0.2},
            "contrast": {"kind": "contrast", "factor": 0.7},
            "label_drift": {"kind": "label_drift", "mapping": {"0": 1},
                            "start": 0.1, "end": 0.9},
            "class_imbalance": {"kind": "class_imbalance", "keep": {"0": 0.5}},
        }
        assert set(declarations) == set(TRANSFORMS)
        for kind, declaration in declarations.items():
            transform = build_transform(declaration)
            assert transform.kind == kind
            rebuilt = build_transform(transform.to_dict())
            assert rebuilt == transform

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown transform kind"):
            build_transform({"kind": "pixelate"})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            build_transform({"kind": "gaussian_noise", "stddev": 0.2})

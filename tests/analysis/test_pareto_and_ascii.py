"""Tests for the Pareto-front utilities and the ASCII rendering helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ascii_art import ascii_bar_chart, ascii_heatmap
from repro.analysis.pareto import ParetoPoint, pareto_front, search_result_pareto
from repro.core.config import SpikeDynConfig
from repro.core.model_search import search_snn_model
from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts


class TestParetoFront:
    def test_dominated_points_are_removed(self):
        points = [
            ParetoPoint((1.0, 1.0), "good"),
            ParetoPoint((2.0, 2.0), "dominated"),
            ParetoPoint((0.5, 3.0), "trade-off"),
        ]
        front = pareto_front(points)
        payloads = {point.payload for point in front}
        assert payloads == {"good", "trade-off"}

    def test_all_non_dominated_points_survive(self):
        points = [ParetoPoint((float(i), float(10 - i))) for i in range(5)]
        assert len(pareto_front(points)) == 5

    def test_identical_points_are_all_kept(self):
        points = [ParetoPoint((1.0, 1.0), "a"), ParetoPoint((1.0, 1.0), "b")]
        assert len(pareto_front(points)) == 2

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_single_point(self):
        assert len(pareto_front([ParetoPoint((3.0,))])) == 1

    def test_mismatched_dimensions_rejected(self):
        with pytest.raises(ValueError):
            pareto_front([ParetoPoint((1.0,)), ParetoPoint((1.0, 2.0))])

    def test_front_points_are_mutually_non_dominating(self):
        rng = np.random.default_rng(0)
        points = [ParetoPoint(tuple(row)) for row in rng.random((30, 3))]
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (all(x <= y for x, y in zip(a.objectives, b.objectives))
                             and any(x < y for x, y in zip(a.objectives, b.objectives)))
                assert not dominates


class TestSearchResultPareto:
    @pytest.fixture
    def search_result(self):
        config = SpikeDynConfig.scaled_down(n_input=64, n_exc=8, t_sim=20.0, seed=0)
        budget = architecture_parameter_counts(
            ARCH_SPIKEDYN, 64, 16
        ).memory_bytes(config.bit_precision) * 1.01
        return search_snn_model(config, memory_budget_bytes=budget, n_add=4)

    def test_front_is_a_subset_of_the_feasible_candidates(self, search_result):
        front = search_result_pareto(search_result)
        feasible = set(id(c) for c in search_result.feasible_candidates)
        assert front
        assert all(id(candidate) in feasible for candidate in front)

    def test_largest_candidate_is_always_on_the_front(self, search_result):
        """No other candidate can dominate the largest model (it wins the
        negated-size objective), so Alg. 1's selection is Pareto-optimal."""
        front = search_result_pareto(search_result)
        largest = max(search_result.feasible_candidates, key=lambda c: c.n_exc)
        assert largest in front

    def test_smallest_candidate_is_always_on_the_front(self, search_result):
        front = search_result_pareto(search_result)
        smallest = min(search_result.feasible_candidates, key=lambda c: c.n_exc)
        assert smallest in front


class TestAsciiBarChart:
    def test_renders_every_label(self):
        chart = ascii_bar_chart({"baseline": 1.0, "asp": 2.5, "spikedyn": 0.7})
        assert "baseline" in chart and "asp" in chart and "spikedyn" in chart
        assert chart.count("\n") == 2

    def test_largest_value_spans_the_width(self):
        chart = ascii_bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert "#" * 10 in lines[1]
        assert "#" * 5 in lines[0]

    def test_zero_values_render_empty_bars(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart({})
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": -1.0})
        with pytest.raises(ValueError):
            ascii_bar_chart({"a": 1.0}, width=0)


class TestAsciiHeatmap:
    def test_shape_of_the_rendering(self):
        matrix = np.arange(12, dtype=float).reshape(3, 4)
        text = ascii_heatmap(matrix)
        lines = text.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 4 for line in lines)

    def test_extremes_use_the_ramp_ends(self):
        matrix = np.array([[0.0, 10.0]])
        text = ascii_heatmap(matrix, ramp=" @")
        assert text == " @"

    def test_row_and_column_labels(self):
        matrix = np.eye(2)
        text = ascii_heatmap(matrix, row_labels=["r0", "r1"],
                             column_labels=["c0", "c1"])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("r0")

    def test_all_zero_matrix(self):
        text = ascii_heatmap(np.zeros((2, 2)))
        assert set(text.replace("\n", "")) == {" "}

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(3))
        with pytest.raises(ValueError):
            ascii_heatmap(np.array([[-1.0]]))
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones((2, 2)), row_labels=["only-one"])
        with pytest.raises(ValueError):
            ascii_heatmap(np.ones((2, 2)), ramp="x")

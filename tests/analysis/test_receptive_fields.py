"""Tests for the receptive-field analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.receptive_fields import (
    neuron_class_map,
    receptive_field,
    receptive_field_grid,
    receptive_field_similarity,
)
from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.spikedyn_model import SpikeDynModel


@pytest.fixture
def model() -> SpikeDynModel:
    config = SpikeDynConfig.scaled_down(n_input=64, n_exc=6, t_sim=20.0, seed=0)
    return SpikeDynModel(config)


@pytest.fixture
def source() -> SyntheticDigits:
    return SyntheticDigits(image_size=8, seed=0)


class TestReceptiveField:
    def test_shape_matches_the_input_image(self, model):
        field = receptive_field(model, 0)
        assert field.shape == (8, 8)

    def test_matches_the_weight_column(self, model):
        field = receptive_field(model, 2, normalize=False)
        np.testing.assert_allclose(field.ravel(), model.input_weights[:, 2])

    def test_normalization(self, model):
        field = receptive_field(model, 1, normalize=True)
        assert field.max() == pytest.approx(1.0)
        assert field.min() >= 0.0

    def test_zero_field_stays_zero_under_normalization(self, model):
        model.input_weights[:, 3] = 0.0
        field = receptive_field(model, 3, normalize=True)
        np.testing.assert_allclose(field, 0.0)

    def test_returns_a_copy(self, model):
        field = receptive_field(model, 0, normalize=False)
        field[0, 0] = 123.0
        assert model.input_weights[0, 0] != 123.0

    def test_out_of_range_neuron_rejected(self, model):
        with pytest.raises(ValueError):
            receptive_field(model, 6)
        with pytest.raises(ValueError):
            receptive_field(model, -1)


class TestReceptiveFieldGrid:
    def test_grid_shape(self, model):
        grid = receptive_field_grid(model, columns=3, pad=1)
        # 6 neurons in 3 columns -> 2 rows of 8x8 cells with 1 pixel padding.
        assert grid.shape == (2 * 9 - 1, 3 * 9 - 1)

    def test_grid_contains_each_field(self, model):
        grid = receptive_field_grid(model, columns=3, pad=0, normalize=False)
        np.testing.assert_allclose(grid[:8, :8],
                                   receptive_field(model, 0, normalize=False))
        np.testing.assert_allclose(grid[8:16, 8:16],
                                   receptive_field(model, 4, normalize=False))

    def test_subset_of_neurons(self, model):
        grid = receptive_field_grid(model, columns=2, neurons=[1, 5], pad=0)
        assert grid.shape == (8, 16)

    def test_invalid_arguments(self, model):
        with pytest.raises(ValueError):
            receptive_field_grid(model, columns=0)
        with pytest.raises(ValueError):
            receptive_field_grid(model, neurons=[])
        with pytest.raises(ValueError):
            receptive_field_grid(model, pad=-1)


class TestSimilarityAndClassMap:
    def test_similarity_is_bounded(self, model, source):
        similarity = receptive_field_similarity(model, source.prototype(0))
        assert similarity.shape == (6,)
        assert np.all(similarity <= 1.0 + 1e-9)
        assert np.all(similarity >= -1.0 - 1e-9)

    def test_identical_field_has_similarity_one(self, model, source):
        prototype = source.prototype(3)
        model.input_weights[:, 0] = prototype.ravel()
        similarity = receptive_field_similarity(model, prototype)
        assert similarity[0] == pytest.approx(1.0)

    def test_zero_field_has_similarity_zero(self, model, source):
        model.input_weights[:, 2] = 0.0
        similarity = receptive_field_similarity(model, source.prototype(0))
        assert similarity[2] == 0.0

    def test_wrong_reference_size_rejected(self, model):
        with pytest.raises(ValueError):
            receptive_field_similarity(model, np.ones((10, 10)))

    def test_zero_reference_rejected(self, model):
        with pytest.raises(ValueError):
            receptive_field_similarity(model, np.zeros((8, 8)))

    def test_class_map_recovers_planted_prototypes(self, model, source):
        prototypes = {digit: source.prototype(digit) for digit in (0, 1, 7)}
        model.input_weights[:, 0] = prototypes[0].ravel()
        model.input_weights[:, 1] = prototypes[1].ravel()
        model.input_weights[:, 2] = prototypes[7].ravel()
        model.input_weights[:, 3] = 0.0
        labels = neuron_class_map(model, prototypes)
        assert labels[0] == 0
        assert labels[1] == 1
        assert labels[2] == 7
        assert labels[3] == -1

    def test_class_map_requires_prototypes(self, model):
        with pytest.raises(ValueError):
            neuron_class_map(model, {})

"""Tests for the spike-statistics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.spike_stats import (
    ResponseStatistics,
    class_selectivity,
    mean_selectivity,
    population_sparseness,
    response_statistics,
    winner_share,
)


class TestWinnerShare:
    def test_single_winner_gets_full_share(self):
        responses = np.array([[0.0, 10.0, 0.0]])
        np.testing.assert_allclose(winner_share(responses), [1.0])

    def test_uniform_response_share(self):
        responses = np.array([[2.0, 2.0, 2.0, 2.0]])
        np.testing.assert_allclose(winner_share(responses), [0.25])

    def test_silent_sample_contributes_zero(self):
        responses = np.array([[0.0, 0.0], [1.0, 3.0]])
        np.testing.assert_allclose(winner_share(responses), [0.0, 0.75])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            winner_share(np.array([[-1.0, 2.0]]))


class TestResponseStatistics:
    def test_summary_values(self):
        responses = np.array([
            [5.0, 0.0, 0.0],
            [0.0, 0.0, 0.0],
            [1.0, 3.0, 0.0],
        ])
        stats = response_statistics(responses)
        assert isinstance(stats, ResponseStatistics)
        assert stats.mean_spikes_per_sample == pytest.approx((5 + 0 + 4) / 3)
        assert stats.active_neuron_fraction == pytest.approx(2 / 3)
        assert stats.silent_sample_fraction == pytest.approx(1 / 3)
        assert stats.mean_winner_share == pytest.approx((1.0 + 0.0 + 0.75) / 3)

    def test_rejects_empty_or_one_dimensional_input(self):
        with pytest.raises(ValueError):
            response_statistics(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            response_statistics(np.zeros(5))


class TestPopulationSparseness:
    def test_uniform_activity_is_one(self):
        responses = np.ones((4, 6))
        assert population_sparseness(responses) == pytest.approx(1.0)

    def test_single_active_neuron_is_one_over_n(self):
        responses = np.zeros((4, 8))
        responses[:, 0] = 3.0
        assert population_sparseness(responses) == pytest.approx(1 / 8)

    def test_silent_population_is_zero(self):
        assert population_sparseness(np.zeros((3, 5))) == 0.0

    def test_bounded_between_zero_and_one(self):
        rng = np.random.default_rng(0)
        responses = rng.random((20, 15)) * 10
        assert 0.0 < population_sparseness(responses) <= 1.0


class TestClassSelectivity:
    def test_perfectly_selective_population(self):
        # Neuron 0 fires only for class 0, neuron 1 only for class 1.
        responses = np.array([
            [8.0, 0.0],
            [8.0, 0.0],
            [0.0, 6.0],
            [0.0, 6.0],
        ])
        labels = [0, 0, 1, 1]
        selectivity = class_selectivity(responses, labels)
        assert selectivity[0] == pytest.approx(1.0)
        assert selectivity[1] == pytest.approx(1.0)
        assert mean_selectivity(selectivity) == pytest.approx(1.0)

    def test_unselective_population(self):
        responses = np.full((4, 3), 2.0)
        labels = [0, 0, 1, 1]
        selectivity = class_selectivity(responses, labels)
        assert selectivity[0] == pytest.approx(0.0)
        assert selectivity[1] == pytest.approx(0.0)

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            class_selectivity(np.ones((3, 2)), [1, 1, 1])

    def test_label_shape_validated(self):
        with pytest.raises(ValueError):
            class_selectivity(np.ones((3, 2)), [0, 1])

    def test_mean_selectivity_requires_entries(self):
        with pytest.raises(ValueError):
            mean_selectivity({})

"""End-to-end tests of the repository scripts (benchmark gate, run-all).

Each script runs in a subprocess, exactly as CI invokes it.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).resolve().parents[2] / "scripts"


def run_script(script: str, *arguments: str, expect_code: int = 0) -> subprocess.CompletedProcess:
    command = [sys.executable, str(SCRIPTS_DIR / script), *arguments]
    completed = subprocess.run(command, capture_output=True, text=True, timeout=600)
    assert completed.returncode == expect_code, (
        f"{script} exited with {completed.returncode} (expected {expect_code}):\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
    return completed


def write_report(path: Path, timings: dict) -> Path:
    path.write_text(json.dumps({"timings": timings}), encoding="utf-8")
    return path


@pytest.mark.integration
class TestBenchCompare:
    def test_identical_reports_pass(self, tmp_path):
        timings = {"workload_s": 1.0, "speedup_x": 4.0}
        baseline = write_report(tmp_path / "baseline.json", timings)
        current = write_report(tmp_path / "current.json", timings)
        completed = run_script(
            "bench_compare.py", "--baseline", str(baseline), "--current", str(current)
        )
        assert "no regressions" in completed.stdout

    def test_slower_timing_gates(self, tmp_path):
        baseline = write_report(tmp_path / "baseline.json", {"workload_s": 1.0})
        current = write_report(tmp_path / "current.json", {"workload_s": 2.0})
        completed = run_script(
            "bench_compare.py",
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            expect_code=1,
        )
        assert "workload_s" in completed.stderr

    def test_lower_speedup_gates(self, tmp_path):
        baseline = write_report(tmp_path / "baseline.json", {"speedup_x": 6.0})
        current = write_report(tmp_path / "current.json", {"speedup_x": 2.0})
        run_script(
            "bench_compare.py",
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            expect_code=1,
        )

    def test_tolerance_absorbs_noise(self, tmp_path):
        baseline = write_report(tmp_path / "baseline.json", {"workload_s": 1.0})
        current = write_report(tmp_path / "current.json", {"workload_s": 1.4})
        run_script(
            "bench_compare.py", "--baseline", str(baseline), "--current", str(current)
        )

    def test_new_and_missing_metrics_do_not_gate(self, tmp_path):
        baseline = write_report(tmp_path / "baseline.json", {"old_s": 1.0})
        current = write_report(tmp_path / "current.json", {"new_s": 1.0})
        completed = run_script(
            "bench_compare.py", "--baseline", str(baseline), "--current", str(current)
        )
        assert "missing" in completed.stdout
        assert "new" in completed.stdout

    def test_update_writes_the_baseline(self, tmp_path):
        current = write_report(tmp_path / "current.json", {"workload_s": 1.0})
        baseline = tmp_path / "nested" / "baseline.json"
        completed = run_script(
            "bench_compare.py",
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            "--update",
        )
        assert "baseline updated" in completed.stdout
        assert json.loads(baseline.read_text())["timings"] == {"workload_s": 1.0}

    def test_missing_baseline_is_a_distinct_error(self, tmp_path):
        current = write_report(tmp_path / "current.json", {"workload_s": 1.0})
        completed = run_script(
            "bench_compare.py",
            "--baseline",
            str(tmp_path / "absent.json"),
            "--current",
            str(current),
            expect_code=2,
        )
        assert "no baseline" in completed.stderr

    def test_calibration_normalizes_away_machine_speed(self, tmp_path):
        # A uniformly slower machine (all timings and the calibration scale
        # together) must not gate; a single genuinely slower metric must.
        baseline = write_report(
            tmp_path / "baseline.json", {"calibration_s": 0.01, "workload_s": 1.0}
        )
        slower_machine = write_report(
            tmp_path / "slow.json", {"calibration_s": 0.04, "workload_s": 4.0}
        )
        completed = run_script(
            "bench_compare.py", "--baseline", str(baseline), "--current", str(slower_machine)
        )
        assert "no regressions" in completed.stdout

        real_regression = write_report(
            tmp_path / "regressed.json", {"calibration_s": 0.01, "workload_s": 3.0}
        )
        run_script(
            "bench_compare.py",
            "--baseline",
            str(baseline),
            "--current",
            str(real_regression),
            expect_code=1,
        )

    def test_ratio_tolerance_is_independent(self, tmp_path):
        baseline = write_report(tmp_path / "baseline.json", {"speedup_x": 6.0})
        current = write_report(tmp_path / "current.json", {"speedup_x": 2.0})
        # 3x shrink fails the default tolerance but passes a wide ratio one.
        run_script(
            "bench_compare.py",
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            expect_code=1,
        )
        run_script(
            "bench_compare.py",
            "--baseline",
            str(baseline),
            "--current",
            str(current),
            "--ratio-tolerance",
            "4.0",
        )

    def test_percentage_metrics_are_informational(self, tmp_path):
        # A huge relative jump in a *_pct metric must not gate here: the
        # absolute ceiling lives in bench_history.py --check instead.
        baseline = write_report(tmp_path / "baseline.json",
                                {"tracing_overhead_pct": 0.01})
        current = write_report(tmp_path / "current.json",
                               {"tracing_overhead_pct": 2.5})
        completed = run_script(
            "bench_compare.py", "--baseline", str(baseline), "--current", str(current)
        )
        assert "info" in completed.stdout
        assert "no regressions" in completed.stdout

    def test_calibration_metric_itself_never_gates(self, tmp_path):
        baseline = write_report(tmp_path / "baseline.json", {"calibration_s": 0.01})
        current = write_report(tmp_path / "current.json", {"calibration_s": 0.09})
        completed = run_script(
            "bench_compare.py", "--baseline", str(baseline), "--current", str(current)
        )
        assert "reference" in completed.stdout

    def test_committed_baseline_has_calibration(self):
        baseline = SCRIPTS_DIR.parent / "benchmarks" / "baseline_smoke.json"
        report = json.loads(baseline.read_text(encoding="utf-8"))
        assert "calibration_s" in report["timings"]

    def test_committed_baseline_is_loadable(self):
        baseline = SCRIPTS_DIR.parent / "benchmarks" / "baseline_smoke.json"
        report = json.loads(baseline.read_text(encoding="utf-8"))
        assert "timings" in report and report["timings"]


@pytest.mark.integration
class TestRunAllExperiments:
    def test_script_delegates_to_the_cli(self):
        # The script is a flag-mapping wrapper over `repro run-all`; check
        # the mapping without paying for a full suite run.
        sys.path.insert(0, str(SCRIPTS_DIR))
        try:
            import run_all_experiments as script
        finally:
            sys.path.remove(str(SCRIPTS_DIR))
        seen = {}

        def fake_cli(cli_args):
            seen["args"] = cli_args
            return 0

        original = script.cli_main
        script.cli_main = fake_cli
        try:
            assert script.main(["--quick", "--workers", "3", "--no-cache"]) == 0
        finally:
            script.cli_main = original
        args = seen["args"]
        assert args[:3] == ["run-all", "--scale", "tiny"]
        assert "--no-cache" in args
        assert args[args.index("--workers") + 1] == "3"

    def test_quick_subset_end_to_end(self, tmp_path):
        # The script exposes no driver filter (it always runs the full
        # suite), so keep this cheap by pointing the cache at a temp dir and
        # running the two fastest drivers through the CLI equivalent instead.
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "run-all",
            "--scale",
            "tiny",
            "--workers",
            "2",
            "--drivers",
            "table1",
            "table2",
            "--out",
            str(tmp_path / "results"),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        completed = subprocess.run(command, capture_output=True, text=True, timeout=600)
        assert completed.returncode == 0, completed.stderr
        manifest = json.loads((tmp_path / "results" / "manifest.json").read_text())
        assert len(manifest["jobs"]) == 2
        assert all(job["status"] == "completed" for job in manifest["jobs"].values())


@pytest.mark.integration
class TestServingSmoke:
    def test_self_contained_smoke_passes(self):
        completed = run_script(
            "serving_smoke.py", "--requests", "12", "--concurrency", "4",
            "--n-exc", "10",
        )
        assert "prediction-identical to offline evaluation" in completed.stdout

    def test_url_without_artifact_is_a_usage_error(self):
        completed = run_script(
            "serving_smoke.py", "--url", "http://127.0.0.1:1",
            expect_code=2,
        )
        assert "--url requires --artifact" in completed.stderr

"""End-to-end integration tests across the whole pipeline.

These tests exercise the realistic flow a user of the library follows:
configure, search for a model under constraints, train it continually on a
dynamic task stream, evaluate it, estimate its energy, and persist it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ASPModel,
    DiehlCookModel,
    SpikeDynConfig,
    SpikeDynFramework,
    SpikeDynModel,
    SyntheticDigits,
    search_snn_model,
)
from repro.estimation.energy import EnergyModel
from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO
from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts
from repro.evaluation import run_dynamic_protocol, run_nondynamic_protocol


@pytest.fixture
def config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=196, n_exc=16, t_sim=50.0, seed=0)


@pytest.fixture
def source() -> SyntheticDigits:
    return SyntheticDigits(image_size=14, seed=0)


class TestUnsupervisedLearningPipeline:
    def test_training_specializes_neurons_to_classes(self, config, source):
        """After unsupervised training on two visually distinct digits, the
        read-out separates them better than chance."""
        model = SpikeDynModel(config)
        rng = np.random.default_rng(0)
        classes = (0, 1)
        for _ in range(6):
            for digit in classes:
                model.train_sample(source.generate(digit, 1, rng=rng)[0])

        assign_images, assign_labels = [], []
        for digit in classes:
            for image in source.generate(digit, 4, rng=rng):
                assign_images.append(image)
                assign_labels.append(digit)
        model.assign_labels(assign_images, assign_labels)

        eval_images, eval_labels = [], []
        for digit in classes:
            for image in source.generate(digit, 5, rng=rng):
                eval_images.append(image)
                eval_labels.append(digit)
        accuracy = model.evaluate_accuracy(eval_images, eval_labels)
        assert accuracy >= 0.6  # well above the 0.5 chance level

    def test_training_moves_weights_towards_input_patterns(self, config, source):
        model = SpikeDynModel(config)
        rng = np.random.default_rng(0)
        prototype = source.prototype(0).ravel()
        before = model.input_weights.copy()
        for image in source.generate(0, 8, rng=rng):
            model.train_sample(image)
        after = model.input_weights

        # The weight column of the most responsive neuron correlates with the
        # digit-0 prototype more strongly after training than before.
        responses = model.respond(source.generate(0, 1, rng=rng)[0])
        winner = int(np.argmax(responses))
        corr_before = np.corrcoef(before[:, winner], prototype)[0, 1]
        corr_after = np.corrcoef(after[:, winner], prototype)[0, 1]
        assert corr_after > corr_before

    def test_all_three_models_complete_the_dynamic_protocol(self, config, source):
        for model_cls in (DiehlCookModel, ASPModel, SpikeDynModel):
            model = model_cls(config.with_network_size(10))
            result = run_dynamic_protocol(
                model, source, class_sequence=[0, 1], samples_per_task=2,
                eval_samples_per_class=2, rng=0,
            )
            assert set(result.recent_task_accuracy) == {0, 1}
            assert model.samples_trained == 4

    def test_nondynamic_protocol_runs_for_spikedyn(self, config, source):
        model = SpikeDynModel(config.with_network_size(10))
        result = run_nondynamic_protocol(
            model, source, checkpoints=(2, 4), classes=[0, 1],
            eval_samples_per_class=2, rng=0,
        )
        assert result.checkpoints == [2, 4]


class TestSearchThenTrainFlow:
    def test_framework_tool_flow(self, config, source):
        """The Fig. 3 flow: constraints -> search -> build -> train -> evaluate."""
        framework = SpikeDynFramework(config, rng=0)
        budget = architecture_parameter_counts(
            ARCH_SPIKEDYN, config.n_input, 12
        ).memory_bytes(config.bit_precision) * 1.01
        search = framework.search_model(memory_budget_bytes=budget, n_add=4)
        assert search.selected is not None

        model = framework.build_model()
        assert model.n_exc == search.selected.n_exc

        result = framework.run_dynamic(model, source, class_sequence=[0, 1],
                                       samples_per_task=2,
                                       eval_samples_per_class=2)
        assert set(result.final_task_accuracy) == {0, 1}

        memory = framework.estimate_memory_bytes()
        assert memory <= budget

    def test_direct_search_api(self, config):
        budget = architecture_parameter_counts(
            ARCH_SPIKEDYN, config.n_input, 8
        ).memory_bytes(config.bit_precision) * 1.01
        result = search_snn_model(config, memory_budget_bytes=budget, n_add=4)
        assert result.selected is not None
        assert result.selected.n_exc == 8


class TestEnergyAccountingAcrossModels:
    def test_spikedyn_counts_fewer_inference_ops_than_the_baseline(self, config,
                                                                   source):
        """The inference-energy saving of Fig. 11 at the operation level."""
        image = source.generate(0, 1, rng=0)[0]
        ops = {}
        for name, model_cls in (("baseline", DiehlCookModel),
                                ("spikedyn", SpikeDynModel)):
            model = model_cls(config)
            before = model.counter.copy()
            model.respond(image)
            ops[name] = EnergyModel(GTX_1080_TI).weighted_ops(model.counter - before)
        assert ops["spikedyn"] < ops["baseline"]

    def test_energy_scales_with_device_not_with_counts(self, config, source):
        image = source.generate(0, 1, rng=0)[0]
        model = SpikeDynModel(config)
        before = model.counter.copy()
        model.respond(image)
        delta = model.counter - before
        fast = EnergyModel(GTX_1080_TI).estimate(delta)
        slow = EnergyModel(JETSON_NANO).estimate(delta)
        assert slow.joules != fast.joules
        assert slow.weighted_ops == fast.weighted_ops


class TestPersistenceAcrossThePipeline:
    def test_save_train_load_continue(self, config, source, tmp_path):
        model = SpikeDynModel(config.with_network_size(10))
        for image in source.generate(0, 3, rng=0):
            model.train_sample(image)
        model.save(tmp_path / "checkpoint")

        restored = SpikeDynModel(config.with_network_size(10))
        restored.load_state(tmp_path / "checkpoint")
        np.testing.assert_array_equal(restored.input_weights, model.input_weights)

        # Training can continue from the restored state.
        for image in source.generate(1, 2, rng=1):
            restored.train_sample(image)
        assert restored.samples_trained == 5

"""Smoke tests that run every example script end to end.

Each example is executed in a subprocess with deliberately small settings so
the whole module adds only a few tens of seconds to the suite.  The tests
assert on the printed output, which is the example's user-facing contract.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *arguments: str) -> str:
    """Run one example script and return its stdout (fails on non-zero exit)."""
    command = [sys.executable, str(EXAMPLES_DIR / script), *arguments]
    completed = subprocess.run(
        command, capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} exited with {completed.returncode}:\n{completed.stderr}"
    )
    return completed.stdout


@pytest.mark.integration
class TestExampleScripts:
    def test_quickstart(self):
        output = run_example(
            "quickstart.py", "--classes", "0", "1", "--n-exc", "10",
            "--train-per-class", "3", "--eval-per-class", "2",
        )
        assert "overall accuracy" in output
        assert "estimated cost" in output

    def test_continual_learning_dynamic(self):
        output = run_example(
            "continual_learning_dynamic.py", "--tasks", "0", "1",
            "--n-exc", "10", "--samples-per-task", "2", "--eval-per-class", "2",
            "--models", "baseline", "spikedyn",
        )
        assert "most recently learned task" in output
        assert "previously learned tasks" in output
        assert "Forgetting per task" in output
        assert "spikedyn" in output

    def test_model_search_constrained(self):
        output = run_example(
            "model_search_constrained.py", "--memory-kb", "40",
            "--n-add", "10", "--image-size", "14",
        )
        assert "selected model" in output
        assert "n_exc" in output

    def test_model_search_infeasible_budget(self):
        output = run_example(
            "model_search_constrained.py", "--memory-kb", "1",
            "--n-add", "10", "--image-size", "14",
        )
        assert "no candidate satisfies" in output

    def test_energy_report(self):
        output = run_example(
            "energy_report.py", "--n-exc", "20", "40", "--image-size", "14",
            "--t-sim", "40", "--samples", "1",
        )
        assert "mean SpikeDyn savings vs ASP" in output
        assert "Table II" in output
        assert "Jetson Nano" in output

    def test_scenario_sweep(self):
        output = run_example(
            "scenario_sweep.py", "--scenarios", "class-incremental", "recurring",
            "--models", "baseline", "spikedyn", "--classes", "0", "1", "2",
            "--n-exc", "10", "--samples-per-task", "2", "--eval-per-class", "2",
        )
        assert "Continual-learning summary per scenario" in output
        assert "avg_forgetting" in output
        assert "Retention curve of task 0" in output
        assert "recurring" in output

    def test_serve_and_query(self):
        output = run_example(
            "serve_and_query.py", "--classes", "0", "1", "--n-exc", "10",
            "--train-per-class", "2", "--requests", "8",
        )
        assert "published artifact version v1" in output
        assert "serving at http://" in output
        assert "served == offline batched path: 8/8" in output
        assert "micro-batches" in output
        assert "drift" in output

    def test_inspect_receptive_fields(self):
        output = run_example(
            "inspect_receptive_fields.py", "--classes", "0", "1",
            "--n-exc", "6", "--train-per-class", "3",
        )
        assert "Receptive fields" in output
        assert "Population statistics" in output
        assert "normalized to the baseline" in output

"""Cross-backend equivalence properties against the dense reference.

The sparse event backend reorders floating-point work (gathering only
spiking rows) but must not change *what* the simulation computes: for
seeded random inputs, spike counts, predictions, learned weights, and
OperationCounter tallies have to match the dense reference backend.  Spike
counts and counter tallies are integers and asserted exactly; weights are
asserted to double-precision tightness (summation-order rounding is the only
permitted difference).

The auto backend dispatches every call to an exact-tier candidate, so it is
held to the same double-precision contract.  The float32 backend sits in the
``tolerance`` tier: integer results (counts, predictions, tallies) are still
asserted exactly, while its float state is held to its declared
single-precision bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.models.asp_model import ASPModel
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving.inference import offline_predictions

MODEL_CLASSES = {
    "spikedyn": SpikeDynModel,
    "baseline": DiehlCookModel,
    "asp": ASPModel,
}


def _config(seed, backend="dense"):
    return SpikeDynConfig.scaled_down(
        n_input=64, n_exc=10, t_sim=30.0, seed=seed, backend=backend
    )


def _images(seed, count=12, n_input=64):
    return np.random.default_rng(seed).random((count, n_input)) * 0.7


def _pair(model_name, seed):
    cls = MODEL_CLASSES[model_name]
    return (cls(_config(seed)), cls(_config(seed, backend="sparse")))


@pytest.mark.parametrize("model_name", sorted(MODEL_CLASSES))
@pytest.mark.parametrize("seed", [0, 7])
class TestInferenceEquivalence:
    def test_batched_spike_counts_and_counters_match(self, model_name, seed):
        dense, sparse = _pair(model_name, seed)
        images = _images(seed)
        dense_counts = dense.respond_batch(images)
        sparse_counts = sparse.respond_batch(images)
        np.testing.assert_array_equal(sparse_counts, dense_counts)
        assert sparse.counter.as_dict() == dense.counter.as_dict()

    def test_sequential_spike_counts_match(self, model_name, seed):
        dense, sparse = _pair(model_name, seed)
        image = _images(seed, count=1)[0]
        np.testing.assert_array_equal(sparse.respond(image),
                                      dense.respond(image))


@pytest.mark.parametrize("model_name", sorted(MODEL_CLASSES))
class TestTrainingEquivalence:
    def test_training_produces_identical_counts_and_tallies(self, model_name):
        dense, sparse = _pair(model_name, seed=3)
        images = _images(3, count=6)
        dense_counts = dense.train_batch(images)
        sparse_counts = sparse.train_batch(images)
        np.testing.assert_array_equal(sparse_counts, dense_counts)
        assert sparse.counter.as_dict() == dense.counter.as_dict()
        np.testing.assert_allclose(sparse.input_weights, dense.input_weights,
                                   rtol=1e-10, atol=1e-12)

    def test_predictions_after_training_match(self, model_name):
        dense, sparse = _pair(model_name, seed=5)
        train = _images(5, count=6)
        assign = _images(6, count=8)
        labels = [i % 2 for i in range(len(assign))]
        evaluate = _images(7, count=10)
        for model in (dense, sparse):
            model.train_batch(train)
            model.assign_labels(assign, labels)
        np.testing.assert_array_equal(sparse.predict(evaluate),
                                      dense.predict(evaluate))
        np.testing.assert_array_equal(sparse.assignments, dense.assignments)


@pytest.mark.parametrize("backend_name", ["auto", "float32"])
class TestNewBackendEquivalence:
    """Auto and float32 against dense, at each backend's declared tier."""

    def _dense_and(self, backend_name, seed):
        return (SpikeDynModel(_config(seed)),
                SpikeDynModel(_config(seed, backend=backend_name)))

    def test_inference_counts_and_tallies_match_dense(self, backend_name):
        dense, other = self._dense_and(backend_name, seed=21)
        images = _images(21)
        np.testing.assert_array_equal(other.respond_batch(images),
                                      dense.respond_batch(images))
        assert other.counter.as_dict() == dense.counter.as_dict()

    def test_training_counts_match_and_weights_are_in_tier(self,
                                                           backend_name):
        from repro.backends import get_backend

        dense, other = self._dense_and(backend_name, seed=23)
        images = _images(23, count=6)
        dense_counts = dense.train_batch(images)
        other_counts = other.train_batch(images)
        np.testing.assert_array_equal(other_counts, dense_counts)
        backend_cls = type(get_backend(backend_name))
        np.testing.assert_allclose(
            other.input_weights, dense.input_weights,
            rtol=backend_cls.state_rtol, atol=backend_cls.state_atol)

    def test_predictions_after_training_match_dense(self, backend_name):
        dense, other = self._dense_and(backend_name, seed=25)
        train = _images(25, count=6)
        assign = _images(26, count=8)
        labels = [i % 2 for i in range(len(assign))]
        evaluate = _images(27, count=10)
        for model in (dense, other):
            model.train_batch(train)
            model.assign_labels(assign, labels)
        np.testing.assert_array_equal(other.predict(evaluate),
                                      dense.predict(evaluate))


class TestServingEquivalence:
    def test_offline_predictions_are_backend_independent(self):
        dense, sparse = _pair("spikedyn", seed=9)
        images = list(_images(9, count=8))
        for model in (dense, sparse):
            model.train_batch(images[:4])
            model.assign_labels(images, [i % 3 for i in range(len(images))])
        seeds = list(range(len(images)))
        np.testing.assert_array_equal(
            offline_predictions(sparse, images, seeds),
            offline_predictions(dense, images, seeds),
        )

    def test_theta_state_is_restored_after_batches_on_both_backends(self):
        dense, sparse = _pair("spikedyn", seed=11)
        images = _images(11, count=4)
        for model in (dense, sparse):
            theta_before = model.network.group("excitatory").theta.copy()
            model.respond_batch(images)
            np.testing.assert_array_equal(
                model.network.group("excitatory").theta, theta_before
            )

"""Property-style invariants of the scenario engine.

Randomized schedules, transform chains, and seeds: for every draw the built
stream must be bit-identical under the same seed, corruptions must preserve
labels and sample counts, per-task sample counts must match the schedule,
and every corrupted image must stay inside the valid intensity range.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.scenarios import ScenarioSpec, build_transform
from repro.scenarios.transforms import INTENSITY_RANGE

#: (schedule, transforms, seed) draws covering every schedule kind and
#: transform kind in several combinations.
SPEC_CASES = [
    (
        {"kind": "class_incremental", "tasks": [[0, 1], [2]], "samples_per_task": 5},
        (),
        0,
    ),
    (
        {"kind": "class_incremental", "tasks": [[3], [4], [5]], "samples_per_task": 3},
        ({"kind": "gaussian_noise", "sigma": 0.2},),
        1,
    ),
    (
        {"kind": "recurring", "tasks": [[0], [1]], "samples_per_task": 4,
         "repeats": 3},
        ({"kind": "occlusion", "fraction": 0.4},),
        2,
    ),
    (
        {"kind": "recurring", "tasks": [[2, 3], [4]], "samples_per_task": 6,
         "repeats": 2},
        ({"kind": "contrast", "factor": 1.8},
         {"kind": "gaussian_noise", "sigma": 0.05}),
        3,
    ),
    (
        {"kind": "iid", "classes": [0, 1, 2, 3], "n_samples": 25},
        ({"kind": "contrast", "factor": 0.4},),
        4,
    ),
    (
        {"kind": "class_incremental", "tasks": [[6], [7, 8]], "samples_per_task": 4},
        ({"kind": "label_drift", "mapping": {"6": 9}, "start": 0.2, "end": 0.9},),
        5,
    ),
]

#: Transform chains that corrupt images without touching labels or counts.
CORRUPTION_CHAINS = [
    ({"kind": "gaussian_noise", "sigma": 0.3},),
    ({"kind": "occlusion", "fraction": 0.5},),
    ({"kind": "contrast", "factor": 2.5},),
    ({"kind": "gaussian_noise", "sigma": 0.15}, {"kind": "occlusion", "fraction": 0.2}),
    ({"kind": "contrast", "factor": 0.3}, {"kind": "gaussian_noise", "sigma": 0.4}),
]


def _spec(schedule, transforms, name="case"):
    return ScenarioSpec(name=name, schedule=schedule, transforms=tuple(transforms))


def _source(seed):
    return SyntheticDigits(image_size=10, seed=seed)


def _streams_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for sample_a, sample_b in zip(a, b):
        if sample_a.label != sample_b.label:
            return False
        if sample_a.task_index != sample_b.task_index:
            return False
        if not np.array_equal(sample_a.image, sample_b.image):
            return False
    return True


@pytest.mark.parametrize("schedule,transforms,seed", SPEC_CASES)
class TestSeedDeterminism:
    def test_same_seed_same_stream(self, schedule, transforms, seed):
        spec = _spec(schedule, transforms)
        first = spec.build(_source(seed), rng=seed)
        second = spec.build(_source(seed), rng=seed)
        assert _streams_equal(first, second)

    def test_round_tripped_spec_builds_the_same_stream(self, schedule,
                                                       transforms, seed):
        spec = _spec(schedule, transforms)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.canonical_json() == spec.canonical_json()
        assert _streams_equal(
            spec.build(_source(seed), rng=seed),
            clone.build(_source(seed), rng=seed),
        )

    def test_different_seed_changes_the_images(self, schedule, transforms, seed):
        spec = _spec(schedule, transforms)
        first = spec.build(_source(seed), rng=seed)
        second = spec.build(_source(seed), rng=seed + 1)
        assert not all(
            np.array_equal(a.image, b.image) for a, b in zip(first, second)
        )


@pytest.mark.parametrize("chain", CORRUPTION_CHAINS)
@pytest.mark.parametrize("seed", [0, 7])
class TestCorruptionInvariants:
    def _base_stream(self, seed):
        spec = _spec(
            {"kind": "class_incremental", "tasks": [[0, 1], [2, 3]],
             "samples_per_task": 6},
            (),
        )
        return spec.build(_source(seed), rng=seed)

    def test_labels_and_counts_preserved(self, chain, seed):
        stream = self._base_stream(seed)
        rng = np.random.default_rng(seed)
        corrupted = list(stream)
        for declaration in chain:
            corrupted = build_transform(declaration).apply(corrupted, None, rng)
        assert [s.label for s in corrupted] == [s.label for s in stream]
        assert [s.task_index for s in corrupted] == [s.task_index for s in stream]

    def test_images_stay_in_intensity_range(self, chain, seed):
        stream = self._base_stream(seed)
        rng = np.random.default_rng(seed)
        for declaration in chain:
            stream = build_transform(declaration).apply(stream, None, rng)
        low, high = INTENSITY_RANGE
        for sample in stream:
            assert sample.image.min() >= low
            assert sample.image.max() <= high

    def test_input_stream_not_mutated(self, chain, seed):
        stream = self._base_stream(seed)
        originals = [np.array(s.image) for s in stream]
        rng = np.random.default_rng(seed)
        for declaration in chain:
            build_transform(declaration).apply(stream, None, rng)
        for sample, original in zip(stream, originals):
            np.testing.assert_array_equal(sample.image, original)


@pytest.mark.parametrize("schedule,transforms,seed", SPEC_CASES)
def test_per_task_sample_counts_match_the_schedule(schedule, transforms, seed):
    # Corruptions and drift never change how many samples each *phase*
    # contributes (only class_imbalance, deliberately absent here, does).
    spec = _spec(schedule, transforms)
    stream = spec.build(_source(seed), rng=seed)
    counts = {}
    for sample in stream:
        counts[sample.task_index] = counts.get(sample.task_index, 0) + 1
    if schedule["kind"] == "iid":
        assert counts == {0: schedule["n_samples"]}
    else:
        expected = schedule["samples_per_task"]
        assert set(counts) == {phase.index for phase in spec.phases()}
        assert set(counts.values()) == {expected}


@pytest.mark.parametrize("schedule,transforms,seed", SPEC_CASES)
def test_labels_stay_within_the_declared_universe(schedule, transforms, seed):
    # Drift may move labels to its mapped targets, but never invents classes
    # outside the schedule's declaration plus the drift targets.
    spec = _spec(schedule, transforms)
    allowed = set(spec.classes())
    for declaration in transforms:
        if declaration["kind"] == "label_drift":
            allowed.update(int(v) for v in declaration["mapping"].values())
    stream = spec.build(_source(seed), rng=seed)
    assert {sample.label for sample in stream} <= allowed


class TestImbalanceInvariants:
    def test_imbalance_only_removes_samples(self):
        spec = _spec(
            {"kind": "iid", "classes": [0, 1, 2], "n_samples": 60},
            ({"kind": "class_imbalance", "keep": {"0": 0.2}},),
        )
        plain = _spec(spec.schedule, ()).build(_source(0), rng=0)
        skewed = spec.build(_source(0), rng=0)
        assert len(skewed) <= len(plain)
        # Untouched classes keep their full share.
        for cls in (1, 2):
            assert (
                sum(1 for s in skewed if s.label == cls)
                == sum(1 for s in plain if s.label == cls)
            )

    def test_imbalance_never_empties_the_stream(self):
        spec = _spec(
            {"kind": "iid", "classes": [0], "n_samples": 10},
            ({"kind": "class_imbalance", "keep": {"0": 0.0}},),
        )
        assert len(spec.build(_source(0), rng=0)) == 1

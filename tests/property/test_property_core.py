"""Property-based tests for SpikeDyn's core mechanisms."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.adaptive_rates import depression_factor, potentiation_factor
from repro.core.adaptive_threshold import adaptation_potential
from repro.core.spurious import SpikeAccumulator
from repro.core.weight_decay import SynapticWeightDecay, decay_rate_for_network_size

spike_counts = st.integers(min_value=0, max_value=10_000)
positive_floats = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


@settings(max_examples=100, deadline=None)
@given(max_post=spike_counts, threshold=positive_floats)
def test_potentiation_factor_bounds(max_post, threshold):
    kp = potentiation_factor(max_post, threshold)
    assert kp >= 0.0
    assert kp == float(math.ceil(max_post / threshold)) or max_post == 0
    if max_post > 0:
        # kp is the smallest integer >= the ratio.
        assert kp >= max_post / threshold
        assert kp - 1 < max_post / threshold


@settings(max_examples=100, deadline=None)
@given(max_post=spike_counts, max_pre=spike_counts)
def test_depression_factor_is_a_bounded_ratio(max_post, max_pre):
    kd = depression_factor(max_post, max_pre)
    assert kd >= 0.0
    if max_pre > 0:
        assert kd == max_post / max_pre
    else:
        assert kd == 0.0


@settings(max_examples=100, deadline=None)
@given(c_theta=st.floats(min_value=0.0, max_value=10.0),
       theta_decay=st.floats(min_value=0.0, max_value=1.0),
       t_sim=st.floats(min_value=1.0, max_value=1000.0))
def test_adaptation_potential_is_nonnegative_and_monotone(c_theta, theta_decay, t_sim):
    theta = adaptation_potential(c_theta, theta_decay, t_sim)
    assert theta >= 0.0
    assert adaptation_potential(c_theta * 2, theta_decay, t_sim) >= theta


@settings(max_examples=100, deadline=None)
@given(n_exc=st.integers(min_value=1, max_value=100_000))
def test_decay_rate_is_inverse_in_network_size(n_exc):
    rate = decay_rate_for_network_size(n_exc)
    assert rate > 0.0
    assert rate == decay_rate_for_network_size(1) / n_exc


@settings(max_examples=50, deadline=None)
@given(
    weights=hnp.arrays(dtype=float, shape=(4, 5),
                       elements=st.floats(min_value=0.0, max_value=1.0)),
    w_decay=st.floats(min_value=0.0, max_value=1.0),
    elapsed=st.floats(min_value=0.0, max_value=1e4),
)
def test_weight_decay_never_increases_or_flips_sign(weights, w_decay, elapsed):
    decay = SynapticWeightDecay(w_decay, tau_decay=1e3)
    before = weights.copy()
    decay.apply(weights, elapsed)
    assert np.all(weights <= before + 1e-12)
    assert np.all(weights >= 0.0)


@settings(max_examples=50, deadline=None)
@given(
    w_decay=st.floats(min_value=1e-4, max_value=1.0),
    first=st.floats(min_value=0.0, max_value=500.0),
    second=st.floats(min_value=0.0, max_value=500.0),
)
def test_weight_decay_composes_over_time(w_decay, first, second):
    """Applying the decay over t1 then t2 equals applying it over t1 + t2."""
    decay = SynapticWeightDecay(w_decay, tau_decay=100.0)
    split = np.full((2, 2), 0.8)
    joint = np.full((2, 2), 0.8)
    decay.apply(split, first)
    decay.apply(split, second)
    decay.apply(joint, first + second)
    np.testing.assert_allclose(split, joint, rtol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    pre_spikes=hnp.arrays(dtype=bool, shape=(20, 6)),
    post_spikes=hnp.arrays(dtype=bool, shape=(20, 4)),
)
def test_spike_accumulator_counts_match_direct_sums(pre_spikes, post_spikes):
    accumulator = SpikeAccumulator(6, 4)
    for pre_row, post_row in zip(pre_spikes, post_spikes):
        accumulator.update(pre_row, post_row)
    np.testing.assert_array_equal(accumulator.pre_counts, pre_spikes.sum(axis=0))
    np.testing.assert_array_equal(accumulator.post_counts, post_spikes.sum(axis=0))
    assert accumulator.max_pre == pre_spikes.sum(axis=0).max()
    assert accumulator.max_post == post_spikes.sum(axis=0).max()
    assert accumulator.post_spiked_in_window == bool(post_spikes.any())


@settings(max_examples=50, deadline=None)
@given(
    pre_spikes=hnp.arrays(dtype=bool, shape=(12, 5)),
    post_spikes=hnp.arrays(dtype=bool, shape=(12, 3)),
    boundary=st.integers(min_value=1, max_value=11),
)
def test_spike_accumulator_window_flag_only_sees_the_current_window(
        pre_spikes, post_spikes, boundary):
    accumulator = SpikeAccumulator(5, 3)
    for pre_row, post_row in zip(pre_spikes[:boundary], post_spikes[:boundary]):
        accumulator.update(pre_row, post_row)
    accumulator.close_window()
    for pre_row, post_row in zip(pre_spikes[boundary:], post_spikes[boundary:]):
        accumulator.update(pre_row, post_row)
    assert accumulator.post_spiked_in_window == bool(post_spikes[boundary:].any())
    # The sample-level counts still cover every timestep.
    np.testing.assert_array_equal(accumulator.post_counts, post_spikes.sum(axis=0))

"""Property-based tests for the evaluation and estimation layers."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.estimation.energy import weighted_operations
from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO, RTX_2080_TI
from repro.estimation.memory import (
    ARCH_BASELINE,
    ARCH_SPIKEDYN,
    architecture_parameter_counts,
)
from repro.evaluation.confusion import confusion_matrix
from repro.evaluation.labeling import assign_neuron_labels, predict_from_responses
from repro.evaluation.metrics import accuracy, per_class_accuracy
from repro.snn.simulation import OperationCounter

label_arrays = hnp.arrays(dtype=np.int64, shape=st.integers(1, 60),
                          elements=st.integers(0, 9))


@settings(max_examples=60, deadline=None)
@given(labels=label_arrays, predictions=label_arrays)
def test_confusion_matrix_conserves_samples(labels, predictions):
    n = min(labels.size, predictions.size)
    labels, predictions = labels[:n], predictions[:n]
    matrix = confusion_matrix(labels, predictions, n_classes=10)
    assert matrix.sum() == n
    np.testing.assert_array_equal(matrix.sum(axis=1),
                                  np.bincount(labels, minlength=10))
    np.testing.assert_array_equal(matrix.sum(axis=0),
                                  np.bincount(predictions, minlength=10))


@settings(max_examples=60, deadline=None)
@given(labels=label_arrays)
def test_accuracy_is_the_confusion_diagonal(labels):
    rng = np.random.default_rng(0)
    predictions = labels.copy()
    flip = rng.random(labels.size) < 0.3
    predictions[flip] = (predictions[flip] + 1) % 10
    matrix = confusion_matrix(labels, predictions, n_classes=10)
    assert accuracy(predictions, labels) == np.trace(matrix) / labels.size


@settings(max_examples=60, deadline=None)
@given(labels=label_arrays)
def test_per_class_accuracy_of_perfect_predictions_is_one(labels):
    result = per_class_accuracy(labels, labels, classes=range(10))
    for cls in range(10):
        if (labels == cls).any():
            assert result[cls] == 1.0
        else:
            assert np.isnan(result[cls])


@settings(max_examples=40, deadline=None)
@given(
    responses=hnp.arrays(dtype=float, shape=(12, 8),
                         elements=st.floats(min_value=0.0, max_value=50.0)),
    labels=hnp.arrays(dtype=np.int64, shape=12, elements=st.integers(0, 3)),
)
def test_labeling_and_prediction_outputs_are_always_valid(responses, labels):
    assignments = assign_neuron_labels(responses, labels, n_classes=4)
    assert assignments.shape == (8,)
    assert np.all(assignments >= -1)
    assert np.all(assignments < 4)
    predictions = predict_from_responses(responses, assignments, n_classes=4)
    assert predictions.shape == (12,)
    assert np.all(predictions >= 0)
    assert np.all(predictions < 4)


counter_strategy = st.builds(
    OperationCounter,
    neuron_updates=st.integers(0, 10**7),
    synaptic_events=st.integers(0, 10**7),
    exponential_ops=st.integers(0, 10**7),
    trace_updates=st.integers(0, 10**7),
    weight_updates=st.integers(0, 10**7),
    spike_events=st.integers(0, 10**7),
)


@settings(max_examples=60, deadline=None)
@given(counter=counter_strategy)
def test_weighted_operations_are_nonnegative_and_monotone(counter):
    ops = weighted_operations(counter)
    assert ops >= 0.0
    larger = counter + OperationCounter(synaptic_events=10)
    assert weighted_operations(larger) >= ops


@settings(max_examples=60, deadline=None)
@given(counter=counter_strategy)
def test_device_cost_ordering_is_consistent(counter):
    ops = weighted_operations(counter)
    nano = JETSON_NANO.seconds_for_operations(ops)
    gtx = GTX_1080_TI.seconds_for_operations(ops)
    rtx = RTX_2080_TI.seconds_for_operations(ops)
    assert nano >= gtx >= rtx
    for device in (JETSON_NANO, GTX_1080_TI, RTX_2080_TI):
        assert device.energy_for_operations(ops) >= 0.0


@settings(max_examples=60, deadline=None)
@given(counter_a=counter_strategy, counter_b=counter_strategy)
def test_counter_arithmetic_matches_weighted_operations(counter_a, counter_b):
    combined = counter_a + counter_b
    assert weighted_operations(combined) == (
        weighted_operations(counter_a) + weighted_operations(counter_b)
    )


@settings(max_examples=60, deadline=None)
@given(n_input=st.integers(1, 2000), n_exc=st.integers(1, 2000))
def test_spikedyn_architecture_never_needs_more_memory(n_input, n_exc):
    baseline = architecture_parameter_counts(ARCH_BASELINE, n_input, n_exc)
    spikedyn = architecture_parameter_counts(ARCH_SPIKEDYN, n_input, n_exc)
    assert spikedyn.weights <= baseline.weights
    assert spikedyn.neuron_parameters <= baseline.neuron_parameters
    assert spikedyn.memory_bytes(32) <= baseline.memory_bytes(32)
    # Both share the same learned input projection.
    assert baseline.weights - spikedyn.weights == n_exc + n_exc * (n_exc - 1) - 1

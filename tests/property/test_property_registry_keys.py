"""Property tests of the runner's content-addressed job keys.

Every registry entry must round-trip through the JSON job payload with a
stable key — insertion order of override dictionaries, serialization, and
re-parsing must never change what the cache considers "the same job" — and
the scenario experiments must be cache-hit-identical on re-run (same key,
byte-identical report).
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.runner import JobSpec, ParallelRunner, ResultCache, build_suite, scales_for_preset
from repro.runner.jobs import scale_from_dict, scale_to_dict

SCENARIO_EXPERIMENTS = [name for name in EXPERIMENTS if name.startswith("scen-")]


def micro_suite_jobs():
    return build_suite(scales_for_preset("tiny"))


@pytest.mark.parametrize("name", list(EXPERIMENTS))
class TestKeyRoundTrip:
    def test_payload_round_trips_through_json(self, name, micro_scale):
        job = JobSpec(experiment=name, scale=micro_scale,
                      overrides={"alpha": 1, "beta": [1, 2]})
        parsed = JobSpec.from_dict(json.loads(json.dumps(job.to_dict())))
        # to_dict() normalizes output=None to the derived stem, so compare
        # the fields that define the job's identity, not dataclass equality.
        assert parsed.key() == job.key()
        assert parsed.output_stem == job.output_stem
        assert parsed.scale == job.scale
        assert dict(parsed.overrides) == dict(job.overrides)

    def test_key_stable_under_override_dict_ordering(self, name, micro_scale):
        forward = JobSpec(experiment=name, scale=micro_scale,
                          overrides={"a": 1, "b": 2, "c": [3, 4]})
        backward = JobSpec(experiment=name, scale=micro_scale,
                           overrides={"c": [3, 4], "b": 2, "a": 1})
        assert forward.key() == backward.key()

    def test_key_stable_under_scale_dict_round_trip(self, name, micro_scale):
        rebuilt = scale_from_dict(scale_to_dict(micro_scale))
        assert JobSpec(experiment=name, scale=rebuilt).key() == \
            JobSpec(experiment=name, scale=micro_scale).key()

    def test_key_changes_with_seed_and_overrides(self, name, micro_scale):
        base = JobSpec(experiment=name, scale=micro_scale)
        assert base.with_seed(base.seed + 1).key() != base.key()
        assert JobSpec(experiment=name, scale=micro_scale,
                       overrides={"x": 1}).key() != base.key()


def test_full_suite_keys_survive_manifest_serialization():
    jobs = micro_suite_jobs()
    for job in jobs:
        parsed = JobSpec.from_dict(json.loads(json.dumps(job.to_dict())))
        assert parsed.key() == job.key()


def test_suite_includes_the_scenario_experiments():
    experiments = [job.experiment for job in micro_suite_jobs()]
    assert SCENARIO_EXPERIMENTS
    for name in SCENARIO_EXPERIMENTS:
        assert name in experiments


@pytest.mark.integration
@pytest.mark.parametrize("name", SCENARIO_EXPERIMENTS)
def test_scenario_experiments_are_cache_hit_identical(name, micro_scale, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = JobSpec(experiment=name, scale=micro_scale)

    first = ParallelRunner(0, cache=cache).run([job])[0]
    assert first.status == "completed"
    assert first.source == "run"

    second = ParallelRunner(0, cache=cache).run([job])[0]
    assert second.status == "completed"
    assert second.source == "cache"
    assert second.key == first.key
    assert second.report == first.report

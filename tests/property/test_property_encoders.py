"""Property-based tests for the spike encoders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.encoding.burst import BurstEncoder
from repro.encoding.phase import PhaseEncoder
from repro.encoding.rank_order import RankOrderEncoder
from repro.encoding.rate import PoissonRateEncoder
from repro.encoding.temporal import LatencyEncoder

intensity_images = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)

durations = st.sampled_from([10.0, 25.0, 50.0])


@settings(max_examples=30, deadline=None)
@given(values=intensity_images, duration=durations, seed=st.integers(0, 2**16))
def test_rate_encoder_shape_and_dtype(values, duration, seed):
    encoder = PoissonRateEncoder(duration=duration, dt=1.0, rng=seed)
    train = encoder.encode(values)
    assert train.shape == (int(duration), values.size)
    assert train.dtype == bool


@settings(max_examples=30, deadline=None)
@given(values=intensity_images, seed=st.integers(0, 2**16))
def test_rate_encoder_zero_intensity_is_silent(values, seed):
    values = values.copy()
    values[0] = 0.0
    encoder = PoissonRateEncoder(duration=50.0, dt=1.0, max_rate=500.0, rng=seed)
    train = encoder.encode(values)
    assert train[:, 0].sum() == 0


@settings(max_examples=30, deadline=None)
@given(values=intensity_images, seed=st.integers(0, 2**16))
def test_rate_encoder_probabilities_are_valid(values, seed):
    encoder = PoissonRateEncoder(duration=20.0, dt=1.0, max_rate=1e4, rng=seed)
    probabilities = encoder.spike_probabilities(values)
    assert np.all(probabilities >= 0.0)
    assert np.all(probabilities <= 1.0)


@settings(max_examples=30, deadline=None)
@given(values=intensity_images, duration=durations)
def test_latency_encoder_emits_at_most_one_spike_per_element(values, duration):
    encoder = LatencyEncoder(duration=duration, dt=1.0)
    train = encoder.encode(values)
    assert np.all(train.sum(axis=0) <= 1)


@settings(max_examples=30, deadline=None)
@given(values=intensity_images)
def test_latency_encoder_orders_spikes_by_intensity(values):
    encoder = LatencyEncoder(duration=50.0, dt=1.0)
    times = encoder.spike_times(values)
    active = times >= 0
    if active.sum() >= 2:
        active_values = values[active] / max(values.max(), 1e-12)
        active_times = times[active]
        order = np.argsort(-active_values, kind="stable")
        sorted_times = active_times[order]
        assert np.all(np.diff(sorted_times) >= 0)


@settings(max_examples=30, deadline=None)
@given(values=intensity_images, duration=durations)
def test_rank_order_encoder_spikes_are_unique_per_timestep(values, duration):
    encoder = RankOrderEncoder(duration=duration, dt=1.0)
    train = encoder.encode(values)
    # At most one element spikes per timestep, and each element at most once.
    assert np.all(train.sum(axis=1) <= 1)
    assert np.all(train.sum(axis=0) <= 1)


@settings(max_examples=30, deadline=None)
@given(values=intensity_images)
def test_phase_encoder_spike_counts_bounded_by_cycles(values):
    encoder = PhaseEncoder(duration=40.0, dt=1.0, period=10.0)
    train = encoder.encode(values)
    assert np.all(train.sum(axis=0) <= 4)


@settings(max_examples=30, deadline=None)
@given(values=intensity_images,
       max_burst=st.integers(min_value=1, max_value=8))
def test_burst_encoder_spike_counts_match_burst_lengths(values, max_burst):
    encoder = BurstEncoder(duration=60.0, dt=1.0, max_burst_length=max_burst,
                           inter_spike_interval=2)
    train = encoder.encode(values)
    lengths = encoder.burst_lengths(values)
    # Bursts fit comfortably in the 60-step window for max_burst <= 8.
    np.testing.assert_array_equal(train.sum(axis=0), lengths)
    assert np.all(lengths <= max_burst)


@settings(max_examples=20, deadline=None)
@given(values=intensity_images)
def test_all_encoders_reject_negative_intensities(values):
    values = values.copy()
    values[0] = -0.5
    for encoder in (PoissonRateEncoder(duration=10.0, rng=0),
                    LatencyEncoder(duration=10.0),
                    RankOrderEncoder(duration=10.0),
                    PhaseEncoder(duration=10.0),
                    BurstEncoder(duration=10.0)):
        with pytest.raises(ValueError):
            encoder.encode(values)

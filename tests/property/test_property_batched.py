"""Property-style equivalence checks of the batched engine.

Randomized network sizes, spike densities, batch sizes, and learning modes:
for every draw, ``run_batch`` must agree bit-for-bit with a sequential
``run_sample`` loop on twin networks built from the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import build_baseline_network, build_spikedyn_network
from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule
from repro.learning.stdp import PairwiseSTDP
from repro.snn.neurons import AdaptiveLIFGroup

CASES = [
    # (builder, n_exc, batch_size, timesteps, density, seed)
    ("spikedyn", 8, 2, 12, 0.02, 0),
    ("spikedyn", 17, 5, 25, 0.08, 1),
    ("spikedyn", 33, 9, 18, 0.15, 2),
    ("baseline", 6, 3, 20, 0.05, 3),
    ("baseline", 21, 4, 14, 0.12, 4),
]


def _build(kind: str, n_exc: int, timesteps: int, seed: int):
    config = SpikeDynConfig.scaled_down(n_input=64, n_exc=n_exc,
                                        t_sim=float(timesteps), seed=seed)
    if kind == "spikedyn":
        return build_spikedyn_network(
            config, learning_rule=SpikeDynLearningRule(), rng=seed
        )
    return build_baseline_network(config, learning_rule=PairwiseSTDP(), rng=seed)


def _trains(batch_size: int, timesteps: int, density: float, seed: int):
    rng = np.random.default_rng(1000 + seed)
    return rng.random((batch_size, timesteps, 64)) < density


@pytest.mark.parametrize("kind,n_exc,batch,timesteps,density,seed", CASES)
def test_batched_inference_equals_sequential(kind, n_exc, batch, timesteps,
                                             density, seed):
    trains = _trains(batch, timesteps, density, seed)
    sequential_net = _build(kind, n_exc, timesteps, seed)
    batched_net = _build(kind, n_exc, timesteps, seed)
    for network in (sequential_net, batched_net):
        for group in network.groups.values():
            if isinstance(group, AdaptiveLIFGroup):
                group.adapt_theta = False

    sequential = [sequential_net.run_sample(train, learning=False)
                  for train in trains]
    batched = batched_net.run_batch(trains, learning=False)
    for seq, bat in zip(sequential, batched):
        for name in seq.spike_counts:
            np.testing.assert_array_equal(bat.counts(name), seq.counts(name))
    assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()


@pytest.mark.parametrize("kind,n_exc,batch,timesteps,density,seed", CASES)
def test_batched_learning_equals_sequential(kind, n_exc, batch, timesteps,
                                            density, seed):
    trains = _trains(batch, timesteps, density, seed)
    sequential_net = _build(kind, n_exc, timesteps, seed)
    batched_net = _build(kind, n_exc, timesteps, seed)

    for train in trains:
        sequential_net.run_sample(train, learning=True)
    batched_net.run_batch(trains, learning=True)

    np.testing.assert_array_equal(
        sequential_net.connection("input_to_exc").weights,
        batched_net.connection("input_to_exc").weights,
    )
    assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()


@pytest.mark.parametrize("batch", [1, 2, 7])
def test_batched_run_is_deterministic(batch):
    trains = _trains(batch, 16, 0.1, 42)
    first_net = _build("spikedyn", 12, 16, 5)
    second_net = _build("spikedyn", 12, 16, 5)
    first = first_net.run_batch(trains, learning=False)
    second = second_net.run_batch(trains, learning=False)
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a.counts("excitatory"),
                                      b.counts("excitatory"))

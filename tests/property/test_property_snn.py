"""Property-based tests for the SNN engine and learning-rule invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.learning import SpikeDynLearningRule
from repro.core.weight_decay import SynapticWeightDecay
from repro.learning.asp import ASPLearningRule
from repro.learning.stdp import PairwiseSTDP
from repro.snn.neurons import AdaptiveLIFGroup, InputGroup, LIFGroup
from repro.snn.synapses import Connection, UniformLateralInhibition
from repro.snn.traces import SpikeTrace

spike_rasters = hnp.arrays(dtype=bool, shape=(30, 5))


@settings(max_examples=40, deadline=None)
@given(raster=spike_rasters, tau=st.floats(min_value=1.0, max_value=100.0))
def test_set_mode_traces_stay_in_unit_interval(raster, tau):
    trace = SpikeTrace(5, tau=tau, increment=1.0, mode="set")
    for row in raster:
        trace.step(row, 1.0)
        assert np.all(trace.values >= 0.0)
        assert np.all(trace.values <= 1.0)


@settings(max_examples=40, deadline=None)
@given(raster=spike_rasters)
def test_add_mode_traces_are_bounded_by_the_spike_count(raster):
    trace = SpikeTrace(5, tau=20.0, increment=1.0, mode="add")
    for row in raster:
        trace.step(row, 1.0)
    assert np.all(trace.values <= raster.sum(axis=0) + 1e-12)
    assert np.all(trace.values >= 0.0)


@settings(max_examples=30, deadline=None)
@given(
    currents=hnp.arrays(dtype=float, shape=(40, 6),
                        elements=st.floats(min_value=-50.0, max_value=50.0)),
)
def test_lif_membrane_stays_finite_and_resets_on_spikes(currents):
    group = LIFGroup(6, refractory=0.0)
    for row in currents:
        spikes = group.step(row, 1.0)
        assert np.all(np.isfinite(group.v))
        # A neuron that spiked is at the reset potential.
        assert np.all(group.v[spikes] == group.v_reset)
        # No neuron sits above its firing threshold after the step.
        assert np.all(group.v <= group.firing_threshold() + 1e-9)


@settings(max_examples=30, deadline=None)
@given(
    currents=hnp.arrays(dtype=float, shape=(40, 6),
                        elements=st.floats(min_value=0.0, max_value=100.0)),
    theta_plus=st.floats(min_value=0.0, max_value=5.0),
)
def test_adaptive_theta_is_nonnegative_and_bounded(currents, theta_plus):
    group = AdaptiveLIFGroup(6, refractory=0.0, theta_plus=theta_plus,
                             tau_theta=50.0)
    total_spikes = 0
    for row in currents:
        spikes = group.step(row, 1.0)
        total_spikes += int(spikes.sum())
        assert np.all(group.theta >= 0.0)
    # Theta can never exceed what the spikes alone could have accumulated.
    assert group.theta.sum() <= theta_plus * total_spikes + 1e-9


@settings(max_examples=30, deadline=None)
@given(raster=hnp.arrays(dtype=bool, shape=(25, 4)),
       strength=st.floats(min_value=0.0, max_value=30.0))
def test_lateral_inhibition_current_is_never_positive(raster, strength):
    group = LIFGroup(4)
    lateral = UniformLateralInhibition(group, strength)
    for row in raster:
        group.spikes = row
        current = lateral.propagate(1.0)
        assert np.all(current <= 1e-12)
        assert np.all(np.isfinite(current))


def _drive_rule(rule, pre_raster, post_raster):
    pre = InputGroup(pre_raster.shape[1], name="pre")
    post = LIFGroup(post_raster.shape[1], name="post")
    connection = Connection(pre, post,
                            np.full((pre.n, post.n), 0.5), learning_rule=rule)
    rule.on_sample_start(connection)
    for t, (pre_row, post_row) in enumerate(zip(pre_raster, post_raster)):
        pre.spikes = pre_row
        post.spikes = post_row
        rule.step(connection, 1.0, t)
    rule.on_sample_end(connection)
    return connection


learning_rules = st.sampled_from(["stdp", "asp", "spikedyn"])


def _build_rule(kind: str):
    if kind == "stdp":
        return PairwiseSTDP(nu_pre=0.05, nu_post=0.5, soft_bounds=False)
    if kind == "asp":
        return ASPLearningRule(nu_pre=0.05, nu_post=0.5, tau_leak=100.0)
    return SpikeDynLearningRule(
        nu_pre=0.05, nu_post=0.5, update_interval=5.0,
        weight_decay=SynapticWeightDecay(0.5, tau_decay=100.0), soft_bounds=False,
    )


@settings(max_examples=25, deadline=None)
@given(
    kind=learning_rules,
    pre_raster=hnp.arrays(dtype=bool, shape=(30, 6)),
    post_raster=hnp.arrays(dtype=bool, shape=(30, 4)),
)
def test_every_learning_rule_respects_the_weight_bounds(kind, pre_raster,
                                                        post_raster):
    connection = _drive_rule(_build_rule(kind), pre_raster, post_raster)
    assert np.all(connection.weights >= connection.w_min - 1e-12)
    assert np.all(connection.weights <= connection.w_max + 1e-12)
    assert np.all(np.isfinite(connection.weights))


@settings(max_examples=25, deadline=None)
@given(
    kind=learning_rules,
    pre_raster=hnp.arrays(dtype=bool, shape=(30, 6)),
)
def test_learning_without_postsynaptic_spikes_never_potentiates(kind, pre_raster):
    """With a silent postsynaptic layer there is nothing to potentiate: no
    rule may increase any weight above its initial value."""
    post_raster = np.zeros((30, 4), dtype=bool)
    connection = _drive_rule(_build_rule(kind), pre_raster, post_raster)
    assert np.all(connection.weights <= 0.5 + 1e-12)

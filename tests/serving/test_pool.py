"""Replica-pool tests: concurrent equivalence, isolation, failure paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    PredictRequest,
    QueueClosedError,
    ReplicaPool,
    offline_predictions,
    pool_sender,
    run_load,
)


@pytest.fixture
def pool(artifact):
    pool = ReplicaPool.from_artifact(artifact, workers=2, max_batch=8,
                                     max_wait_ms=5.0, max_queue=256)
    with pool:
        yield pool


class TestConcurrentEquivalence:
    def test_concurrent_predictions_match_offline_batched_path(
            self, pool, artifact, request_images, request_seeds):
        """The tentpole guarantee: micro-batched concurrent serving returns
        predictions bit-identical to the offline ``eval_batch_size`` path."""
        reference = offline_predictions(artifact.build_model(),
                                        request_images, request_seeds)
        report = run_load(pool_sender(pool), request_images, request_seeds,
                          concurrency=8)
        assert report.errors == []
        np.testing.assert_array_equal(report.predictions, reference)

    def test_equivalence_holds_per_seed(self, pool, artifact, request_images):
        """Changing a request's seed changes (only) that request's answer."""
        model = artifact.build_model()
        image = request_images[0]
        for seed in (0, 1, 99):
            served = pool.predict(image, seed=seed, timeout=30.0)
            reference = offline_predictions(model, [image], [seed])[0]
            assert served.prediction == reference

    def test_repeated_requests_are_reproducible(self, pool, request_images):
        first = pool.predict(request_images[0], seed=5, timeout=30.0)
        second = pool.predict(request_images[0], seed=5, timeout=30.0)
        assert first.prediction == second.prediction
        assert first.spike_count == second.spike_count
        np.testing.assert_array_equal(first.scores, second.scores)


class TestReplicaIsolation:
    def test_replicas_share_no_mutable_state(self, pool):
        services = pool.replicas
        assert len(services) == 2
        first, second = services[0].model, services[1].model
        assert first is not second
        assert first.network is not second.network
        assert not np.shares_memory(first.input_weights, second.input_weights)
        assert not np.shares_memory(first.assignments, second.assignments)
        theta_a = first.network.group("excitatory").theta
        theta_b = second.network.group("excitatory").theta
        assert not np.shares_memory(theta_a, theta_b)

    def test_corrupting_one_replica_does_not_leak(self, artifact,
                                                  request_images):
        """Zeroing replica 0's weights must leave replica 1's answers intact."""
        pool = ReplicaPool.from_artifact(artifact, workers=2, max_batch=4)
        clean = offline_predictions(artifact.build_model(),
                                    request_images[:3], [0, 1, 2])
        pool.replicas[0].model.input_weights[:] = 0.0
        requests = [PredictRequest(image=image, seed=seed)
                    for image, seed in zip(request_images[:3], [0, 1, 2])]
        predictions = [result.prediction
                       for result in pool.replicas[1].predict_batch(requests)]
        np.testing.assert_array_equal(np.asarray(predictions), clean)


class TestLifecycleAndFailures:
    def test_wrong_image_size_is_rejected_synchronously(self, pool):
        with pytest.raises(ValueError, match="pixels"):
            pool.submit(np.zeros(7))
        snapshot = pool.metrics_snapshot()
        assert snapshot["rejected_total"] >= 1

    def test_worker_exception_propagates_to_the_future(self, artifact,
                                                       request_images):
        pool = ReplicaPool.from_artifact(artifact, workers=1, max_batch=4)

        def explode(requests):
            raise RuntimeError("boom")

        pool.replicas[0].predict_batch = explode
        with pool:
            future = pool.submit(request_images[0], seed=0)
            with pytest.raises(RuntimeError, match="boom"):
                future.result(10.0)
        assert pool.metrics_snapshot()["errors_total"] == 1

    def test_stop_drains_pending_requests(self, artifact, request_images):
        pool = ReplicaPool.from_artifact(artifact, workers=1, max_batch=4,
                                         max_wait_ms=0.0)
        pool.start()
        futures = [pool.submit(image, seed=index)
                   for index, image in enumerate(request_images[:4])]
        pool.stop()
        assert all(future.done() for future in futures)
        assert all(future.result(0).prediction >= 0 for future in futures)

    def test_submit_after_stop_raises(self, artifact, request_images):
        pool = ReplicaPool.from_artifact(artifact, workers=1)
        pool.start()
        pool.stop()
        with pytest.raises(QueueClosedError):
            pool.submit(request_images[0])

    def test_restarting_a_stopped_pool_is_refused(self, artifact):
        """A stopped pool's queue is closed forever; a second start() must
        fail loudly instead of reporting healthy-but-dead workers."""
        pool = ReplicaPool.from_artifact(artifact, workers=1)
        pool.start()
        pool.stop()
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            pool.start()

    def test_negative_intensities_are_rejected_synchronously(
            self, pool, request_images):
        """One bad image must not poison a whole micro-batch in a worker."""
        bad = np.array(request_images[0], dtype=float)
        bad[0] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            pool.submit(bad)

    def test_predict_timeout_cancels_the_request(self, artifact,
                                                 request_images):
        """A timed-out predict() must not leave its request consuming a
        worker later."""
        from concurrent.futures import TimeoutError as FutureTimeoutError

        pool = ReplicaPool.from_artifact(artifact, workers=1, max_batch=2)
        # Workers never started: the request stays queued past the timeout.
        with pytest.raises(FutureTimeoutError):
            pool.predict(request_images[0], seed=0, timeout=0.05)
        pending = pool.batcher.next_batch(timeout=0.1)
        assert len(pending) == 1
        assert pending[0].future.cancelled()

    def test_metrics_account_for_every_request(self, pool, request_images,
                                               request_seeds):
        run_load(pool_sender(pool), request_images, request_seeds,
                 concurrency=6)
        snapshot = pool.metrics_snapshot()
        n = len(request_images)
        assert snapshot["requests_total"] >= n
        assert snapshot["responses_total"] >= n
        histogram = snapshot["batch_size_histogram"]
        assert sum(int(size) * count for size, count in histogram.items()) \
            >= n
        assert "p99_ms" in snapshot["latency"]
        assert snapshot["queue_depth"] == 0

    def test_metrics_report_the_active_backend(self, pool, artifact):
        assert pool.backend_name == "dense"
        assert pool.metrics_snapshot()["backend"] == "dense"
        sparse_pool = ReplicaPool.from_artifact(artifact, workers=1,
                                                backend="sparse")
        assert sparse_pool.backend_name == "sparse"
        assert sparse_pool.metrics_snapshot()["backend"] == "sparse"

    def test_sparse_backend_replicas_predict_identically(
            self, pool, artifact, request_images, request_seeds):
        with ReplicaPool.from_artifact(artifact, workers=2,
                                       backend="sparse") as sparse_pool:
            sparse = [sparse_pool.predict(image, seed=seed, timeout=30.0)
                      for image, seed in zip(request_images, request_seeds)]
        # The shared pool fixture is already running.
        dense = [pool.predict(image, seed=seed, timeout=30.0)
                 for image, seed in zip(request_images, request_seeds)]
        assert [r.prediction for r in sparse] == [r.prediction for r in dense]
        assert [r.spike_count for r in sparse] == [r.spike_count for r in dense]

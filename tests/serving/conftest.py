"""Shared fixtures for the serving tests.

Training even a tiny model costs a couple of seconds, so the trained model
and its saved artifact are session-scoped; everything that could mutate
state (pools, servers) builds fresh replicas from the artifact instead of
touching the shared model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving import load_artifact

#: Classes the shared serving model is trained on.
SERVING_CLASSES = (0, 1, 2)


@pytest.fixture(scope="session")
def serving_config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=196, n_exc=16, t_sim=40.0, seed=0)


@pytest.fixture(scope="session")
def serving_source() -> SyntheticDigits:
    return SyntheticDigits(image_size=14, seed=0)


@pytest.fixture(scope="session")
def trained_model(serving_config, serving_source) -> SpikeDynModel:
    """A tiny SpikeDyn model trained and labelled on three classes."""
    model = SpikeDynModel(serving_config)
    assign_images, assign_labels = [], []
    for cls in SERVING_CLASSES:
        for image in serving_source.generate(cls, 3, rng=1):
            model.train_sample(image)
        for image in serving_source.generate(cls, 2, rng=2):
            assign_images.append(image)
            assign_labels.append(cls)
    model.assign_labels(assign_images, assign_labels)
    return model


@pytest.fixture(scope="session")
def artifact_dir(tmp_path_factory, trained_model):
    """The trained model saved as a schema-v3 artifact."""
    directory = tmp_path_factory.mktemp("artifacts") / "spikedyn"
    trained_model.save(directory)
    return directory


@pytest.fixture(scope="session")
def artifact(artifact_dir):
    return load_artifact(artifact_dir)


@pytest.fixture(scope="session")
def request_images(serving_source) -> list:
    """A dozen evaluation images spanning the trained classes."""
    images = []
    for cls in SERVING_CLASSES:
        images.extend(serving_source.generate(cls, 4, rng=7))
    return [np.asarray(image, dtype=float) for image in images]


@pytest.fixture(scope="session")
def request_seeds(request_images) -> list:
    return list(range(len(request_images)))

"""ServingClient unit tests against a scripted stub HTTP server.

The stub answers each request from a queue of canned ``(status, headers,
body)`` responses and records what it received, so retry behaviour, header
propagation, and error typing are all asserted without a real model server.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.client import (
    ClientInvalidRequestError,
    ClientNotFoundError,
    ClientRateLimitedError,
    ClientTimeoutError,
    ClientUnavailableError,
    ServingAPIError,
    ServingClient,
    TransportError,
)


class StubServer:
    """Scripted HTTP server: pops one canned response per request."""

    def __init__(self):
        self.responses = []   # [(status, headers_dict, body_obj)]
        self.requests = []    # [(method, path, headers_dict, body_obj|None)]
        self._lock = threading.Lock()
        stub = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def _serve(self):
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b""
                body = json.loads(raw) if raw else None
                with stub._lock:
                    stub.requests.append((self.command, self.path,
                                          dict(self.headers), body))
                    if not stub.responses:
                        status, headers, reply = 500, {}, {"error": "unscripted"}
                    else:
                        status, headers, reply = stub.responses.pop(0)
                if reply is ...:  # sentinel: hang up without answering
                    self.connection.close()
                    return
                payload = (reply if isinstance(reply, bytes)
                           else json.dumps(reply).encode("utf-8"))
                self.send_response(status)
                content_type = ("text/plain" if isinstance(reply, bytes)
                                else "application/json")
                self.send_header("Content-Type",
                                 headers.get("Content-Type", content_type))
                self.send_header("Content-Length", str(len(payload)))
                for name, value in headers.items():
                    if name != "Content-Type":
                        self.send_header(name, value)
                self.end_headers()
                self.wfile.write(payload)

            do_GET = do_POST = _serve

        self.httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.thread = threading.Thread(target=self.httpd.serve_forever,
                                       daemon=True)
        self.thread.start()

    @property
    def url(self):
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def script(self, *responses):
        self.responses.extend(responses)

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()


@pytest.fixture()
def stub():
    server = StubServer()
    yield server
    server.close()


def ok_body(prediction=3):
    return {"prediction": prediction, "seed": 0, "spike_count": 1.0,
            "scores": [0.0] * 10}


def envelope(code, message="boom", detail=None):
    return {"error": {"code": code, "message": message, "detail": detail}}


IMAGE = np.zeros(4)


class TestRequestShapes:
    def test_legacy_predict_posts_to_the_alias(self, stub):
        stub.script((200, {}, ok_body()))
        body = ServingClient(stub.url).predict(IMAGE, seed=7)
        assert body["prediction"] == 3
        method, path, _, payload = stub.requests[0]
        assert (method, path) == ("POST", "/predict")
        assert payload == {"image": [0.0] * 4, "seed": 7}

    def test_model_and_version_route(self, stub):
        stub.script((200, {}, ok_body()))
        ServingClient(stub.url).predict(IMAGE, model="digits", version=3)
        assert stub.requests[0][1] == "/v1/models/digits/versions/v3/predict"

    def test_string_version_passes_through(self, stub):
        stub.script((200, {}, ok_body()))
        ServingClient(stub.url).predict(IMAGE, model="digits", version="v0002")
        assert stub.requests[0][1] == "/v1/models/digits/versions/v0002/predict"

    def test_tenant_header_sent(self, stub):
        stub.script((200, {}, ok_body()))
        ServingClient(stub.url, tenant="acme").predict(IMAGE, model="m")
        assert stub.requests[0][2].get("X-Tenant") == "acme"

    def test_helper_endpoints(self, stub):
        stub.script(
            (200, {}, {"models": [{"name": "m"}]}),
            (200, {}, {"status": "ok"}),
            (200, {}, {"status": "ok"}),
            (200, {}, {"models": {}}),
            (200, {}, b"# HELP x y\n"),
        )
        client = ServingClient(stub.url)
        assert client.models() == [{"name": "m"}]
        assert client.health()["status"] == "ok"
        assert client.health("m")["status"] == "ok"
        client.metrics_json()
        assert client.metrics_text().startswith("# HELP")
        paths = [request[1] for request in stub.requests]
        assert paths == ["/v1/models", "/v1/healthz",
                         "/v1/models/m/healthz", "/v1/metrics.json",
                         "/v1/metrics"]

    def test_predict_trace_id_sends_the_trace_header(self, stub):
        stub.script((200, {}, ok_body()))
        ServingClient(stub.url).predict(IMAGE, model="m", trace_id="trace-42")
        headers = stub.requests[0][2]
        assert headers.get("X-Repro-Trace-Id") == "trace-42"

    def test_predict_without_trace_id_sends_no_trace_header(self, stub):
        stub.script((200, {}, ok_body()))
        ServingClient(stub.url).predict(IMAGE, model="m")
        assert "X-Repro-Trace-Id" not in stub.requests[0][2]

    def test_trace_header_survives_retries(self, stub):
        stub.script(
            (503, {}, envelope("unavailable")),
            (200, {}, ok_body()),
        )
        client = ServingClient(stub.url, retries=2, backoff_s=0.01)
        client.predict(IMAGE, model="m", trace_id="trace-42")
        assert len(stub.requests) == 2
        assert all(request[2].get("X-Repro-Trace-Id") == "trace-42"
                   for request in stub.requests)

    def test_metrics_prometheus_parses_families(self, stub):
        stub.script((200, {},
                     b"# TYPE repro_requests_total counter\n"
                     b'repro_requests_total{model="m"} 5\n'))
        families = ServingClient(stub.url).metrics_prometheus()
        assert families["repro_requests_total"][(("model", "m"),)] == 5.0

    def test_metrics_prometheus_rejects_corrupt_exposition(self, stub):
        stub.script((200, {}, b"# TYPE a counter\n# TYPE a counter\n"))
        with pytest.raises(ValueError, match="duplicate metric family"):
            ServingClient(stub.url).metrics_prometheus()


class TestErrorTyping:
    @pytest.mark.parametrize("status,code,expected", [
        (400, "invalid_request", ClientInvalidRequestError),
        (413, "payload_too_large", ClientInvalidRequestError),
        (404, "not_found", ClientNotFoundError),
        (429, "rate_limited", ClientRateLimitedError),
        (429, "queue_full", ClientRateLimitedError),
        (503, "circuit_open", ClientUnavailableError),
        (503, "shutting_down", ClientUnavailableError),
        (503, "upstream_failure", ClientUnavailableError),
        (500, "internal", ClientUnavailableError),
        (504, "timeout", ClientTimeoutError),
    ])
    def test_envelope_maps_to_typed_error(self, stub, status, code, expected):
        stub.script((status, {}, envelope(code)))
        client = ServingClient(stub.url, retries=0)
        with pytest.raises(expected) as excinfo:
            client.predict(IMAGE, model="m")
        assert excinfo.value.code == code
        assert excinfo.value.status == status
        assert isinstance(excinfo.value, ServingAPIError)

    def test_pre_1_7_string_error_still_parses(self, stub):
        stub.script((400, {}, {"error": "image must be a list"}))
        with pytest.raises(ClientInvalidRequestError) as excinfo:
            ServingClient(stub.url, retries=0).predict(IMAGE)
        assert "image must be a list" in excinfo.value.message

    def test_non_json_error_body_falls_back_by_status(self, stub):
        stub.script((503, {}, b"<html>gateway sad</html>"))
        with pytest.raises(ClientUnavailableError):
            ServingClient(stub.url, retries=0).predict(IMAGE)

    def test_detail_and_retry_after_surface(self, stub):
        stub.script((429, {"Retry-After": "7"},
                     envelope("rate_limited", detail={"tenant": "t"})))
        with pytest.raises(ClientRateLimitedError) as excinfo:
            ServingClient(stub.url, retries=0).predict(IMAGE)
        assert excinfo.value.retry_after_s == 7.0
        assert excinfo.value.detail == {"tenant": "t"}


class TestRetryPolicy:
    def make_client(self, stub, **kwargs):
        sleeps = []
        kwargs.setdefault("retries", 2)
        kwargs.setdefault("backoff_s", 0.01)
        client = ServingClient(stub.url, sleep=sleeps.append, **kwargs)
        return client, sleeps

    def test_retryable_errors_are_retried_until_success(self, stub):
        stub.script(
            (503, {}, envelope("upstream_failure")),
            (429, {}, envelope("rate_limited")),
            (200, {}, ok_body(5)),
        )
        client, sleeps = self.make_client(stub)
        assert client.predict(IMAGE, model="m")["prediction"] == 5
        assert len(stub.requests) == 3
        assert len(sleeps) == 2

    def test_retry_budget_is_bounded(self, stub):
        stub.script(*[(503, {}, envelope("upstream_failure"))] * 5)
        client, _ = self.make_client(stub, retries=2)
        with pytest.raises(ClientUnavailableError):
            client.predict(IMAGE, model="m")
        assert len(stub.requests) == 3  # 1 + 2 retries

    def test_non_retryable_errors_fail_immediately(self, stub):
        stub.script((400, {}, envelope("invalid_request")))
        client, sleeps = self.make_client(stub)
        with pytest.raises(ClientInvalidRequestError):
            client.predict(IMAGE, model="m")
        assert len(stub.requests) == 1
        assert sleeps == []

    def test_server_retry_after_wins_when_larger(self, stub):
        stub.script(
            (429, {"Retry-After": "3"}, envelope("rate_limited")),
            (200, {}, ok_body()),
        )
        client, sleeps = self.make_client(stub, backoff_s=0.01)
        client.predict(IMAGE, model="m")
        assert sleeps == [3.0]

    def test_backoff_grows_and_is_capped(self, stub):
        stub.script(*([(503, {}, envelope("upstream_failure"))] * 4
                      + [(200, {}, ok_body())]))
        client, sleeps = self.make_client(stub, retries=4, backoff_s=0.1,
                                          backoff_max_s=0.2)
        client.predict(IMAGE, model="m")
        assert len(sleeps) == 4
        # jittered exponential: base 0.1, 0.2, then capped at 0.2
        for slept, base in zip(sleeps, [0.1, 0.2, 0.2, 0.2]):
            assert 0.5 * base <= slept < 1.5 * base

    def test_transport_errors_are_retried(self, stub):
        stub.script(
            (200, {}, ...),  # connection dropped mid-request
            (200, {}, ok_body(1)),
        )
        client, sleeps = self.make_client(stub)
        assert client.predict(IMAGE, model="m")["prediction"] == 1
        assert len(sleeps) == 1

    def test_connection_refused_is_a_transport_error(self):
        # grab a port that nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServingClient(f"http://127.0.0.1:{port}", retries=1,
                               backoff_s=0.0, sleep=lambda s: None)
        with pytest.raises(TransportError):
            client.predict(IMAGE, model="m")


class TestWaitUntilHealthy:
    def test_polls_until_ok(self, stub):
        stub.script(
            (503, {}, envelope("shutting_down")),
            (200, {}, {"status": "ok"}),
        )
        client = ServingClient(stub.url, retries=0)
        health = client.wait_until_healthy(timeout=10.0, interval=0.01)
        assert health["status"] == "ok"
        assert [request[1] for request in stub.requests] == \
            ["/v1/healthz", "/v1/healthz"]

    def test_times_out(self, stub):
        stub.script(*[(503, {}, envelope("shutting_down"))] * 50)
        client = ServingClient(stub.url, retries=0)
        with pytest.raises(TimeoutError):
            client.wait_until_healthy(timeout=0.2, interval=0.01)

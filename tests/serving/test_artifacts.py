"""Artifact registry tests: round trips, validation, versioning."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.models.base import ARTIFACT_SCHEMA_VERSION
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving import (
    ArtifactError,
    ArtifactRegistry,
    load_artifact,
    save_artifact,
)
from repro.utils.serialization import load_json, save_arrays, save_json


class TestRoundTrip:
    def test_bit_for_bit_round_trip(self, artifact, trained_model):
        rebuilt = artifact.build_model()
        np.testing.assert_array_equal(rebuilt.input_weights,
                                      trained_model.input_weights)
        np.testing.assert_array_equal(rebuilt.assignments,
                                      trained_model.assignments)
        np.testing.assert_array_equal(
            rebuilt.network.group("excitatory").theta,
            trained_model.network.group("excitatory").theta,
        )
        assert rebuilt.samples_trained == trained_model.samples_trained

    def test_build_model_returns_independent_instances(self, artifact):
        first = artifact.build_model()
        second = artifact.build_model()
        assert first is not second
        assert not np.shares_memory(first.input_weights, second.input_weights)
        np.testing.assert_array_equal(first.input_weights, second.input_weights)

    def test_build_model_survives_artifact_dir_deletion(self, trained_model,
                                                        tmp_path):
        """A loaded ModelArtifact is self-contained: replicas build from the
        in-memory state even after the directory is gone (registry rollback,
        tempdir cleanup)."""
        import shutil

        directory = trained_model.save(tmp_path / "ephemeral")
        loaded = load_artifact(directory)
        shutil.rmtree(directory)
        rebuilt = loaded.build_model()
        np.testing.assert_array_equal(rebuilt.input_weights,
                                      trained_model.input_weights)
        assert rebuilt.samples_trained == trained_model.samples_trained

    def test_metadata_is_self_describing(self, artifact_dir):
        metadata = load_json(artifact_dir / "model.json")
        assert metadata["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert metadata["format"] == "spikedyn-repro-model"
        assert metadata["meta"]["name"] == "spikedyn"
        encoder = metadata["encoder"]
        assert encoder["type"] == "PoissonRateEncoder"
        assert encoder["duration"] == pytest.approx(40.0)
        assert encoder["timesteps"] == 40

    def test_round_trip_property_across_seeds(self, serving_config, tmp_path):
        """Save → load is the identity on learned state for any weights."""
        for seed in range(3):
            model = SpikeDynModel(serving_config.replace(seed=seed))
            rng = np.random.default_rng(seed)
            model.input_weights[:] = rng.uniform(
                0.0, 1.0, size=model.input_weights.shape
            )
            model.assignments = rng.integers(-1, 10, size=model.n_exc)
            model.network.group("excitatory").theta[:] = rng.uniform(
                0.0, 0.5, size=model.n_exc
            )
            directory = save_artifact(model, tmp_path / f"model-{seed}")
            rebuilt = load_artifact(directory).build_model()
            np.testing.assert_array_equal(rebuilt.input_weights,
                                          model.input_weights)
            np.testing.assert_array_equal(rebuilt.assignments,
                                          model.assignments)
            np.testing.assert_array_equal(
                rebuilt.network.group("excitatory").theta,
                model.network.group("excitatory").theta,
            )


class TestValidation:
    def test_missing_directory_is_an_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="not a model artifact"):
            load_artifact(tmp_path / "nope")

    def test_newer_schema_version_is_rejected(self, artifact_dir, tmp_path):
        target = tmp_path / "future"
        target.mkdir()
        (target / "state.npz").write_bytes(
            (artifact_dir / "state.npz").read_bytes()
        )
        metadata = load_json(artifact_dir / "model.json")
        metadata["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1
        save_json(metadata, target / "model.json")
        with pytest.raises(ArtifactError, match="schema version"):
            load_artifact(target)

    def test_legacy_artifact_without_schema_version_loads(
            self, artifact_dir, trained_model, tmp_path):
        target = tmp_path / "legacy"
        target.mkdir()
        (target / "state.npz").write_bytes(
            (artifact_dir / "state.npz").read_bytes()
        )
        metadata = load_json(artifact_dir / "model.json")
        for key in ("schema_version", "format", "encoder"):
            metadata.pop(key, None)
        save_json(metadata, target / "model.json")
        legacy = load_artifact(target)
        assert legacy.schema_version == 1
        np.testing.assert_array_equal(
            legacy.build_model().input_weights, trained_model.input_weights
        )

    def test_mis_shaped_weights_name_expected_vs_found(
            self, artifact, artifact_dir, tmp_path):
        target = tmp_path / "corrupt"
        target.mkdir()
        (target / "model.json").write_bytes(
            (artifact_dir / "model.json").read_bytes()
        )
        save_arrays(
            {
                "input_weights": np.zeros((5, 4)),
                "assignments": artifact.arrays["assignments"],
            },
            target / "state.npz",
        )
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact(target)
        message = str(excinfo.value)
        assert "(5, 4)" in message  # found
        assert f"({artifact.n_input}, {artifact.n_exc})" in message  # expected
        assert "schema version" in message

    def test_missing_array_is_reported_by_name(self, artifact_dir, tmp_path):
        target = tmp_path / "missing"
        target.mkdir()
        (target / "model.json").write_bytes(
            (artifact_dir / "model.json").read_bytes()
        )
        save_arrays({"input_weights": np.zeros((196, 16))},
                    target / "state.npz")
        with pytest.raises(ArtifactError, match="assignments"):
            load_artifact(target)

    def test_load_state_rejects_shape_mismatch(self, artifact_dir,
                                               serving_config):
        other = SpikeDynModel(serving_config.with_network_size(8))
        with pytest.raises(ArtifactError, match="does not match"):
            other.load_state(artifact_dir)

    def test_load_state_rejects_encoder_relevant_config_drift(
            self, artifact_dir, serving_config):
        """Same sizes but different presentation window: the weights were
        trained at t_sim=40, so loading into a t_sim=60 model must fail
        loudly instead of silently degrading accuracy."""
        other = SpikeDynModel(serving_config.replace(t_sim=60.0))
        with pytest.raises(ArtifactError) as excinfo:
            other.load_state(artifact_dir)
        message = str(excinfo.value)
        assert "t_sim" in message
        assert "60.0" in message and "40.0" in message

    def test_load_state_tolerates_a_different_seed(self, artifact_dir,
                                                   serving_config,
                                                   trained_model):
        """Seed only controls stochastic draws; evaluating a saved model
        with a fresh seed is a legitimate, supported flow."""
        other = SpikeDynModel(serving_config.replace(seed=99))
        other.load_state(artifact_dir)
        np.testing.assert_array_equal(other.input_weights,
                                      trained_model.input_weights)

    def test_invalid_config_is_an_artifact_error(self, artifact_dir, tmp_path):
        target = tmp_path / "badconfig"
        target.mkdir()
        (target / "state.npz").write_bytes(
            (artifact_dir / "state.npz").read_bytes()
        )
        metadata = load_json(artifact_dir / "model.json")
        metadata["config"]["n_exc"] = -3
        save_json(metadata, target / "model.json")
        with pytest.raises(ArtifactError, match="invalid configuration"):
            load_artifact(target)

    def test_unknown_model_name_is_rejected_at_build(self, artifact_dir,
                                                     tmp_path):
        target = tmp_path / "unknown"
        target.mkdir()
        (target / "state.npz").write_bytes(
            (artifact_dir / "state.npz").read_bytes()
        )
        metadata = load_json(artifact_dir / "model.json")
        metadata["meta"]["name"] = "transformer"
        save_json(metadata, target / "model.json")
        loaded = load_artifact(target)
        with pytest.raises(ArtifactError, match="unknown model"):
            loaded.build_model()

    def test_metadata_without_meta_section_still_loads(
            self, artifact_dir, trained_model, serving_config, tmp_path):
        """A metadata file holding only 'config' is minimal but valid —
        both load paths must restore it (samples_trained defaults to 0)."""
        target = tmp_path / "bare"
        target.mkdir()
        (target / "state.npz").write_bytes(
            (artifact_dir / "state.npz").read_bytes()
        )
        metadata = load_json(artifact_dir / "model.json")
        save_json({"config": metadata["config"]}, target / "model.json")
        rebuilt = load_artifact(target).build_model()
        assert rebuilt.samples_trained == 0
        np.testing.assert_array_equal(rebuilt.input_weights,
                                      trained_model.input_weights)
        direct = SpikeDynModel(serving_config)
        direct.load_state(target)
        assert direct.samples_trained == 0

    def test_corrupt_metadata_json(self, artifact_dir, tmp_path):
        target = tmp_path / "nojson"
        target.mkdir()
        (target / "state.npz").write_bytes(
            (artifact_dir / "state.npz").read_bytes()
        )
        (target / "model.json").write_text(json.dumps({"meta": {}}),
                                           encoding="utf-8")
        with pytest.raises(ArtifactError, match="config"):
            load_artifact(target)


class TestRegistry:
    def test_publish_assigns_monotonic_versions(self, trained_model, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        first = registry.publish(trained_model, "demo")
        second = registry.publish(trained_model, "demo")
        assert first.name == "v0001"
        assert second.name == "v0002"
        assert registry.versions("demo") == [1, 2]
        assert registry.latest_version("demo") == 2

    def test_load_defaults_to_latest(self, trained_model, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.publish(trained_model, "demo")
        registry.publish(trained_model, "demo")
        assert registry.load("demo").path == registry.path_of("demo", 2)
        assert registry.load("demo", 1).path == registry.path_of("demo", 1)

    def test_default_name_is_the_model_name(self, trained_model, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        registry.publish(trained_model)
        assert registry.versions("spikedyn") == [1]

    def test_unknown_name_and_version_raise(self, trained_model, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ArtifactError, match="no artifact named"):
            registry.path_of("ghost")
        registry.publish(trained_model, "demo")
        with pytest.raises(ArtifactError, match="no version 9"):
            registry.path_of("demo", 9)

    def test_list_artifacts(self, trained_model, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        assert registry.list_artifacts() == []
        registry.publish(trained_model, "alpha")
        registry.publish(trained_model, "beta")
        registry.publish(trained_model, "beta")
        assert registry.list_artifacts() == [("alpha", [1]), ("beta", [1, 2])]

    def test_invalid_names_are_rejected(self, tmp_path):
        registry = ArtifactRegistry(tmp_path)
        with pytest.raises(ValueError, match="artifact names"):
            registry.versions("../escape")

"""ModelRouter unit tests against scripted stub pools.

The router is policy, not inference: these tests drive it with in-memory
stub pools whose ``predict`` follows a script (succeed, crash, overflow),
so LRU eviction, rate limiting, circuit breaking, and bounded retry are
each exercised deterministically and in milliseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.batcher import MicroBatcher, QueueClosedError, QueueFullError
from repro.serving.errors import (
    ApiError,
    CircuitOpenError,
    ModelNotFoundError,
    RateLimitedError,
    ShardCrashedError,
)
from repro.serving.inference import PredictResult
from repro.serving.router import ModelRouter, parse_version


def _result(prediction: int = 1) -> PredictResult:
    return PredictResult(prediction=prediction, seed=0, spike_count=1.0,
                         scores=np.zeros(10))


class StubPool:
    """Pool double: records calls, raises per a mutable script."""

    def __init__(self, name: str = "stub") -> None:
        self.name = name
        self.batcher = MicroBatcher(max_batch=4, max_wait_ms=1.0)
        self.script = []  # exceptions (or None for success), consumed FIFO
        self.calls = 0
        self.started = 0
        self.stopped = 0

    # lifecycle / introspection (the ReplicaPool surface the router uses)
    def start(self):
        self.started += 1
        return self

    def stop(self, timeout=10.0, cancel_pending=False):
        self.stopped += 1

    @property
    def running(self):
        return self.started > self.stopped

    n_input = 196
    model_name = "spikedyn"
    backend_name = "dense"
    workers = 1
    queue_depth = 0

    def predict(self, image, seed=None, timeout=None):
        self.calls += 1
        action = self.script.pop(0) if self.script else None
        if action is not None:
            raise action
        return _result()

    def metrics_snapshot(self):
        return {"requests_total": self.calls, "backend": "dense",
                "model": "spikedyn"}


@pytest.fixture
def pools():
    """Factory tracking every stub pool it built, keyed by artifact dir."""
    built = {}

    def factory(artifact_dir: str):
        pool = StubPool(artifact_dir)
        built.setdefault(artifact_dir, []).append(pool)
        return pool

    factory.built = built
    return factory


def make_router(factory, **kwargs):
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("retry_backoff_s", 0.0)
    kwargs.setdefault("sleep", lambda s: None)
    return ModelRouter(factory, **kwargs)


IMAGE = np.zeros(4)


class TestParseVersion:
    def test_accepted_spellings(self):
        assert parse_version("v3") == 3
        assert parse_version("v0003") == 3
        assert parse_version("3") == 3
        assert parse_version(7) == 7

    def test_rejections(self):
        for bad in ("", "vv3", "three", 0, -1, "v0"):
            with pytest.raises(ApiError) as excinfo:
                parse_version(bad)
            assert excinfo.value.status == 400


class TestModelTable:
    def test_pinned_model_serves(self, pools):
        router = make_router(pools)
        router.add_model("a", "dir-a")
        assert router.predict("a", IMAGE).prediction == 1
        assert router.default_model == "a"
        assert pools.built["dir-a"][0].started == 1

    def test_unknown_model_404s(self, pools):
        router = make_router(pools)
        with pytest.raises(ModelNotFoundError) as excinfo:
            router.predict("ghost", IMAGE)
        assert excinfo.value.status == 404

    def test_duplicate_pin_rejected(self, pools):
        router = make_router(pools)
        router.add_model("a", "dir-a")
        with pytest.raises(ValueError):
            router.add_model("a", "dir-a2")

    def test_stopped_router_rejects(self, pools):
        router = make_router(pools)
        router.add_model("a", "dir-a")
        router.stop()
        with pytest.raises(ApiError) as excinfo:
            router.predict("a", IMAGE)
        assert excinfo.value.status == 503
        assert pools.built["dir-a"][0].stopped == 1


class FakeRegistry:
    """ArtifactRegistry double over an in-memory {name: [versions]} table."""

    def __init__(self, table):
        self.table = dict(table)

    def versions(self, name):
        return sorted(self.table.get(name, []))

    def latest_version(self, name):
        versions = self.versions(name)
        return versions[-1] if versions else 0

    def path_of(self, name, version=None):
        from repro.serving.artifacts import ArtifactError

        if version is None:
            version = self.latest_version(name)
        if version == 0 or version not in self.versions(name):
            raise ArtifactError(f"no version {version} of {name!r}")
        return f"{name}/v{version:04d}"

    def list_artifacts(self):
        return sorted((name, self.versions(name)) for name in self.table)


class TestRegistryLRU:
    def test_lazy_load_and_latest_resolution(self, pools):
        registry = FakeRegistry({"m": [1, 2]})
        router = make_router(pools, registry=registry)
        router.predict("m", IMAGE)
        assert list(pools.built) == ["m/v0002"]  # latest wins
        router.predict("m", IMAGE, version="v1")
        assert "m/v0001" in pools.built

    def test_eviction_is_lru(self, pools):
        registry = FakeRegistry({"a": [1], "b": [1], "c": [1]})
        router = make_router(pools, registry=registry, max_models=2)
        router.predict("a", IMAGE)
        router.predict("b", IMAGE)
        router.predict("a", IMAGE)  # refresh a; b is now least recent
        router.predict("c", IMAGE)  # evicts b
        assert router.evictions_total == 1
        assert pools.built["b/v0001"][0].stopped == 1
        assert pools.built["a/v0001"][0].stopped == 0
        # a reload of b builds a fresh pool
        router.predict("b", IMAGE)
        assert len(pools.built["b/v0001"]) == 2

    def test_pinned_models_never_evicted(self, pools):
        registry = FakeRegistry({"a": [1], "b": [1]})
        router = make_router(pools, registry=registry, max_models=1)
        router.add_model("pinned", "dir-p")
        router.predict("a", IMAGE)
        router.predict("b", IMAGE)  # evicts a, not the pinned model
        assert pools.built["dir-p"][0].stopped == 0
        assert pools.built["a/v0001"][0].stopped == 1

    def test_unknown_version_404s(self, pools):
        registry = FakeRegistry({"m": [1]})
        router = make_router(pools, registry=registry)
        with pytest.raises(ModelNotFoundError):
            router.predict("m", IMAGE, version="v9")

    def test_registry_requires_factory(self):
        with pytest.raises(ValueError):
            ModelRouter(registry=FakeRegistry({}))

    def test_slow_load_does_not_block_other_models(self, pools):
        # Pool build/start runs outside the router lock: a cold registry
        # load of one model must not stall requests to resident models.
        import threading

        started_loading = threading.Event()
        release_loading = threading.Event()

        def slow_factory(artifact_dir: str):
            if artifact_dir.startswith("slow"):
                started_loading.set()
                assert release_loading.wait(timeout=5.0)
            return pools(artifact_dir)

        registry = FakeRegistry({"slow": [1]})
        router = make_router(slow_factory, registry=registry)
        router.add_model("fast", "dir-fast")
        loader = threading.Thread(
            target=lambda: router.predict("slow", IMAGE), daemon=True
        )
        loader.start()
        assert started_loading.wait(timeout=5.0)
        # The slow load is mid-flight and holds no router lock:
        assert router.predict("fast", IMAGE).prediction == 1
        assert router.health("fast")["status"] == "ok"
        release_loading.set()
        loader.join(timeout=5.0)
        assert not loader.is_alive()
        assert len(pools.built["slow/v0001"]) == 1

    def test_concurrent_loads_of_one_key_build_one_pool(self, pools):
        import threading

        block = threading.Event()

        def gated_factory(artifact_dir: str):
            assert block.wait(timeout=5.0)
            return pools(artifact_dir)

        registry = FakeRegistry({"m": [1]})
        router = make_router(gated_factory, registry=registry)
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(router.predict("m", IMAGE)),
                daemon=True,
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        block.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(results) == 4
        assert len(pools.built["m/v0001"]) == 1  # one loader, three waiters

    def test_failed_load_unwedges_waiters(self, pools):
        # A factory crash must clear the loading reservation so the next
        # request can retry instead of waiting forever.
        attempts = []

        def flaky_factory(artifact_dir: str):
            attempts.append(artifact_dir)
            if len(attempts) == 1:
                raise RuntimeError("artifact corrupt")
            return pools(artifact_dir)

        registry = FakeRegistry({"m": [1]})
        router = make_router(flaky_factory, registry=registry)
        with pytest.raises(RuntimeError):
            router.predict("m", IMAGE)
        assert router.predict("m", IMAGE).prediction == 1
        assert len(attempts) == 2

    def test_default_entry_serves_registry_model_and_404s_when_empty(
            self, pools):
        registry = FakeRegistry({"m": [1, 2]})
        router = make_router(pools, registry=registry)
        with pytest.raises(ModelNotFoundError) as excinfo:
            router.default_entry()
        assert excinfo.value.status == 404
        router.predict("m", IMAGE)
        assert router.default_entry().version == 2

    def test_list_models_merges_loaded_and_registry(self, pools):
        registry = FakeRegistry({"m": [1, 2]})
        router = make_router(pools, registry=registry)
        router.add_model("pinned", "dir-p")
        router.predict("m", IMAGE)
        catalogue = {record["name"]: record for record in router.list_models()}
        assert catalogue["pinned"]["pinned"] is True
        assert catalogue["m"]["registry_versions"] == [1, 2]
        assert catalogue["m"]["loaded_versions"] == [2]


class TestRateLimiting:
    def test_bucket_exhaustion_raises_429_with_retry_after(self, pools):
        router = make_router(pools, rate_rps=1.0, rate_burst=2)
        router.add_model("a", "dir-a")
        router.predict("a", IMAGE)
        router.predict("a", IMAGE)
        with pytest.raises(RateLimitedError) as excinfo:
            router.predict("a", IMAGE)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_header is not None
        assert router.entries()[0].rate_limited_total == 1

    def test_tenants_have_independent_buckets(self, pools):
        router = make_router(pools, rate_rps=1.0, rate_burst=1)
        router.add_model("a", "dir-a")
        router.predict("a", IMAGE, tenant="alice")
        with pytest.raises(RateLimitedError):
            router.predict("a", IMAGE, tenant="alice")
        router.predict("a", IMAGE, tenant="bob")  # unaffected

    def test_models_have_independent_buckets(self, pools):
        router = make_router(pools, rate_rps=1.0, rate_burst=1)
        router.add_model("a", "dir-a")
        router.add_model("b", "dir-b")
        router.predict("a", IMAGE)
        router.predict("b", IMAGE)

    def test_no_rate_limit_by_default(self, pools):
        router = make_router(pools)
        router.add_model("a", "dir-a")
        for _ in range(50):
            router.predict("a", IMAGE)


class TestRetryAndBreaker:
    def test_transient_crash_is_retried_transparently(self, pools):
        router = make_router(pools)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [ShardCrashedError("shard 0 died"), None]
        assert router.predict("a", IMAGE).prediction == 1
        assert pool.calls == 2
        assert router.entries()[0].retries_total == 1

    def test_retries_are_bounded(self, pools):
        router = make_router(pools, retries=2)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [ShardCrashedError("dead")] * 3
        with pytest.raises(ApiError) as excinfo:
            router.predict("a", IMAGE)
        assert excinfo.value.status == 503
        assert excinfo.value.code == "upstream_failure"
        assert pool.calls == 3  # 1 + 2 retries

    def test_backoff_grows_and_jitters(self, pools):
        sleeps = []
        router = make_router(pools, retries=3, retry_backoff_s=0.1,
                             sleep=sleeps.append)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [ShardCrashedError("dead")] * 3 + [None]
        router.predict("a", IMAGE)
        assert len(sleeps) == 3
        for index, slept in enumerate(sleeps):
            base = 0.1 * (2 ** index)
            assert 0.5 * base <= slept < 1.5 * base

    def test_repeated_crashes_open_the_breaker(self, pools):
        router = make_router(pools, retries=0, breaker_failures=3)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [ShardCrashedError("dead")] * 3
        for _ in range(3):
            with pytest.raises(ApiError):
                router.predict("a", IMAGE)
        with pytest.raises(CircuitOpenError) as excinfo:
            router.predict("a", IMAGE)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after_header is not None
        assert pool.calls == 3  # the shed request never reached the pool
        assert router.entries()[0].shed_total == 1
        assert router.health("a")["status"] == "shedding"

    def test_queue_full_is_429_not_a_breaker_failure(self, pools):
        router = make_router(pools, retries=0, breaker_failures=2)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [QueueFullError("queue full")] * 5
        for _ in range(5):
            with pytest.raises(ApiError) as excinfo:
                router.predict("a", IMAGE)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "queue_full"
        # backpressure never opened the breaker
        assert router.entries()[0].breaker.state_name == "closed"

    def test_queue_closed_on_live_router_is_retryable(self, pools):
        # The model's queue closing while the router is up means the model
        # was evicted/stopped, not that the server is going down: clients
        # should retry, not disconnect.
        router = make_router(pools)
        router.add_model("a", "dir-a")
        pools.built["dir-a"][0].script = [QueueClosedError("closed")]
        with pytest.raises(ApiError) as excinfo:
            router.predict("a", IMAGE)
        assert excinfo.value.code == "upstream_failure"
        assert excinfo.value.retry_after_header is not None

    def test_cancelled_on_live_router_is_retryable(self, pools):
        from concurrent.futures import CancelledError

        router = make_router(pools)
        router.add_model("a", "dir-a")
        pools.built["dir-a"][0].script = [CancelledError()]
        with pytest.raises(ApiError) as excinfo:
            router.predict("a", IMAGE)
        assert excinfo.value.code == "upstream_failure"

    def test_no_verdict_outcomes_release_the_half_open_probe(self, pools):
        # Regression: a half-open probe that ends in an outcome saying
        # nothing about model health (bad input, backpressure) must free
        # its slot, or the breaker sheds 100% of traffic forever.
        router = make_router(pools, retries=0, breaker_failures=1,
                             breaker_reset_s=0.01)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [ShardCrashedError("dead")]
        with pytest.raises(ApiError):
            router.predict("a", IMAGE)  # opens the breaker
        import time as _time

        for no_verdict in (ValueError("bad image"), QueueFullError("full")):
            _time.sleep(0.05)  # past reset_s: next request is the probe
            pool.script = [no_verdict]
            with pytest.raises((ValueError, ApiError)):
                router.predict("a", IMAGE)
        _time.sleep(0.05)
        assert router.predict("a", IMAGE).prediction == 1  # probe succeeds
        assert router.entries()[0].breaker.state_name == "closed"

    def test_model_runtime_error_counts_and_503s(self, pools):
        router = make_router(pools, breaker_failures=2)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [RuntimeError("inference exploded")] * 2
        for _ in range(2):
            with pytest.raises(ApiError) as excinfo:
                router.predict("a", IMAGE)
            assert excinfo.value.code == "upstream_failure"
        assert router.entries()[0].breaker.state_name == "open"

    def test_validation_errors_propagate_untouched(self, pools):
        router = make_router(pools)
        router.add_model("a", "dir-a")
        pools.built["dir-a"][0].script = [ValueError("bad image")]
        with pytest.raises(ValueError):
            router.predict("a", IMAGE)

    def test_breaker_disabled(self, pools):
        router = make_router(pools, retries=0, breaker_failures=None)
        router.add_model("a", "dir-a")
        pool = pools.built["dir-a"][0]
        pool.script = [ShardCrashedError("dead")] * 10
        for _ in range(10):
            with pytest.raises(ApiError):
                router.predict("a", IMAGE)
        assert pool.calls == 10  # nothing ever shed


class TestHealthAndMetrics:
    def test_health_of_resident_model(self, pools):
        router = make_router(pools)
        router.add_model("a", "dir-a")
        health = router.health("a")
        assert health["status"] == "ok"
        assert health["pinned"] is True
        assert health["workers"] == 1
        assert "circuit" in health

    def test_health_of_unloaded_registry_model(self, pools):
        router = make_router(pools, registry=FakeRegistry({"m": [1]}))
        assert router.health("m")["status"] == "unloaded"
        with pytest.raises(ModelNotFoundError):
            router.health("ghost")

    def test_metrics_snapshots_keyed_and_annotated(self, pools):
        registry = FakeRegistry({"m": [2]})
        router = make_router(pools, registry=registry)
        router.add_model("a", "dir-a")
        router.predict("m", IMAGE)
        snapshots = router.metrics_snapshots()
        assert set(snapshots) == {"a", "m@v0002"}
        assert snapshots["a"]["rate_limited_total"] == 0
        assert "circuit" in snapshots["a"]

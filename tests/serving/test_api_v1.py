"""End-to-end tests of the versioned ``/v1`` HTTP API.

One module-scoped server fronts two genuinely different models — the shared
``spikedyn`` artifact pinned at boot, plus a ``digits`` model published to an
:class:`ArtifactRegistry` in two versions with permuted label assignments, so
routing mistakes change predictions instead of passing silently.  Rate
limiting and shard-crash recovery each get their own small server because
they need conflicting pool/limit configurations.
"""

from __future__ import annotations

import json
import os
import signal
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.client import (
    ClientInvalidRequestError,
    ClientNotFoundError,
    ClientRateLimitedError,
    ServingClient,
)
from repro.models.base import N_CLASSES
from repro.observability.prometheus import parse_prometheus_text
from repro.serving import load_artifact
from repro.serving.artifacts import ArtifactRegistry
from repro.serving.inference import offline_predictions
from repro.serving.pool import ReplicaPool
from repro.serving.router import ModelRouter
from repro.serving.server import ModelServer
from repro.serving.shards import ShardProcessPool


def _shifted_model(artifact, shift: int):
    """A copy of the artifact's model with class labels rotated by ``shift``.

    Rotating the neuron->class assignments permutes every prediction by the
    same rotation, so each version answers differently from the others and
    from the original — ideal for proving requests reach the right model."""
    model = artifact.build_model()
    model.assignments = np.where(
        model.assignments >= 0,
        (model.assignments + shift) % N_CLASSES,
        model.assignments,
    )
    return model


@pytest.fixture(scope="module")
def registry(tmp_path_factory, artifact):
    root = tmp_path_factory.mktemp("registry")
    store = ArtifactRegistry(root)
    store.publish(_shifted_model(artifact, 1), "digits")  # v1
    store.publish(_shifted_model(artifact, 2), "digits")  # v2
    return store


@pytest.fixture(scope="module")
def api_server(artifact_dir, registry):
    def pool_factory(directory):
        return ReplicaPool.from_artifact(load_artifact(directory),
                                         workers=1, max_batch=4,
                                         max_wait_ms=2.0)

    router = ModelRouter(pool_factory, registry=registry)
    router.add_model("spikedyn", artifact_dir)
    server = ModelServer(router, port=0)
    server.start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def client(api_server):
    return ServingClient(api_server.url, retries=0)


def _raw(url: str, path: str, payload=None):
    """One raw HTTP round-trip returning ``(status, headers, body_dict)``."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + path, data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, dict(response.headers),
                    json.loads(response.read().decode("utf-8")))
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8")
        return error.code, dict(error.headers), json.loads(body)


class TestMultiTenantRouting:
    def test_each_model_matches_its_offline_twin(
            self, client, artifact, trained_model,
            request_images, request_seeds):
        for model_name, reference in (
                ("spikedyn", trained_model),
                ("digits", _shifted_model(artifact, 2)),  # latest = v2
        ):
            served = np.array([
                client.predict(image, seed=seed, model=model_name)["prediction"]
                for image, seed in zip(request_images, request_seeds)
            ])
            offline = offline_predictions(reference, request_images,
                                          request_seeds)
            np.testing.assert_array_equal(served, offline, err_msg=model_name)

    def test_version_route_pins_the_version(self, client, artifact,
                                            request_images, request_seeds):
        v1 = _shifted_model(artifact, 1)
        served = np.array([
            client.predict(image, seed=seed, model="digits", version=1)
            ["prediction"]
            for image, seed in zip(request_images, request_seeds)
        ])
        np.testing.assert_array_equal(
            served, offline_predictions(v1, request_images, request_seeds)
        )

    def test_v1_bodies_carry_model_and_version(self, client, request_images):
        body = client.predict(request_images[0], seed=0, model="digits",
                              version=1)
        assert body["model"] == "digits"
        assert body["version"] == "v0001"
        latest = client.predict(request_images[0], seed=0, model="digits")
        assert latest["version"] == "v0002"
        pinned = client.predict(request_images[0], seed=0, model="spikedyn")
        assert pinned["version"] is None

    def test_list_models_catalogue(self, client):
        catalogue = {record["name"]: record for record in client.models()}
        assert catalogue["spikedyn"]["pinned"] is True
        assert catalogue["digits"]["registry_versions"] == [1, 2]

    def test_per_model_healthz(self, client):
        health = client.health("digits")
        assert health["status"] == "ok"
        assert health["circuit"]["state"] == "closed"

    def test_v1_metrics_labelled_per_model(self, api_server, client):
        client.predict(np.zeros(196), seed=0, model="spikedyn")
        status, _, _ = _raw(api_server.url, "/v1/models/spikedyn/healthz")
        assert status == 200
        text = client.metrics_text()
        series = parse_prometheus_text(text)
        requests_total = series["repro_serving_requests_total"]
        labels = {dict(key)["model"] for key in requests_total}
        assert "spikedyn" in labels
        assert any(label.startswith("digits@") for label in labels)
        snapshots = client.metrics_json()["models"]
        assert "spikedyn" in snapshots


class TestLegacyAliases:
    """The pre-1.7 endpoints answer bit-identically, flagged as deprecated."""

    def test_predict_alias_equals_v1_on_the_default_model(
            self, api_server, request_images, request_seeds):
        payload = {"image": list(request_images[0].ravel()),
                   "seed": int(request_seeds[0])}
        legacy_status, legacy_headers, legacy_body = _raw(
            api_server.url, "/predict", payload)
        v1_status, v1_headers, v1_body = _raw(
            api_server.url, "/v1/models/spikedyn/predict", payload)
        assert legacy_status == v1_status == 200
        assert legacy_headers["Deprecation"] == "true"
        assert "successor-version" in legacy_headers["Link"]
        assert "/v1/models/" in legacy_headers["Link"]
        assert "Deprecation" not in v1_headers
        # identical prediction payload; /v1 adds routing fields on top of the
        # legacy body (whose "model" is the model class, as in 1.6)
        assert legacy_body["prediction"] == v1_body["prediction"]
        assert legacy_body["seed"] == v1_body["seed"]
        assert legacy_body["spike_count"] == v1_body["spike_count"]
        assert legacy_body["scores"] == v1_body["scores"]
        assert legacy_body["model"] == "spikedyn"
        assert v1_body["model"] == "spikedyn"

    def test_healthz_alias_keeps_the_v1_6_shape(self, api_server):
        status, headers, body = _raw(api_server.url, "/healthz")
        assert status == 200
        assert headers["Deprecation"] == "true"
        assert body["status"] == "ok"
        assert body["model"] == "spikedyn"
        assert set(body) == {"status", "model", "n_input", "workers",
                             "queue_depth", "max_batch", "max_wait_ms"}

    def test_metrics_aliases_render_the_default_model(self, api_server):
        status, headers, _ = _raw(api_server.url, "/metrics.json")
        assert status == 200
        assert headers["Deprecation"] == "true"
        with urllib.request.urlopen(api_server.url + "/metrics",
                                    timeout=30) as response:
            assert response.headers["Deprecation"] == "true"
            text = response.read().decode("utf-8")
        series = parse_prometheus_text(text)
        # single-model legacy rendering: samples are unlabelled, as in 1.6
        assert () in dict(series["repro_serving_requests_total"]) or \
            [()] == [key for key in series["repro_serving_requests_total"]]


class TestErrorEnvelope:
    def test_unknown_model_404(self, api_server, client):
        status, _, body = _raw(api_server.url, "/v1/models/ghost/predict",
                               {"image": [0.0] * 196})
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert set(body["error"]) == {"code", "message", "detail"}
        with pytest.raises(ClientNotFoundError):
            client.predict(np.zeros(196), model="ghost")

    def test_unknown_version_404(self, api_server):
        status, _, body = _raw(
            api_server.url, "/v1/models/digits/versions/v9/predict",
            {"image": [0.0] * 196})
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unknown_route_404(self, api_server):
        status, _, body = _raw(api_server.url, "/v2/anything")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_bad_json_400(self, api_server):
        request = urllib.request.Request(
            api_server.url + "/v1/models/spikedyn/predict",
            data=b"{nope", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert excinfo.value.code == 400
        assert body["error"]["code"] == "invalid_request"

    def test_wrong_pixel_count_400_typed(self, client):
        with pytest.raises(ClientInvalidRequestError) as excinfo:
            client.predict(np.zeros(3), model="spikedyn")
        assert excinfo.value.status == 400
        assert "pixels" in excinfo.value.message

    def test_oversized_body_413(self, api_server):
        """The server answers 413 from Content-Length without reading the
        body, so it may close the socket while the client is still sending —
        a raw socket tolerates that where urllib raises EPIPE."""
        import socket

        payload = json.dumps({"image": [0.0] * 196,
                              "padding": "x" * (5 * 1024 * 1024)}).encode()
        host, port = api_server.address
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(
                b"POST /v1/models/spikedyn/predict HTTP/1.1\r\n"
                b"Host: %b\r\nContent-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n" % (host.encode(), len(payload))
            )
            try:
                sock.sendall(payload)
            except OSError:
                pass  # server already rejected and closed its read side
            raw = b""
            while b"\r\n\r\n" not in raw:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
            head, _, rest = raw.partition(b"\r\n\r\n")
            while True:
                try:
                    chunk = sock.recv(65536)
                except OSError:
                    break
                if not chunk:
                    break
                rest += chunk
        assert b" 413 " in head.split(b"\r\n", 1)[0]
        body = json.loads(rest.decode("utf-8"))
        assert body["error"]["code"] == "payload_too_large"
        assert body["error"]["detail"]["max_bytes"] == 4 * 1024 * 1024


class TestRateLimitOverHTTP:
    @pytest.fixture()
    def limited_server(self, artifact_dir):
        def pool_factory(directory):
            return ReplicaPool.from_artifact(load_artifact(directory),
                                             workers=1, max_batch=4)

        router = ModelRouter(pool_factory, rate_rps=0.001, rate_burst=2)
        router.add_model("spikedyn", artifact_dir)
        server = ModelServer(router, port=0).start()
        yield server
        server.stop()

    def test_burst_exhaustion_is_429_with_retry_after(self, limited_server,
                                                      request_images):
        client = ServingClient(limited_server.url, retries=0)
        image = request_images[0]
        client.predict(image, seed=0, model="spikedyn")
        client.predict(image, seed=0, model="spikedyn")
        status, headers, body = _raw(
            limited_server.url, "/v1/models/spikedyn/predict",
            {"image": list(image.ravel()), "seed": 0})
        assert status == 429
        assert body["error"]["code"] == "rate_limited"
        assert int(headers["Retry-After"]) >= 1
        with pytest.raises(ClientRateLimitedError) as excinfo:
            client.predict(image, seed=0, model="spikedyn")
        assert excinfo.value.retry_after_s is not None
        # an unthrottled tenant is unaffected
        other = ServingClient(limited_server.url, retries=0, tenant="burst-2")
        assert "prediction" in other.predict(image, seed=0, model="spikedyn")

    def test_health_reports_shedding_while_limited(self, limited_server,
                                                   request_images):
        client = ServingClient(limited_server.url, retries=0,
                               tenant="health-probe")
        for _ in range(2):
            client.predict(request_images[0], seed=0, model="spikedyn")
        # rate limiting is backpressure, not an outage: health stays ok
        assert client.health("spikedyn")["status"] == "ok"


class TestShardCrashOverHTTP:
    def test_no_5xx_after_recovery(self, artifact_dir, trained_model,
                                   request_images, request_seeds):
        """Kill the only shard process, then keep serving over HTTP.

        The dispatcher respawns the worker and transparently retries the
        interrupted batch, so the client sees only 200s — before, during,
        and after the crash."""
        pool = ShardProcessPool(artifact_dir, shards=1, max_batch=4,
                                max_wait_ms=2.0)
        server = ModelServer(pool, port=0).start()
        try:
            client = ServingClient(server.url, retries=0)
            warm = client.predict(request_images[0], seed=request_seeds[0],
                                  model="spikedyn")
            assert "prediction" in warm

            pid = pool.shard_pids()[0]
            os.kill(pid, signal.SIGKILL)

            served = np.array([
                client.predict(image, seed=seed, model="spikedyn")["prediction"]
                for image, seed in zip(request_images[:6], request_seeds[:6])
            ])
            np.testing.assert_array_equal(
                served,
                offline_predictions(trained_model, request_images[:6],
                                    request_seeds[:6]),
            )
            assert pool.respawns_total == 1
            health = client.health("spikedyn")
            assert health["status"] == "ok"
            assert health["shard_pids"] == pool.shard_pids()
            assert health["shard_pids"][0] != pid
        finally:
            server.stop()

"""Unit tests for the hardening primitives: token bucket, circuit breaker.

Both state machines take an injectable clock, so every transition is tested
deterministically — no sleeps, no wall-clock flakiness.
"""

from __future__ import annotations

import pytest

from repro.serving.ratelimit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == \
            [True, True, True, False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2 tokens/s * 0.5 s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.state()["tokens"] == 2.0

    def test_retry_after_names_the_refill_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.retry_after() == 0.0
        assert bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.25)

    def test_default_burst_is_rate(self):
        bucket = TokenBucket(rate=5.0, clock=FakeClock())
        assert bucket.burst == 5.0
        assert TokenBucket(rate=0.5, clock=FakeClock()).burst == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("window_s", 10.0)
        kwargs.setdefault("reset_s", 5.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_closed_allows_everything(self):
        breaker = self.make(FakeClock())
        assert breaker.state_name == CLOSED
        assert all(breaker.allow() for _ in range(100))

    def test_opens_at_threshold(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state_name == CLOSED
        breaker.record_failure()
        assert breaker.state_name == OPEN
        assert not breaker.allow()
        assert breaker.state()["opened_total"] == 1

    def test_failures_outside_window_are_forgotten(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # past window_s
        breaker.record_failure()
        assert breaker.state_name == CLOSED

    def test_open_sheds_until_reset_then_half_opens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(5.1)
        assert breaker.allow()  # the probe
        assert breaker.state_name == HALF_OPEN
        assert not breaker.allow()  # only half_open_max probes admitted

    def test_half_open_success_closes_and_clears(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state_name == CLOSED
        assert breaker.state()["recent_failures"] == 0
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state_name == OPEN
        assert breaker.state()["opened_total"] == 2
        assert not breaker.allow()
        clock.advance(5.1)
        assert breaker.allow()  # probes again after another reset_s

    def test_release_probe_frees_the_half_open_slot(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.1)
        assert breaker.allow()  # takes the probe slot
        assert not breaker.allow()
        breaker.release_probe()  # probe ended with no verdict
        assert breaker.state_name == HALF_OPEN
        assert breaker.allow()  # slot is free again
        breaker.record_success()
        assert breaker.state_name == CLOSED

    def test_release_probe_outside_half_open_is_a_no_op(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.release_probe()
        assert breaker.state_name == CLOSED
        assert breaker.allow()
        for _ in range(3):
            breaker.record_failure()
        breaker.release_probe()
        assert breaker.state_name == OPEN
        assert not breaker.allow()

    def test_success_in_closed_state_is_a_no_op(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_success()
        assert breaker.state()["recent_failures"] == 1

    def test_retry_after_zero_when_not_open(self):
        breaker = self.make(FakeClock())
        assert breaker.retry_after() == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(window_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_s=-1.0)

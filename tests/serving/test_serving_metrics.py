"""ServingMetrics unit tests: percentile edge cases and thread safety.

The snapshot latency section regressed historically at degenerate window
sizes (``np.percentile`` of an empty array is NaN); these tests pin the
contract at windows of 0, 1, and exactly ``latency_window`` samples, and
hammer ``record_batch`` from many threads to prove the snapshot never
observes a half-updated window.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.serving.metrics import LATENCY_QUANTILES, ServingMetrics

QUANTILE_KEYS = tuple(f"p{quantile}_ms" for quantile in LATENCY_QUANTILES)


class TestSnapshotWindowEdges:
    def test_empty_window_is_all_zeros_not_nan(self):
        metrics = ServingMetrics()
        latency = metrics.snapshot()["latency"]
        assert latency["window"] == 0.0
        for key in ("mean_ms", "max_ms") + QUANTILE_KEYS:
            assert latency[key] == 0.0
            assert not math.isnan(latency[key])

    def test_schema_is_stable_from_first_scrape(self):
        """Empty and loaded snapshots expose the same latency keys."""
        empty = set(ServingMetrics().snapshot()["latency"])
        loaded = ServingMetrics()
        loaded.record_batch(4, [0.001, 0.002, 0.003, 0.004])
        assert set(loaded.snapshot()["latency"]) == empty

    def test_single_sample_window_reports_that_sample_everywhere(self):
        metrics = ServingMetrics()
        metrics.record_batch(1, [0.0125])
        latency = metrics.snapshot()["latency"]
        assert latency["window"] == 1.0
        for key in ("mean_ms", "max_ms") + QUANTILE_KEYS:
            assert latency[key] == pytest.approx(12.5)

    def test_exactly_full_window(self):
        window = 64
        metrics = ServingMetrics(latency_window=window)
        samples = [0.001 * (index + 1) for index in range(window)]
        metrics.record_batch(window, samples)
        latency = metrics.snapshot()["latency"]
        assert latency["window"] == float(window)
        expected_ms = np.asarray(samples) * 1000.0
        assert latency["max_ms"] == pytest.approx(expected_ms.max())
        assert latency["mean_ms"] == pytest.approx(expected_ms.mean())
        for quantile in LATENCY_QUANTILES:
            assert latency[f"p{quantile}_ms"] == pytest.approx(
                float(np.percentile(expected_ms, quantile)))
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]

    def test_overfull_window_keeps_most_recent_samples(self):
        metrics = ServingMetrics(latency_window=8)
        metrics.record_batch(8, [10.0] * 8)  # old, should be evicted
        metrics.record_batch(8, [0.001] * 8)
        latency = metrics.snapshot()["latency"]
        assert latency["window"] == 8.0
        assert latency["max_ms"] == pytest.approx(1.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            ServingMetrics(latency_window=0)


class TestCounters:
    def test_batch_accounting(self):
        metrics = ServingMetrics()
        metrics.record_request()
        metrics.record_request()
        metrics.record_batch(2, [0.001, 0.002])
        metrics.record_rejected()
        metrics.record_errors(3)
        snapshot = metrics.snapshot(queue_depth=5)
        assert snapshot["requests_total"] == 2
        assert snapshot["responses_total"] == 2
        assert snapshot["rejected_total"] == 1
        assert snapshot["errors_total"] == 3
        assert snapshot["batches_total"] == 1
        assert snapshot["batch_size_histogram"] == {"2": 1}
        assert snapshot["mean_batch_size"] == pytest.approx(2.0)
        assert snapshot["queue_depth"] == 5

    def test_mean_batch_size_absent_before_first_batch(self):
        assert "mean_batch_size" not in ServingMetrics().snapshot()


class TestConcurrency:
    def test_concurrent_record_batch_hammer(self):
        """Many writer threads plus concurrent scrapes: totals must balance
        and no snapshot may ever contain NaN or a torn window."""
        metrics = ServingMetrics(latency_window=256)
        threads_n, batches_per_thread, batch_size = 8, 50, 4
        failures = []
        start = threading.Barrier(threads_n + 1)

        def writer():
            start.wait()
            for _ in range(batches_per_thread):
                metrics.record_request()
                metrics.record_batch(batch_size, [0.001] * batch_size)

        def scraper():
            start.wait()
            for _ in range(200):
                latency = metrics.snapshot()["latency"]
                if any(math.isnan(latency[key])
                       for key in ("mean_ms", "max_ms") + QUANTILE_KEYS):
                    failures.append("NaN in snapshot")
                if latency["window"] > 256:
                    failures.append("window exceeded maxlen")

        threads = [threading.Thread(target=writer) for _ in range(threads_n)]
        threads.append(threading.Thread(target=scraper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert failures == []
        snapshot = metrics.snapshot()
        expected = threads_n * batches_per_thread
        assert snapshot["batches_total"] == expected
        assert snapshot["requests_total"] == expected
        assert snapshot["responses_total"] == expected * batch_size
        assert snapshot["batch_size_histogram"] == {str(batch_size): expected}
        assert snapshot["latency"]["window"] == 256.0
        assert snapshot["latency"]["p50_ms"] == pytest.approx(1.0)

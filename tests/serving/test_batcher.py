"""Micro-batcher unit tests: coalescing, timeouts, backpressure, shutdown."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    MicroBatcher,
    PredictRequest,
    QueueClosedError,
    QueueFullError,
)


def _request(value: float = 0.0) -> PredictRequest:
    return PredictRequest(image=np.full(4, value), seed=0)


class TestCoalescing:
    def test_queued_requests_coalesce_into_one_batch(self):
        batcher = MicroBatcher(max_batch=8, max_wait_ms=50.0)
        futures = [batcher.submit(_request(i)) for i in range(5)]
        batch = batcher.next_batch(timeout=1.0)
        assert len(batch) == 5
        assert batcher.depth == 0
        assert all(not future.done() for future in futures)

    def test_batch_size_is_capped_at_max_batch(self):
        batcher = MicroBatcher(max_batch=3, max_wait_ms=0.0)
        for i in range(7):
            batcher.submit(_request(i))
        sizes = [len(batcher.next_batch(timeout=1.0)) for _ in range(3)]
        assert sizes == [3, 3, 1]

    def test_requests_are_served_in_fifo_order(self):
        batcher = MicroBatcher(max_batch=10, max_wait_ms=0.0)
        for i in range(4):
            batcher.submit(_request(float(i)))
        batch = batcher.next_batch(timeout=1.0)
        values = [pending.request.image[0] for pending in batch]
        assert values == [0.0, 1.0, 2.0, 3.0]

    def test_max_wait_absorbs_stragglers(self):
        batcher = MicroBatcher(max_batch=4, max_wait_ms=250.0)
        batcher.submit(_request(0))

        def straggler():
            time.sleep(0.05)
            batcher.submit(_request(1))

        thread = threading.Thread(target=straggler)
        thread.start()
        batch = batcher.next_batch(timeout=1.0)
        thread.join()
        assert len(batch) == 2

    def test_zero_wait_serves_the_first_request_alone(self):
        batcher = MicroBatcher(max_batch=4, max_wait_ms=0.0)
        batcher.submit(_request(0))
        batch = batcher.next_batch(timeout=1.0)
        assert len(batch) == 1


class TestTimeoutsAndBackpressure:
    def test_empty_queue_times_out_with_empty_list(self):
        batcher = MicroBatcher()
        started = time.perf_counter()
        assert batcher.next_batch(timeout=0.05) == []
        assert time.perf_counter() - started < 1.0

    def test_queue_full_raises_and_keeps_pending_intact(self):
        batcher = MicroBatcher(max_batch=4, max_queue=2)
        batcher.submit(_request(0))
        batcher.submit(_request(1))
        with pytest.raises(QueueFullError, match="full"):
            batcher.submit(_request(2))
        assert batcher.depth == 2
        assert len(batcher.next_batch(timeout=1.0)) == 2

    def test_depth_tracks_queue_occupancy(self):
        batcher = MicroBatcher(max_batch=2, max_wait_ms=0.0)
        assert batcher.depth == 0
        batcher.submit(_request())
        batcher.submit(_request())
        batcher.submit(_request())
        assert batcher.depth == 3
        batcher.next_batch(timeout=1.0)
        assert batcher.depth == 1


class TestShutdown:
    def test_submit_after_close_raises(self):
        batcher = MicroBatcher()
        batcher.close()
        with pytest.raises(QueueClosedError):
            batcher.submit(_request())

    def test_closed_and_drained_returns_none(self):
        batcher = MicroBatcher(max_batch=4, max_wait_ms=0.0)
        batcher.submit(_request())
        batcher.close()
        assert len(batcher.next_batch(timeout=1.0)) == 1  # drains
        assert batcher.next_batch(timeout=1.0) is None  # signals exit

    def test_close_wakes_a_blocked_consumer(self):
        batcher = MicroBatcher()
        result = {}

        def consumer():
            result["batch"] = batcher.next_batch(timeout=5.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        batcher.close()
        thread.join(2.0)
        assert not thread.is_alive()
        assert result["batch"] is None

    def test_cancel_pending_cancels_futures(self):
        batcher = MicroBatcher()
        futures = [batcher.submit(_request(i)) for i in range(3)]
        batcher.close(cancel_pending=True)
        assert all(future.cancelled() for future in futures)
        assert batcher.depth == 0
        assert batcher.next_batch(timeout=0.1) is None


class TestValidation:
    def test_knob_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_queue=0)

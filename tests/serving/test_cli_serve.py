"""CLI tests for ``repro serve`` (parser wiring and error paths)."""

from __future__ import annotations

import pytest

from repro.cli import _parse_model_spec, build_parser, main


class TestServeParser:
    def test_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "some/artifact"])
        assert args.artifacts == ["some/artifact"]
        assert args.registry is None
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 2
        assert args.shards == 0
        assert args.max_models == 4
        assert args.rate_rps is None
        assert args.breaker_failures == 5
        assert args.retries == 2
        assert args.max_batch == 32
        assert args.max_wait_ms == 5.0
        assert args.max_queue == 1024
        assert args.drift_window == 256
        assert args.backend is None  # use the backend recorded in the artifact
        assert not args.verbose

    def test_knobs_parse(self):
        parser = build_parser()
        args = parser.parse_args([
            "serve", "a", "b=path/to/b", "--port", "0", "--workers", "4",
            "--max-batch", "16", "--max-wait-ms", "2.5", "--max-queue", "64",
            "--drift-window", "32", "--drift-threshold", "2.0", "-v",
            "--shards", "2", "--registry", "reg", "--max-models", "2",
            "--rate-rps", "50", "--rate-burst", "100",
            "--breaker-failures", "3", "--breaker-window-s", "10",
            "--breaker-reset-s", "1", "--retries", "1",
            "--retry-backoff-s", "0.01",
        ])
        assert args.artifacts == ["a", "b=path/to/b"]
        assert args.port == 0
        assert args.workers == 4
        assert args.shards == 2
        assert args.registry == "reg"
        assert args.max_models == 2
        assert args.rate_rps == 50.0
        assert args.rate_burst == 100.0
        assert args.breaker_failures == 3
        assert args.breaker_window_s == 10.0
        assert args.breaker_reset_s == 1.0
        assert args.retries == 1
        assert args.retry_backoff_s == 0.01
        assert args.max_batch == 16
        assert args.max_wait_ms == 2.5
        assert args.max_queue == 64
        assert args.drift_window == 32
        assert args.drift_threshold == 2.0
        assert args.verbose

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "a", "--workers", "0"])

    def test_invalid_shards_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "a", "--shards", "-1"])

    def test_no_artifacts_and_no_registry_is_a_usage_error(self, capsys):
        exit_code = main(["serve", "--port", "0"])
        assert exit_code == 2
        assert "--registry" in capsys.readouterr().err


class TestModelSpecParsing:
    def test_explicit_name(self):
        assert _parse_model_spec("mnist=/data/art") == ("mnist", "/data/art")

    def test_registry_version_dir_uses_parent_name(self):
        assert _parse_model_spec("/reg/mnist/v0003") == \
            ("mnist", "/reg/mnist/v0003")

    def test_plain_dir_uses_basename(self):
        assert _parse_model_spec("/data/spikedyn") == \
            ("spikedyn", "/data/spikedyn")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            _parse_model_spec("=/data/art")


class TestServeHappyPath:
    def test_serve_boots_and_shuts_down_cleanly(self, artifact_dir, capsys,
                                                monkeypatch):
        """Cover the full serve path: load, bind, announce, drain, exit 0.

        ``serve_forever`` is patched to raise ``KeyboardInterrupt``
        immediately — exactly what Ctrl-C produces — so the command runs
        its whole lifecycle without blocking the test."""
        from repro.serving.server import ModelServer

        def interrupt(self):
            self.router.start()
            raise KeyboardInterrupt

        monkeypatch.setattr(ModelServer, "serve_forever", interrupt)
        exit_code = main(["serve", str(artifact_dir), "--port", "0",
                          "--workers", "1", "--max-batch", "4"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "serving spikedyn: spikedyn" in captured.out
        assert "listening on http://127.0.0.1:" in captured.out
        assert "backend=dense" in captured.out
        assert "POST /v1/models/<name>/predict" in captured.out
        assert "POST /predict" in captured.out  # deprecated alias announced
        assert "shutting down" in captured.err

    def test_serve_with_explicit_name_and_backend_override(
            self, artifact_dir, capsys, monkeypatch):
        from repro.serving.server import ModelServer

        def interrupt(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(ModelServer, "serve_forever", interrupt)
        exit_code = main(["serve", f"digits={artifact_dir}", "--port", "0",
                          "--workers", "1", "--backend", "sparse"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "serving digits: spikedyn" in out
        assert "backend=sparse" in out

    def test_serve_registry_only(self, artifact_dir, tmp_path, capsys,
                                 monkeypatch):
        """A server can start with zero pinned models and only a registry."""
        from repro.serving.server import ModelServer

        def interrupt(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(ModelServer, "serve_forever", interrupt)
        exit_code = main(["serve", "--registry", str(tmp_path / "reg"),
                          "--port", "0"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "registry:" in out
        assert "listening on" in out

    def test_serve_shards_announces_processes(self, artifact_dir, capsys,
                                              monkeypatch):
        from repro.serving.server import ModelServer

        def interrupt(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(ModelServer, "serve_forever", interrupt)
        exit_code = main(["serve", str(artifact_dir), "--port", "0",
                          "--shards", "1", "--max-batch", "4"])
        assert exit_code == 0
        assert "shards=1 processes" in capsys.readouterr().out


class TestServeErrors:
    def test_nonexistent_artifact_exits_1(self, tmp_path, capsys):
        exit_code = main(["serve", str(tmp_path / "ghost"), "--port", "0"])
        assert exit_code == 1
        assert "not a model artifact" in capsys.readouterr().err

    def test_unknown_model_name_exits_1(self, artifact_dir, tmp_path, capsys):
        """ArtifactError raised while building replicas (not just while
        loading) must also take the clean error path."""
        from repro.utils.serialization import load_json, save_json

        target = tmp_path / "unknown-model"
        target.mkdir()
        (target / "state.npz").write_bytes(
            (artifact_dir / "state.npz").read_bytes()
        )
        metadata = load_json(artifact_dir / "model.json")
        metadata["meta"]["name"] = "transformer"
        save_json(metadata, target / "model.json")
        exit_code = main(["serve", str(target), "--port", "0"])
        assert exit_code == 1
        assert "unknown model" in capsys.readouterr().err

    def test_corrupt_artifact_exits_1(self, tmp_path, capsys):
        directory = tmp_path / "broken"
        directory.mkdir()
        (directory / "model.json").write_text("{}", encoding="utf-8")
        (directory / "state.npz").write_bytes(b"not an npz")
        exit_code = main(["serve", str(directory), "--port", "0"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_empty_model_name_exits_1(self, artifact_dir, capsys):
        exit_code = main(["serve", f"={artifact_dir}", "--port", "0"])
        assert exit_code == 1
        assert "empty model name" in capsys.readouterr().err

"""Load-generator tests against an in-process pool target."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import ReplicaPool, pool_sender, run_load


@pytest.fixture
def pool(artifact):
    pool = ReplicaPool.from_artifact(artifact, workers=1, max_batch=8,
                                     max_wait_ms=2.0, max_queue=256)
    with pool:
        yield pool


class TestRunLoad:
    def test_report_accounts_for_every_request(self, pool, request_images,
                                               request_seeds):
        report = run_load(pool_sender(pool), request_images, request_seeds,
                          concurrency=4)
        assert report.n_requests == len(request_images)
        assert report.ok == len(request_images)
        assert report.errors == []
        assert (report.predictions >= 0).all()
        assert report.latencies_s.size == len(request_images)
        assert report.throughput_rps > 0
        assert report.latency_quantile_ms(50) <= report.latency_quantile_ms(99)

    def test_summary_is_json_safe(self, pool, request_images, request_seeds):
        import json

        report = run_load(pool_sender(pool), request_images, request_seeds,
                          concurrency=2)
        summary = json.loads(json.dumps(report.summary()))
        assert summary["requests"] == len(request_images)
        assert summary["errors"] == 0
        assert summary["concurrency"] == 2

    def test_predictions_line_up_with_request_indices(self, pool,
                                                      request_images,
                                                      request_seeds):
        sequential = run_load(pool_sender(pool), request_images,
                              request_seeds, concurrency=1)
        concurrent = run_load(pool_sender(pool), request_images,
                              request_seeds, concurrency=8)
        np.testing.assert_array_equal(sequential.predictions,
                                      concurrent.predictions)

    def test_sender_errors_are_recorded_per_request(self, request_images):
        def flaky(image, seed):
            if seed is not None and seed % 2:
                raise RuntimeError("boom")
            return 0

        report = run_load(flaky, request_images,
                          list(range(len(request_images))), concurrency=3)
        odd = len(request_images) // 2
        assert len(report.errors) == odd
        assert all("boom" in message for _, message in report.errors)
        assert report.ok == len(request_images) - odd

    def test_empty_request_list_raises(self, pool):
        with pytest.raises(ValueError, match="at least one"):
            run_load(pool_sender(pool), [])

    def test_seed_count_mismatch_raises(self, pool, request_images):
        with pytest.raises(ValueError, match="seeds"):
            run_load(pool_sender(pool), request_images, [1])

"""ShardProcessPool integration tests: bit-equivalence and crash recovery.

Spawning a shard costs a full interpreter start plus an artifact load, so
the suite runs one shared two-shard pool for the happy-path and crash tests
and keeps every request batch small.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.observability.ledger import KIND_SERVING_SHARD, RunLedger
from repro.serving.artifacts import ArtifactError
from repro.serving.inference import offline_predictions
from repro.serving.shards import ShardProcessPool


@pytest.fixture(scope="module")
def ledger_path(tmp_path_factory):
    return tmp_path_factory.mktemp("ledger") / "ledger.jsonl"


@pytest.fixture(scope="module")
def shard_pool(artifact_dir, ledger_path):
    pool = ShardProcessPool(
        artifact_dir, shards=2, max_batch=4, max_wait_ms=2.0,
        ledger=RunLedger(ledger_path),
    )
    pool.start()
    yield pool
    pool.stop(cancel_pending=True)


def _served(pool, images, seeds):
    futures = [pool.submit(image, seed=seed)
               for image, seed in zip(images, seeds)]
    return np.array([future.result(timeout=120.0).prediction
                     for future in futures])


class TestBitEquivalence:
    def test_matches_offline_reference(self, shard_pool, trained_model,
                                       request_images, request_seeds):
        served = _served(shard_pool, request_images, request_seeds)
        offline = offline_predictions(trained_model, request_images,
                                      request_seeds)
        np.testing.assert_array_equal(served, offline)

    def test_full_results_are_deterministic(self, shard_pool, request_images,
                                            request_seeds):
        first = shard_pool.predict(request_images[0], seed=request_seeds[0],
                                   timeout=120.0)
        second = shard_pool.predict(request_images[0], seed=request_seeds[0],
                                    timeout=120.0)
        assert first.prediction == second.prediction
        assert first.spike_count == second.spike_count
        np.testing.assert_array_equal(first.scores, second.scores)


class TestCrashRecovery:
    def test_killed_shard_is_respawned_and_serving_continues(
            self, shard_pool, trained_model, request_images, request_seeds):
        """SIGKILL one worker, then demand bit-identical answers.

        The interrupted batch is retried transparently on the respawned
        process, so no caller observes the crash at all."""
        pids_before = shard_pool.shard_pids()
        assert all(pid is not None for pid in pids_before)
        respawns_before = shard_pool.respawns_total

        os.kill(pids_before[0], signal.SIGKILL)

        served = _served(shard_pool, request_images, request_seeds)
        offline = offline_predictions(trained_model, request_images,
                                      request_seeds)
        np.testing.assert_array_equal(served, offline)

        assert shard_pool.respawns_total == respawns_before + 1
        pids_after = shard_pool.shard_pids()
        assert all(pid is not None for pid in pids_after)
        assert pids_after[0] != pids_before[0]

    def test_ledger_recorded_the_churn(self, shard_pool, ledger_path):
        """Runs after the kill test: spawn/crash/respawn must be on disk."""
        entries = list(RunLedger(ledger_path).entries(kind=KIND_SERVING_SHARD))
        events = [entry["event"] for entry in entries]
        assert events.count("spawned") >= 3  # 2 initial + >=1 respawn
        assert "crashed" in events
        assert "respawned" in events
        assert all("shard" in entry and "model" in entry for entry in entries)

    def test_metrics_snapshot_reports_shard_state(self, shard_pool):
        snapshot = shard_pool.metrics_snapshot()
        shards = snapshot["shards"]
        assert shards["count"] == 2
        assert shards["alive"] == 2
        assert shards["respawns_total"] >= 1
        assert sum(shards["batches_by_shard"].values()) > 0
        assert snapshot["model"] == "spikedyn"
        assert snapshot["backend"] == "dense"


class TestPoolContract:
    """ReplicaPool API parity, checked without extra spawns where possible."""

    def test_introspection_mirrors_replica_pool(self, shard_pool,
                                                serving_config):
        assert shard_pool.n_input == serving_config.n_input
        assert shard_pool.model_name == "spikedyn"
        assert shard_pool.workers == shard_pool.shards == 2
        assert shard_pool.running
        assert shard_pool.queue_depth >= 0
        assert shard_pool.batcher.max_batch == 4

    def test_submit_validates_before_crossing_the_pipe(self, shard_pool):
        with pytest.raises(ValueError, match="pixels"):
            shard_pool.submit(np.zeros(3))
        with pytest.raises(ValueError, match="non-negative"):
            shard_pool.submit(np.full(shard_pool.n_input, -1.0))

    def test_broken_artifact_fails_fast_in_the_parent(self, tmp_path):
        with pytest.raises(ArtifactError):
            ShardProcessPool(tmp_path / "ghost", shards=1)

    def test_stopped_pool_cannot_restart(self, artifact_dir):
        pool = ShardProcessPool(artifact_dir, shards=1, max_batch=2)
        pool.stop(cancel_pending=True)  # never started: close is still legal
        with pytest.raises(RuntimeError, match="cannot be restarted"):
            pool.start()

    def test_from_artifact_uses_the_artifact_path(self, artifact):
        pool = ShardProcessPool.from_artifact(artifact, shards=1)
        assert pool.artifact_dir == str(artifact.path)
        assert not pool.running

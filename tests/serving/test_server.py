"""HTTP server tests: the end-to-end hammer plus protocol error paths."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.observability import parse_prometheus_text
from repro.observability.prometheus import PROMETHEUS_CONTENT_TYPE
from repro.serving import (
    ModelServer,
    ReplicaPool,
    SpikeCountDriftDetector,
    fetch_json,
    fetch_text,
    http_sender,
    offline_predictions,
    run_load,
)


@pytest.fixture
def server(artifact):
    pool = ReplicaPool.from_artifact(
        artifact, workers=2, max_batch=8, max_wait_ms=5.0, max_queue=256,
        drift_detector=SpikeCountDriftDetector(window=8),
    )
    with ModelServer(pool, port=0) as server:
        yield server


def _post(url: str, payload: object, raw: bytes = None) -> tuple:
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url + "/predict", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


@pytest.mark.integration
class TestEndToEnd:
    def test_sixteen_thread_hammer_matches_offline(self, server, artifact,
                                                   request_images,
                                                   request_seeds):
        """Boot on an ephemeral port, hammer from 16 threads, and require
        every response to be valid and bit-identical to the offline path."""
        images = request_images * 4  # 48 requests
        seeds = [seed + 1000 * repeat
                 for repeat in range(4) for seed in request_seeds]
        reference = offline_predictions(artifact.build_model(), images, seeds)
        report = run_load(http_sender(server.url), images, seeds,
                          concurrency=16)
        assert report.errors == []
        assert report.ok == len(images)
        np.testing.assert_array_equal(report.predictions, reference)

    def test_healthz_reports_deployment_shape(self, server):
        health = fetch_json(server.url, "/healthz")
        assert health["status"] == "ok"
        assert health["model"] == "spikedyn"
        assert health["workers"] == 2
        assert health["max_batch"] == 8
        assert health["n_input"] == 196

    def test_metrics_after_load(self, server, request_images, request_seeds):
        run_load(http_sender(server.url), request_images, request_seeds,
                 concurrency=8)
        metrics = fetch_json(server.url, "/metrics.json")
        n = len(request_images)
        assert metrics["requests_total"] >= n
        assert metrics["responses_total"] >= n
        assert metrics["errors_total"] == 0
        histogram = metrics["batch_size_histogram"]
        assert sum(int(size) * count
                   for size, count in histogram.items()) >= n
        latency = metrics["latency"]
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert latency[key] >= 0.0
        assert latency["p50_ms"] <= latency["p99_ms"]
        assert metrics["drift"]["observed"] >= n

    def test_prometheus_metrics_endpoint(self, server, request_images,
                                         request_seeds):
        """GET /metrics serves parseable Prometheus text exposition that
        agrees with the JSON snapshot on /metrics.json."""
        run_load(http_sender(server.url), request_images, request_seeds,
                 concurrency=8)
        request = urllib.request.Request(server.url + "/metrics")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        series = parse_prometheus_text(text)
        n = len(request_images)
        assert series["repro_serving_requests_total"][()] >= n
        assert series["repro_serving_responses_total"][()] >= n
        buckets = series["repro_serving_batch_size_bucket"]
        inf_key = (("le", "+Inf"),)
        assert buckets[inf_key] == series["repro_serving_batch_size_count"][()]
        info = series["repro_serving_info"]
        labels = dict(next(iter(info)))
        assert labels["model"] == "spikedyn"
        assert labels["backend"] in ("dense", "sparse")
        # Prometheus and JSON views come from the same snapshot machinery.
        json_metrics = fetch_json(server.url, "/metrics.json")
        assert series["repro_serving_latency_window"][()] == \
            json_metrics["latency"]["window"]

    def test_metrics_text_matches_fetch_text_helper(self, server):
        text = fetch_text(server.url, "/metrics")
        assert "# TYPE repro_serving_requests_total counter" in text
        parse_prometheus_text(text)  # must not raise

    def test_predict_response_shape(self, server, request_images):
        status, body = _post(server.url, {
            "image": request_images[0].ravel().tolist(), "seed": 3,
        })
        assert status == 200
        assert body["seed"] == 3
        assert body["model"] == "spikedyn"
        assert isinstance(body["prediction"], int)
        assert len(body["scores"]) == 10
        assert body["spike_count"] >= 0.0

    def test_nested_image_lists_are_accepted(self, server, request_images):
        nested = request_images[0].reshape(14, 14).tolist()
        status, body = _post(server.url, {"image": nested, "seed": 3})
        assert status == 200
        flat_status, flat_body = _post(server.url, {
            "image": request_images[0].ravel().tolist(), "seed": 3,
        })
        assert flat_status == 200
        assert body["prediction"] == flat_body["prediction"]


@pytest.mark.integration
class TestProtocolErrors:
    def test_unknown_paths_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch_json(server.url, "/nope")
        assert excinfo.value.code == 404
        request = urllib.request.Request(
            server.url + "/other", data=b"{}", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_malformed_json_400(self, server):
        status, body = _post(server.url, None, raw=b"{not json")
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "JSON" in body["error"]["message"]

    def test_missing_image_field_400(self, server):
        status, body = _post(server.url, {"seed": 1})
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "image" in body["error"]["message"]

    def test_wrong_image_size_400(self, server):
        status, body = _post(server.url, {"image": [0.1, 0.2, 0.3]})
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "pixels" in body["error"]["message"]

    def test_non_numeric_image_400(self, server):
        status, body = _post(server.url, {"image": ["a"] * 196})
        assert status == 400

    def test_non_finite_image_400(self, server):
        status, body = _post(server.url, {
            "image": [float("nan")] + [0.0] * 195,
        })
        assert status == 400
        assert "finite" in body["error"]["message"]

    def test_negative_image_400(self, server):
        status, body = _post(server.url, {
            "image": [-0.1] + [0.0] * 195,
        })
        assert status == 400
        assert "non-negative" in body["error"]["message"]

    def test_non_integer_seed_400(self, server, request_images):
        status, body = _post(server.url, {
            "image": request_images[0].ravel().tolist(), "seed": "abc",
        })
        assert status == 400
        assert "seed" in body["error"]["message"]

    def test_empty_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/predict", data=b"",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_stopped_pool_returns_retryable_503(self, server, request_images):
        # Only this model's pool is gone, not the server: the envelope
        # says "retry", not "we are shutting down".
        server.pool.stop()
        status, body = _post(server.url, {
            "image": request_images[0].ravel().tolist(),
        })
        assert status == 503
        assert body["error"]["code"] == "upstream_failure"

    def test_shutdown_returns_503(self, server, request_images):
        server.router.stop()
        status, body = _post(server.url, {
            "image": request_images[0].ravel().tolist(),
        })
        assert status == 503
        assert body["error"]["code"] == "shutting_down"

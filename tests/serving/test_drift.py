"""Online drift detection, with drifted traffic synthesized by the
scenario engine's stream transforms (the same machinery the offline
continual-learning scenarios use)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.streams import StreamSample
from repro.scenarios.transforms import ContrastScale, GaussianNoise
from repro.serving import (
    PredictionService,
    PredictRequest,
    ReplicaPool,
    SpikeCountDriftDetector,
)


def _spike_counts(service: PredictionService, images, seeds) -> list:
    results = service.predict_batch(
        [PredictRequest(image=image, seed=seed)
         for image, seed in zip(images, seeds)]
    )
    return [result.spike_count for result in results]


def _transform_images(transform, images, source, rng_seed: int) -> list:
    stream = [StreamSample(image=np.array(image), label=0, task_index=0)
              for image in images]
    rng = np.random.default_rng(rng_seed)
    return [sample.image for sample in transform.apply(stream, source, rng)]


class TestDetectorUnit:
    def test_calibration_freezes_after_window(self):
        detector = SpikeCountDriftDetector(window=8, threshold=3.0)
        assert not detector.calibrated
        for value in np.linspace(10.0, 12.0, 8):
            detector.observe(value)
        assert detector.calibrated
        state = detector.state()
        assert state["reference_mean"] == pytest.approx(11.0)
        assert not state["alarm"]

    def test_stable_traffic_never_alarms(self):
        detector = SpikeCountDriftDetector(window=16, threshold=3.0)
        rng = np.random.default_rng(0)
        for _ in range(200):
            detector.observe(rng.normal(20.0, 1.0))
        assert not detector.state()["alarm"]

    def test_shifted_traffic_alarms_and_latches(self):
        detector = SpikeCountDriftDetector(window=16, threshold=3.0)
        rng = np.random.default_rng(0)
        for _ in range(32):
            detector.observe(rng.normal(20.0, 1.0))
        for _ in range(32):
            detector.observe(rng.normal(5.0, 1.0))
        state = detector.state()
        assert state["alarm"]
        assert state["score"] > 3.0
        # The alarm latches even if traffic recovers...
        for _ in range(64):
            detector.observe(rng.normal(20.0, 1.0))
        assert detector.state()["alarm"]
        # ...until explicitly reset.
        detector.reset_alarm()
        assert not detector.state()["alarm"]

    def test_explicit_reference_skips_calibration(self):
        detector = SpikeCountDriftDetector(window=8, threshold=2.0,
                                           reference_mean=50.0,
                                           reference_std=2.0)
        assert detector.calibrated
        for _ in range(8):
            detector.observe(10.0)
        assert detector.state()["alarm"]

    def test_reference_args_must_come_together(self):
        with pytest.raises(ValueError, match="together"):
            SpikeCountDriftDetector(reference_mean=1.0)


class TestDriftedTrafficEndToEnd:
    def test_scenario_corruption_trips_the_alarm(self, artifact,
                                                 serving_source,
                                                 request_images):
        """Traffic corrupted by the scenario transforms (heavy noise plus a
        contrast washout) drives spike counts off the clean baseline."""
        service = PredictionService(artifact.build_model())
        seeds = list(range(len(request_images)))
        clean_counts = _spike_counts(service, request_images, seeds)

        detector = SpikeCountDriftDetector(
            window=len(request_images), threshold=3.0,
            reference_mean=float(np.mean(clean_counts)),
            reference_std=float(np.std(clean_counts)),
        )
        corrupted = _transform_images(
            GaussianNoise(sigma=0.8), request_images, serving_source, 0
        )
        corrupted = _transform_images(
            ContrastScale(factor=0.2), corrupted, serving_source, 1
        )
        for count in _spike_counts(service, corrupted, seeds):
            detector.observe(count)
        state = detector.state()
        assert state["alarm"], state
        assert state["score"] > 3.0

    def test_clean_traffic_does_not_alarm(self, artifact, request_images):
        service = PredictionService(artifact.build_model())
        seeds = list(range(len(request_images)))
        clean_counts = _spike_counts(service, request_images, seeds)
        detector = SpikeCountDriftDetector(
            window=len(request_images), threshold=3.0,
            reference_mean=float(np.mean(clean_counts)),
            reference_std=float(np.std(clean_counts)),
        )
        # Replay the same clean distribution with fresh seeds.
        for count in _spike_counts(service, request_images,
                                   [seed + 100 for seed in seeds]):
            detector.observe(count)
        assert not detector.state()["alarm"]

    def test_pool_feeds_the_detector_and_exposes_state(self, artifact,
                                                       request_images):
        detector = SpikeCountDriftDetector(window=4, threshold=3.0)
        pool = ReplicaPool.from_artifact(artifact, workers=1, max_batch=4,
                                         drift_detector=detector)
        with pool:
            for index, image in enumerate(request_images[:6]):
                pool.predict(image, seed=index, timeout=30.0)
        snapshot = pool.metrics_snapshot()
        assert "drift" in snapshot
        assert snapshot["drift"]["observed"] == 6
        assert snapshot["drift"]["window"] == 4

"""Seeded encoding and the serving/offline equivalence contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    PredictionService,
    PredictRequest,
    derive_request_seed,
    encode_request,
    offline_predictions,
)


class TestSeededEncoding:
    def test_derived_seed_is_deterministic(self, request_images):
        image = request_images[0]
        assert derive_request_seed(image) == derive_request_seed(image.copy())

    def test_derived_seed_differs_across_images(self, request_images):
        seeds = {derive_request_seed(image) for image in request_images}
        assert len(seeds) == len(request_images)

    def test_encoding_is_a_pure_function_of_image_and_seed(self, artifact,
                                                           request_images):
        model = artifact.build_model()
        image = request_images[0]
        first = encode_request(model, image, 123)
        second = encode_request(model, image, 123)
        np.testing.assert_array_equal(first, second)
        assert first.shape == (model.encoder.timesteps, model.n_input)
        assert first.dtype == bool

    def test_different_seeds_give_different_trains(self, artifact,
                                                   request_images):
        model = artifact.build_model()
        image = request_images[0]
        first = encode_request(model, image, 1)
        second = encode_request(model, image, 2)
        assert not np.array_equal(first, second)

    def test_encoder_state_is_never_consumed(self, artifact, request_images):
        """Serving encoding must not advance the model's own encoder RNG."""
        model = artifact.build_model()
        before = model.encoder._rng.bit_generator.state
        encode_request(model, request_images[0], 5)
        after = model.encoder._rng.bit_generator.state
        assert before == after

    def test_request_resolves_missing_seed_from_image(self, request_images):
        request = PredictRequest(image=request_images[0])
        assert request.resolved_seed() == derive_request_seed(request_images[0])
        explicit = PredictRequest(image=request_images[0], seed=7)
        assert explicit.resolved_seed() == 7


class TestBatchGroupingEquivalence:
    @pytest.mark.parametrize("group_size", [1, 3, 5, 12])
    def test_any_grouping_matches_offline_path(self, artifact, request_images,
                                               request_seeds, group_size):
        """Micro-batch composition must not affect any prediction."""
        model = artifact.build_model()
        reference = offline_predictions(model, request_images, request_seeds)

        service = PredictionService(artifact.build_model())
        requests = [PredictRequest(image=image, seed=seed)
                    for image, seed in zip(request_images, request_seeds)]
        grouped = []
        for start in range(0, len(requests), group_size):
            grouped.extend(
                result.prediction for result in
                service.predict_batch(requests[start:start + group_size])
            )
        np.testing.assert_array_equal(np.asarray(grouped), reference)

    def test_results_carry_scores_and_spike_counts(self, artifact,
                                                   request_images):
        service = PredictionService(artifact.build_model())
        results = service.predict_batch(
            [PredictRequest(image=image, seed=index)
             for index, image in enumerate(request_images[:4])]
        )
        assert len(results) == 4
        for result in results:
            assert result.scores.shape == (10,)
            assert result.spike_count >= 0.0
            assert result.prediction == int(np.argmax(result.scores))
            payload = result.to_dict()
            assert set(payload) == {"prediction", "seed", "spike_count",
                                    "scores"}

    def test_consecutive_batches_are_independent(self, artifact,
                                                 request_images):
        """A replica must not drift: same request, same answer, any history."""
        service = PredictionService(artifact.build_model())
        request = PredictRequest(image=request_images[0], seed=42)
        first = service.predict_batch([request])[0]
        # Serve unrelated traffic in between.
        service.predict_batch([
            PredictRequest(image=image, seed=index)
            for index, image in enumerate(request_images)
        ])
        second = service.predict_batch([request])[0]
        assert first.prediction == second.prediction
        assert first.spike_count == second.spike_count
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_empty_batch_is_a_no_op(self, artifact):
        service = PredictionService(artifact.build_model())
        assert service.predict_batch([]) == []


class TestOfflineReference:
    def test_offline_matches_derived_seeds(self, artifact, request_images):
        """Omitted seeds derive from image content on both paths."""
        model = artifact.build_model()
        explicit = offline_predictions(
            model, request_images,
            [derive_request_seed(image) for image in request_images],
        )
        derived = offline_predictions(model, request_images)
        np.testing.assert_array_equal(explicit, derived)

    def test_chunk_size_does_not_matter(self, artifact, request_images,
                                        request_seeds):
        model = artifact.build_model()
        full = offline_predictions(model, request_images, request_seeds,
                                   batch_size=len(request_images))
        single = offline_predictions(model, request_images, request_seeds,
                                     batch_size=1)
        np.testing.assert_array_equal(full, single)

    def test_seed_count_mismatch_raises(self, artifact, request_images):
        model = artifact.build_model()
        with pytest.raises(ValueError, match="seeds"):
            offline_predictions(model, request_images, [1, 2])

"""End-to-end distributed-tracing tests over the /v1 HTTP API.

Two small servers: one fronting a thread :class:`ReplicaPool`, one fronting
a two-process :class:`ShardProcessPool` — both writing spans to a ledger so
`repro trace show` can rebuild the cross-process span tree.  The SIGKILL
test runs its own single-shard pool so killing the worker is deterministic.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.client import ServingClient
from repro.observability.ledger import RunLedger
from repro.observability.tracing import (
    TRACE_HEADER,
    TraceContext,
    trace_id_for_request,
    trace_scope,
)
from repro.observability.trace_view import (
    build_trace_tree,
    format_trace,
    trace_spans,
    trace_summary,
)
from repro.serving import load_artifact
from repro.serving.inference import offline_predictions
from repro.serving.pool import ReplicaPool
from repro.serving.router import ModelRouter
from repro.serving.server import ModelServer
from repro.serving.shards import ShardProcessPool


@pytest.fixture(scope="module")
def pool_ledger_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("trace-pool-ledger")


@pytest.fixture(scope="module")
def shard_ledger_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("trace-shard-ledger")


@pytest.fixture(scope="module")
def pool_server(artifact_dir, pool_ledger_dir):
    """A /v1 server over a thread pool with a span-recording ledger."""
    def pool_factory(directory):
        return ReplicaPool.from_artifact(
            load_artifact(directory), workers=1, max_batch=4, max_wait_ms=2.0,
            ledger=RunLedger(pool_ledger_dir),
        )

    router = ModelRouter(pool_factory)
    router.add_model("spikedyn", artifact_dir)
    server = ModelServer(router, port=0)
    server.start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def shard_server(artifact_dir, shard_ledger_dir):
    """A /v1 server over a two-process shard pool sharing one ledger."""
    def pool_factory(directory):
        return ShardProcessPool(directory, shards=2, max_batch=4,
                                max_wait_ms=2.0,
                                ledger=RunLedger(shard_ledger_dir))

    router = ModelRouter(pool_factory)
    router.add_model("spikedyn", artifact_dir)
    server = ModelServer(router, port=0)
    server.start()
    yield server
    server.stop()


def _wait_for_spans(ledger_dir, trace_id, minimum, timeout_s=30.0):
    """Spans arrive asynchronously from worker processes; poll briefly."""
    ledger = RunLedger(ledger_dir)
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        spans = trace_spans(ledger, trace_id)
        if len(spans) >= minimum:
            return spans
        time.sleep(0.05)
    return trace_spans(ledger, trace_id)


class TestThreadPoolTracing:
    def test_traced_predict_builds_a_span_tree(self, pool_server,
                                               pool_ledger_dir,
                                               request_images):
        client = ServingClient(pool_server.url, retries=0)
        body = client.predict(request_images[0], seed=3, model="spikedyn",
                              trace_id="pool-trace-1")
        assert body["trace_id"] == "pool-trace-1"
        spans = _wait_for_spans(pool_ledger_dir, "pool-trace-1", minimum=5)
        names = {span["name"] for span in spans}
        assert {"http_request", "queue_wait", "serve_batch",
                "encode", "kernel"} <= names
        (root,) = build_trace_tree(spans)
        assert root.name == "http_request"
        child_names = {child.name for child in root.children}
        assert {"queue_wait", "serve_batch"} <= child_names
        (serve,) = [c for c in root.children if c.name == "serve_batch"]
        assert {c.name for c in serve.children} >= {"encode", "kernel"}

    def test_untraced_predict_body_is_unchanged(self, pool_server,
                                                request_images):
        client = ServingClient(pool_server.url, retries=0)
        body = client.predict(request_images[0], seed=3, model="spikedyn")
        assert "trace_id" not in body
        assert set(body) == {"prediction", "seed", "spike_count", "scores",
                             "model", "version"}

    def test_traced_and_untraced_predictions_are_bit_equal(self, pool_server,
                                                           request_images):
        client = ServingClient(pool_server.url, retries=0)
        plain = client.predict(request_images[1], seed=9, model="spikedyn")
        traced = client.predict(request_images[1], seed=9, model="spikedyn",
                                trace_id="pool-trace-eq")
        assert plain["prediction"] == traced["prediction"]
        assert plain["spike_count"] == traced["spike_count"]
        assert plain["scores"] == traced["scores"]

    def test_trace_header_is_echoed_on_every_route(self, pool_server):
        request = urllib.request.Request(
            pool_server.url + "/v1/healthz",
            headers={TRACE_HEADER: "echo-check"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers[TRACE_HEADER] == "echo-check"
            body = json.loads(response.read())
        assert body["status"] == "ok"

    def test_malformed_trace_header_is_a_400(self, pool_server,
                                             request_images):
        payload = json.dumps(
            {"image": np.asarray(request_images[0]).ravel().tolist(),
             "seed": 1}
        ).encode("utf-8")
        request = urllib.request.Request(
            pool_server.url + "/v1/models/spikedyn/predict", data=payload,
            headers={"Content-Type": "application/json",
                     TRACE_HEADER: "bad header!"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["code"] == "invalid_request"

    def test_forced_tracing_derives_id_from_seed(self, pool_server,
                                                 pool_ledger_dir,
                                                 request_images, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        client = ServingClient(pool_server.url, retries=0)
        body = client.predict(request_images[2], seed=11, model="spikedyn")
        expected = trace_id_for_request(11)
        assert body["trace_id"] == expected
        spans = _wait_for_spans(pool_ledger_dir, expected, minimum=1)
        assert any(span["name"] == "http_request" for span in spans)


@pytest.mark.integration
class TestShardTracing:
    def test_one_predict_spans_two_processes(self, shard_server,
                                             shard_ledger_dir,
                                             request_images):
        client = ServingClient(shard_server.url, retries=0)
        body = client.predict(request_images[0], seed=5, model="spikedyn",
                              trace_id="shard-trace-1")
        assert body["trace_id"] == "shard-trace-1"
        spans = _wait_for_spans(shard_ledger_dir, "shard-trace-1", minimum=6)
        names = {span["name"] for span in spans}
        assert {"http_request", "queue_wait", "shard_rpc",
                "shard_batch", "encode", "kernel"} <= names
        summary = trace_summary(spans)
        assert summary["processes"] >= 2  # server pid + shard worker pid
        # The tree hangs together across the process boundary.
        (root,) = build_trace_tree(spans)
        assert root.name == "http_request"
        (rpc,) = [c for c in root.children if c.name == "shard_rpc"]
        (batch,) = [c for c in rpc.children if c.name == "shard_batch"]
        assert batch.record["pid"] != root.record["pid"]
        assert {c.name for c in batch.children} >= {"encode", "kernel"}
        # And the CLI-facing renderer reconstructs it.
        text = format_trace(RunLedger(shard_ledger_dir), "shard-trace-1")
        assert "http_request" in text and "shard_batch" in text


@pytest.mark.integration
class TestCrashTraceContinuity:
    def test_sigkilled_shard_continues_the_same_trace_with_retry_spans(
            self, artifact_dir, trained_model, request_images, request_seeds,
            tmp_path):
        """SIGKILL the only shard mid-trace: the respawned worker keeps
        recording under the same trace id and the retried RPC attempt is
        flagged ``retry=1`` (satellite 3)."""
        ledger = RunLedger(tmp_path / "ledger")
        pool = ShardProcessPool(artifact_dir, shards=1, max_batch=2,
                                max_wait_ms=1.0, ledger=ledger)
        pool.start()
        context = TraceContext(trace_id="kill-trace")
        try:
            # Warm-up: spans recorded by the original worker pid.
            with trace_scope(context):
                first = pool.predict(request_images[0],
                                     seed=request_seeds[0], timeout=120.0)
            pid_before = pool.shard_pids()[0]
            assert pid_before is not None

            # Kill the worker while traced batches are in flight.  Waiting
            # for the first response before killing proves the worker is
            # mid-stream with batches still queued, so the kill lands
            # during an RPC and that RPC is retried on the respawned
            # process; if it happens to land between batches anyway no
            # retry occurs, so repeat until one is recorded (each round
            # must still answer all requests bit-identically).
            retried = []
            for _ in range(6):
                pid = pool.shard_pids()[0]
                if pid is None:
                    time.sleep(0.2)
                    continue
                with trace_scope(context):
                    futures = [pool.submit(image, seed=seed)
                               for image, seed in zip(request_images,
                                                      request_seeds)]
                futures[0].result(timeout=120.0)
                os.kill(pid, signal.SIGKILL)
                served = np.array([future.result(timeout=120.0).prediction
                                   for future in futures])
                offline = offline_predictions(trained_model, request_images,
                                              request_seeds)
                np.testing.assert_array_equal(served, offline)
                retried = [span for span
                           in trace_spans(ledger, "kill-trace")
                           if span.get("retry") == 1]
                if retried:
                    break
            assert retried, "no retried span recorded after 6 SIGKILL rounds"
            assert {span["name"] for span in retried} & {"shard_rpc",
                                                         "shard_batch"}

            # Same trace id, spans from both the killed and the respawned
            # worker process.
            spans = trace_spans(ledger, "kill-trace")
            worker_pids = {span["pid"] for span in spans
                           if span["name"] == "shard_batch"}
            assert len(worker_pids) >= 2
            assert pool.respawns_total >= 1
            assert first.prediction == offline_predictions(
                trained_model, request_images[:1], request_seeds[:1]
            )[0]
        finally:
            pool.stop(cancel_pending=True)

"""Tests for the instrumented actual-run estimator (the Fig. 5 reference)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.estimation.actual_run import (
    actual_memory_bytes,
    measure_sample_operations,
    run_actual_measurement,
)
from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO
from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts
from repro.models.spikedyn_model import SpikeDynModel


@pytest.fixture
def config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=64, n_exc=8, t_sim=20.0, seed=0)


@pytest.fixture
def model(config) -> SpikeDynModel:
    return SpikeDynModel(config)


@pytest.fixture
def spike_trains(model, config):
    rng = np.random.default_rng(0)
    return [rng.random((20, config.n_input)) < 0.3 for _ in range(3)]


class TestActualMemory:
    def test_exceeds_the_analytical_estimate(self, model, config):
        """The measured footprint adds the transient state the analytical
        model ignores, so it is strictly larger (Fig. 5a)."""
        analytical = architecture_parameter_counts(
            ARCH_SPIKEDYN, config.n_input, config.n_exc
        ).memory_bytes(config.bit_precision)
        measured = actual_memory_bytes(model.network, config.bit_precision)
        assert measured > analytical
        # ... but not by much: the transient state is a small fraction.
        assert measured < analytical * 2.0

    def test_scales_with_bit_precision(self, model):
        assert actual_memory_bytes(model.network, 32) == pytest.approx(
            2 * actual_memory_bytes(model.network, 16)
        )


class TestMeasureSampleOperations:
    def test_counts_one_presentation_only(self, model, spike_trains):
        first = measure_sample_operations(model.network, spike_trains[0])
        assert first.total_ops() > 0
        second = measure_sample_operations(model.network, spike_trains[1])
        # Counters are deltas, not cumulative totals.
        assert second.total_ops() < first.total_ops() * 3

    def test_inference_costs_less_than_training(self, model, spike_trains):
        training = measure_sample_operations(model.network, spike_trains[0],
                                             learning=True)
        inference = measure_sample_operations(model.network, spike_trains[0],
                                              learning=False)
        assert inference.weight_updates <= training.weight_updates
        assert inference.total_ops() <= training.total_ops()


class TestRunActualMeasurement:
    def test_aggregates_all_samples(self, model, spike_trains):
        measurement = run_actual_measurement(model.network, spike_trains,
                                             learning=False)
        assert measurement.n_samples == 3
        assert measurement.counter.total_ops() > 0
        assert measurement.memory_bytes > 0
        assert measurement.energy.joules > 0

    def test_per_sample_energy_is_the_mean(self, model, spike_trains):
        measurement = run_actual_measurement(model.network, spike_trains,
                                             learning=False)
        assert measurement.per_sample_energy.joules == pytest.approx(
            measurement.energy.joules / 3
        )

    def test_extrapolation_scales_the_mean(self, model, spike_trains):
        measurement = run_actual_measurement(model.network, spike_trains,
                                             learning=False)
        assert measurement.extrapolated(300).joules == pytest.approx(
            measurement.per_sample_energy.joules * 300
        )

    def test_device_changes_the_energy_but_not_the_counts(self, config, spike_trains):
        fast = run_actual_measurement(SpikeDynModel(config).network, spike_trains,
                                      learning=False, device=GTX_1080_TI)
        slow = run_actual_measurement(SpikeDynModel(config).network, spike_trains,
                                      learning=False, device=JETSON_NANO)
        assert slow.counter == fast.counter
        assert slow.energy.seconds > fast.energy.seconds

    def test_empty_sample_list(self, model):
        measurement = run_actual_measurement(model.network, [], learning=False)
        assert measurement.n_samples == 0
        assert measurement.energy.joules == 0.0
        # With no samples, the per-sample energy falls back to the total.
        assert measurement.per_sample_energy.joules == 0.0

    def test_training_measurement_counts_weight_updates(self, model, spike_trains):
        measurement = run_actual_measurement(model.network, spike_trains,
                                             learning=True)
        assert measurement.counter.weight_updates > 0

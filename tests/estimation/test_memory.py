"""Tests for the analytical memory model ``mem = (Pw + Pn) * BP``."""

from __future__ import annotations

import pytest

from repro.core.architecture import build_baseline_network, build_spikedyn_network
from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule
from repro.estimation.memory import (
    ARCH_BASELINE,
    ARCH_SPIKEDYN,
    ArchitectureParameterCounts,
    architecture_parameter_counts,
    estimate_memory_bytes,
    network_memory_bytes,
    network_parameter_counts,
)
from repro.learning.stdp import PairwiseSTDP


class TestEstimateMemoryBytes:
    def test_formula(self):
        # (Pw + Pn) * BP, expressed in bytes.
        assert estimate_memory_bytes(100, 20, 32) == (100 + 20) * 4.0
        assert estimate_memory_bytes(100, 20, 16) == (100 + 20) * 2.0

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            estimate_memory_bytes(-1, 0)

    def test_rejects_invalid_precision(self):
        with pytest.raises(ValueError):
            estimate_memory_bytes(1, 1, 0)


class TestArchitectureParameterCounts:
    def test_baseline_counts(self):
        counts = architecture_parameter_counts(ARCH_BASELINE, 784, 400)
        # input->exc dense, exc->inh one-to-one, inh->exc dense minus diagonal.
        assert counts.weights == 784 * 400 + 400 + 400 * 399
        # 3 parameters per excitatory neuron, 2 per inhibitory neuron.
        assert counts.neuron_parameters == 3 * 400 + 2 * 400

    def test_spikedyn_counts(self):
        counts = architecture_parameter_counts(ARCH_SPIKEDYN, 784, 400)
        assert counts.weights == 784 * 400 + 1
        assert counts.neuron_parameters == 3 * 400

    def test_spikedyn_is_always_smaller(self):
        for n_exc in (50, 100, 200, 400):
            baseline = architecture_parameter_counts(ARCH_BASELINE, 784, n_exc)
            spikedyn = architecture_parameter_counts(ARCH_SPIKEDYN, 784, n_exc)
            assert spikedyn.total < baseline.total

    def test_savings_grow_with_network_size(self):
        """The eliminated inhibitory layer scales quadratically, so the
        relative saving grows with n_exc (paper Fig. 4b)."""
        def saving(n_exc: int) -> float:
            baseline = architecture_parameter_counts(ARCH_BASELINE, 784, n_exc)
            spikedyn = architecture_parameter_counts(ARCH_SPIKEDYN, 784, n_exc)
            return 1.0 - spikedyn.total / baseline.total

        assert saving(400) > saving(200) > saving(100) > 0.0

    def test_memory_bytes_uses_bit_precision(self):
        counts = ArchitectureParameterCounts(weights=10, neuron_parameters=2)
        assert counts.memory_bytes(32) == 48.0
        assert counts.memory_bytes(8) == 12.0

    def test_total(self):
        counts = ArchitectureParameterCounts(weights=7, neuron_parameters=5)
        assert counts.total == 12

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            architecture_parameter_counts("transformer", 784, 400)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            architecture_parameter_counts(ARCH_SPIKEDYN, 0, 400)


class TestNetworkParameterCounts:
    @pytest.fixture
    def config(self) -> SpikeDynConfig:
        return SpikeDynConfig.scaled_down(n_input=36, n_exc=5, seed=0)

    def test_spikedyn_network_matches_the_analytical_model(self, config):
        network = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        counted = network_parameter_counts(network)
        analytical = architecture_parameter_counts(ARCH_SPIKEDYN, 36, 5)
        assert counted.weights == analytical.weights
        assert counted.neuron_parameters == analytical.neuron_parameters

    def test_baseline_network_matches_the_analytical_model(self, config):
        network = build_baseline_network(config, learning_rule=PairwiseSTDP())
        counted = network_parameter_counts(network)
        analytical = architecture_parameter_counts(ARCH_BASELINE, 36, 5)
        assert counted.weights == analytical.weights
        assert counted.neuron_parameters == analytical.neuron_parameters

    def test_network_memory_bytes(self, config):
        network = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        expected = architecture_parameter_counts(ARCH_SPIKEDYN, 36, 5).memory_bytes(32)
        assert network_memory_bytes(network, 32) == pytest.approx(expected)

"""Tests for the energy model ``E = E1 * N`` and the operation cost mapping."""

from __future__ import annotations

import pytest

from repro.estimation.energy import (
    DEFAULT_OP_ENERGY_COSTS,
    EnergyEstimate,
    EnergyModel,
    estimate_total_energy,
    weighted_operations,
)
from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO
from repro.snn.simulation import OperationCounter


class TestWeightedOperations:
    def test_applies_default_costs(self):
        counter = OperationCounter(synaptic_events=10, neuron_updates=5,
                                   exponential_ops=2, trace_updates=3,
                                   weight_updates=4, spike_events=100)
        expected = 10 * 2.0 + 5 * 3.0 + 2 * 3.0 + 3 * 1.0 + 4 * 1.0
        assert weighted_operations(counter) == pytest.approx(expected)

    def test_spike_events_are_free(self):
        counter = OperationCounter(spike_events=1_000_000)
        assert weighted_operations(counter) == 0.0

    def test_custom_costs(self):
        counter = OperationCounter(weight_updates=10)
        assert weighted_operations(counter, {"weight_updates": 5.0}) == 50.0

    def test_empty_counter_costs_nothing(self):
        assert weighted_operations(OperationCounter()) == 0.0

    def test_all_counters_have_a_default_cost(self):
        for name in OperationCounter().as_dict():
            assert name in DEFAULT_OP_ENERGY_COSTS


class TestEnergyEstimate:
    def test_unit_conversions(self):
        estimate = EnergyEstimate(device="X", seconds=7200.0, joules=5000.0,
                                  weighted_ops=1e9)
        assert estimate.hours == pytest.approx(2.0)
        assert estimate.kilojoules == pytest.approx(5.0)

    def test_scaled(self):
        estimate = EnergyEstimate(device="X", seconds=1.0, joules=2.0,
                                  weighted_ops=3.0)
        scaled = estimate.scaled(10.0)
        assert scaled.seconds == 10.0
        assert scaled.joules == 20.0
        assert scaled.weighted_ops == 30.0
        assert scaled.device == "X"

    def test_scaled_rejects_negative_factor(self):
        estimate = EnergyEstimate(device="X", seconds=1.0, joules=1.0,
                                  weighted_ops=1.0)
        with pytest.raises(ValueError):
            estimate.scaled(-1.0)

    def test_estimate_total_energy_is_e1_times_n(self):
        single = EnergyEstimate(device="X", seconds=0.5, joules=2.0,
                                weighted_ops=10.0)
        total = estimate_total_energy(single, 60_000)
        assert total.joules == pytest.approx(2.0 * 60_000)
        assert total.seconds == pytest.approx(0.5 * 60_000)

    def test_estimate_total_energy_requires_positive_n(self):
        single = EnergyEstimate(device="X", seconds=1.0, joules=1.0,
                                weighted_ops=1.0)
        with pytest.raises(ValueError):
            estimate_total_energy(single, 0)


class TestEnergyModel:
    def test_estimate_uses_the_device_cost_model(self):
        counter = OperationCounter(synaptic_events=1_000_000)
        model = EnergyModel(GTX_1080_TI)
        estimate = model.estimate(counter)
        ops = weighted_operations(counter)
        assert estimate.weighted_ops == pytest.approx(ops)
        assert estimate.seconds == pytest.approx(
            GTX_1080_TI.seconds_for_operations(ops)
        )
        assert estimate.joules == pytest.approx(
            GTX_1080_TI.energy_for_operations(ops)
        )
        assert estimate.device == "GTX 1080 Ti"

    def test_embedded_gpu_takes_longer_for_the_same_work(self):
        counter = OperationCounter(synaptic_events=1_000_000)
        fast = EnergyModel(GTX_1080_TI).estimate(counter)
        slow = EnergyModel(JETSON_NANO).estimate(counter)
        assert slow.seconds > fast.seconds

    def test_estimate_phase(self):
        counter = OperationCounter(synaptic_events=1000)
        model = EnergyModel(GTX_1080_TI)
        phase = model.estimate_phase(counter, 500)
        assert phase.joules == pytest.approx(model.estimate(counter).joules * 500)

    def test_custom_op_costs_change_the_estimate(self):
        counter = OperationCounter(weight_updates=1000)
        default = EnergyModel(GTX_1080_TI).estimate(counter)
        expensive = EnergyModel(GTX_1080_TI,
                                {"weight_updates": 100.0}).estimate(counter)
        assert expensive.joules > default.joules

    def test_more_operations_cost_more(self):
        model = EnergyModel(GTX_1080_TI)
        small = model.estimate(OperationCounter(synaptic_events=100))
        large = model.estimate(OperationCounter(synaptic_events=10_000))
        assert large.joules > small.joules
        assert large.seconds > small.seconds

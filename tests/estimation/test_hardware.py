"""Tests for the GPU device profiles (paper Table I)."""

from __future__ import annotations

import pytest

from repro.estimation.hardware import (
    GTX_1080_TI,
    JETSON_NANO,
    RTX_2080_TI,
    DeviceProfile,
    default_devices,
    get_device,
)


class TestTable1Values:
    def test_jetson_nano_row(self):
        assert JETSON_NANO.architecture == "Maxwell"
        assert JETSON_NANO.cuda_cores == 128
        assert JETSON_NANO.memory == "4GB LPDDR4"
        assert JETSON_NANO.interface_width_bits == 64
        assert JETSON_NANO.tdp_watts == 10.0

    def test_gtx_1080_ti_row(self):
        assert GTX_1080_TI.architecture == "Pascal"
        assert GTX_1080_TI.cuda_cores == 3584
        assert GTX_1080_TI.memory == "11GB GDDR5X"
        assert GTX_1080_TI.interface_width_bits == 352
        assert GTX_1080_TI.tdp_watts == 250.0

    def test_rtx_2080_ti_row(self):
        assert RTX_2080_TI.architecture == "Turing"
        assert RTX_2080_TI.cuda_cores == 4352
        assert RTX_2080_TI.memory == "11GB GDDR6"
        assert RTX_2080_TI.interface_width_bits == 352
        assert RTX_2080_TI.tdp_watts == 250.0

    def test_table_row_rendering(self):
        row = JETSON_NANO.table_row()
        assert row["device"] == "Jetson Nano"
        assert row["interface_width"] == "64-bit"
        assert row["power"] == "10W"

    def test_default_devices_order_matches_the_paper(self):
        assert [device.name for device in default_devices()] == [
            "Jetson Nano", "GTX 1080 Ti", "RTX 2080 Ti",
        ]


class TestCostModel:
    def test_seconds_scale_linearly_with_operations(self):
        assert GTX_1080_TI.seconds_for_operations(2e9) == pytest.approx(
            2 * GTX_1080_TI.seconds_for_operations(1e9)
        )

    def test_energy_is_time_times_power(self):
        ops = 1e9
        assert GTX_1080_TI.energy_for_operations(ops) == pytest.approx(
            GTX_1080_TI.seconds_for_operations(ops)
            * GTX_1080_TI.simulation_power_watts
        )

    def test_zero_operations_cost_nothing(self):
        assert JETSON_NANO.seconds_for_operations(0.0) == 0.0
        assert JETSON_NANO.energy_for_operations(0.0) == 0.0

    def test_negative_operations_rejected(self):
        with pytest.raises(ValueError):
            JETSON_NANO.seconds_for_operations(-1.0)

    def test_embedded_gpu_is_slowest(self):
        ops = 1e9
        assert (JETSON_NANO.seconds_for_operations(ops)
                > GTX_1080_TI.seconds_for_operations(ops)
                > RTX_2080_TI.seconds_for_operations(ops))

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", architecture="X", cuda_cores=0,
                          memory="1GB", interface_width_bits=64, tdp_watts=10.0,
                          effective_throughput=1e6, simulation_power_watts=5.0)
        with pytest.raises(ValueError):
            DeviceProfile(name="bad", architecture="X", cuda_cores=10,
                          memory="1GB", interface_width_bits=64, tdp_watts=10.0,
                          effective_throughput=0.0, simulation_power_watts=5.0)


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert get_device("jetson nano") is JETSON_NANO
        assert get_device("GTX 1080 TI") is GTX_1080_TI
        assert get_device("  rtx 2080 ti  ") is RTX_2080_TI

    def test_unknown_device_raises_with_known_names(self):
        with pytest.raises(KeyError, match="Jetson Nano"):
            get_device("TPU v4")

"""Tests for the processing-time model (paper Table II)."""

from __future__ import annotations

import pytest

from repro.estimation.energy import weighted_operations
from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO, RTX_2080_TI
from repro.estimation.latency import (
    MNIST_TEST_SAMPLES,
    MNIST_TRAIN_SAMPLES,
    ProcessingTimeReport,
    processing_time_report,
    time_per_sample_seconds,
)
from repro.snn.simulation import OperationCounter


def make_counters(scale: int = 1):
    """Synthetic per-sample counters: training costs more than inference."""
    training = OperationCounter(synaptic_events=100_000 * scale,
                                neuron_updates=10_000 * scale,
                                weight_updates=50_000 * scale)
    inference = OperationCounter(synaptic_events=100_000 * scale,
                                 neuron_updates=10_000 * scale)
    return {"training": training, "inference": inference}


class TestTimePerSample:
    def test_matches_device_throughput(self):
        counter = make_counters()["inference"]
        expected = GTX_1080_TI.seconds_for_operations(weighted_operations(counter))
        assert time_per_sample_seconds(counter, GTX_1080_TI) == pytest.approx(expected)

    def test_devices_are_ordered_by_throughput(self):
        counter = make_counters()["training"]
        nano = time_per_sample_seconds(counter, JETSON_NANO)
        gtx = time_per_sample_seconds(counter, GTX_1080_TI)
        rtx = time_per_sample_seconds(counter, RTX_2080_TI)
        assert nano > gtx > rtx


class TestProcessingTimeReport:
    def test_full_mnist_defaults(self):
        assert MNIST_TRAIN_SAMPLES == 60_000
        assert MNIST_TEST_SAMPLES == 10_000

    def test_rows_cover_every_combination(self):
        report = processing_time_report({"N200": make_counters(),
                                         "N400": make_counters(2)})
        # 2 processes x 2 networks x 3 devices.
        assert len(report.rows) == 12

    def test_hours_lookup(self):
        report = processing_time_report({"N200": make_counters()})
        counter = make_counters()["training"]
        expected_hours = (time_per_sample_seconds(counter, JETSON_NANO)
                          * MNIST_TRAIN_SAMPLES / 3600.0)
        assert report.hours("training", "Jetson Nano", "N200") == pytest.approx(
            expected_hours
        )

    def test_unknown_cell_raises(self):
        report = processing_time_report({"N200": make_counters()})
        with pytest.raises(KeyError):
            report.hours("training", "TPU", "N200")

    def test_inference_rows_include_per_image_latency(self):
        report = processing_time_report({"N200": make_counters()})
        for row in report.rows:
            if row["process"] == "inference":
                assert row["seconds_per_image"] > 0
            else:
                assert "seconds_per_image" not in row

    def test_larger_network_takes_longer(self):
        report = processing_time_report({"N200": make_counters(1),
                                         "N400": make_counters(2)})
        assert (report.hours("training", "GTX 1080 Ti", "N400")
                > report.hours("training", "GTX 1080 Ti", "N200"))

    def test_training_dominates_inference(self):
        report = processing_time_report({"N200": make_counters()})
        for device in ("Jetson Nano", "GTX 1080 Ti", "RTX 2080 Ti"):
            assert (report.hours("training", device, "N200")
                    > report.hours("inference", device, "N200"))

    def test_custom_sample_counts(self):
        counters = {"N200": make_counters()}
        small = processing_time_report(counters, n_train=100, n_test=10)
        large = processing_time_report(counters, n_train=1000, n_test=100)
        assert (large.hours("training", "GTX 1080 Ti", "N200")
                == pytest.approx(10 * small.hours("training", "GTX 1080 Ti", "N200")))

    def test_missing_phase_counter_raises(self):
        with pytest.raises(KeyError):
            processing_time_report({"N200": {"training": OperationCounter()}})

    def test_to_text_contains_every_device(self):
        report = processing_time_report({"N200": make_counters()})
        text = report.to_text()
        for device in ("Jetson Nano", "GTX 1080 Ti", "RTX 2080 Ti"):
            assert device in text

    def test_empty_report_renders_header_only(self):
        assert "process" in ProcessingTimeReport().to_text()

"""Tests for SpikeDyn's continual and unsupervised learning rule (Alg. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.learning import SpikeDynLearningRule
from repro.core.weight_decay import SynapticWeightDecay
from repro.snn.neurons import InputGroup, LIFGroup
from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection


def make_connection(n_pre=4, n_post=3, initial=0.5, *, rule=None):
    pre = InputGroup(n_pre, name="pre")
    post = LIFGroup(n_post, name="post")
    connection = Connection(pre, post, np.full((n_pre, n_post), initial),
                            learning_rule=rule)
    return pre, post, connection


def drive(rule, connection, pre, post, pre_pattern, post_pattern, steps,
          start=0, counter=None):
    """Drive the rule for ``steps`` timesteps with fixed spike patterns."""
    for offset in range(steps):
        pre.spikes = np.asarray(pre_pattern, dtype=bool)
        post.spikes = np.asarray(post_pattern, dtype=bool)
        rule.step(connection, 1.0, start + offset, counter)
    return start + steps


class TestTimestepGating:
    def test_no_update_before_the_window_boundary(self):
        rule = SpikeDynLearningRule(update_interval=10.0, weight_decay=None)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        drive(rule, connection, pre, post, [1, 1, 0, 0], [1, 0, 0], steps=9)
        np.testing.assert_array_equal(connection.weights, before)

    def test_update_happens_at_the_window_boundary(self):
        rule = SpikeDynLearningRule(update_interval=10.0, weight_decay=None,
                                    nu_post=0.1)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        drive(rule, connection, pre, post, [1, 1, 0, 0], [1, 0, 0], steps=10)
        assert not np.array_equal(connection.weights, before)

    def test_disabling_gating_updates_every_step(self):
        rule = SpikeDynLearningRule(update_interval=10.0, weight_decay=None,
                                    gate_updates=False, nu_post=0.1)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        drive(rule, connection, pre, post, [1, 0, 0, 0], [1, 0, 0], steps=1)
        assert not np.array_equal(connection.weights, before)

    def test_gating_reduces_weight_update_operations(self):
        """The spurious-update reduction is where training energy is saved."""
        def weight_update_ops(gate_updates: bool) -> int:
            rule = SpikeDynLearningRule(update_interval=10.0, weight_decay=None,
                                        gate_updates=gate_updates)
            pre, post, connection = make_connection(rule=rule)
            counter = OperationCounter()
            rule.on_sample_start(connection)
            rng = np.random.default_rng(0)
            for t in range(40):
                pre.spikes = rng.random(4) < 0.5
                post.spikes = rng.random(3) < 0.3
                rule.step(connection, 1.0, t, counter)
            return counter.weight_updates

        assert weight_update_ops(True) < weight_update_ops(False)


class TestPotentiationAndDepression:
    def test_window_with_postsynaptic_spikes_potentiates_the_winner(self):
        rule = SpikeDynLearningRule(update_interval=4.0, weight_decay=None,
                                    nu_post=0.1, nu_pre=0.1)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        # Postsynaptic neuron 1 is the most active.
        drive(rule, connection, pre, post, [1, 1, 0, 0], [0, 1, 0], steps=4)
        assert np.all(connection.weights[:2, 1] > before[:2, 1])
        # The other columns are not potentiated at this boundary.
        np.testing.assert_array_equal(connection.weights[:, 0], before[:, 0])
        np.testing.assert_array_equal(connection.weights[:, 2], before[:, 2])

    def test_window_without_postsynaptic_spikes_depresses_everything(self):
        rule = SpikeDynLearningRule(update_interval=4.0, weight_decay=None,
                                    nu_post=0.1, nu_pre=0.1)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        # First window: establish postsynaptic traces and accumulated counts.
        t = drive(rule, connection, pre, post, [1, 1, 1, 1], [1, 1, 1], steps=4)
        before = connection.weights.copy()
        # Second window: presynaptic activity only -> depression of all synapses.
        drive(rule, connection, pre, post, [1, 1, 1, 1], [0, 0, 0], steps=4,
              start=t)
        assert np.all(connection.weights <= before)
        assert np.any(connection.weights < before)

    def test_depression_requires_presynaptic_evidence(self):
        """With no presynaptic spikes at all, kd = 0 and nothing is depressed."""
        rule = SpikeDynLearningRule(update_interval=4.0, weight_decay=None,
                                    nu_pre=0.1, nu_post=0.1)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        drive(rule, connection, pre, post, [0, 0, 0, 0], [0, 0, 0], steps=4)
        np.testing.assert_array_equal(connection.weights, before)

    def test_adaptive_rates_scale_potentiation(self):
        """More postsynaptic activity -> larger kp -> larger weight change."""
        def delta_after(post_rate_steps: int) -> float:
            rule = SpikeDynLearningRule(update_interval=8.0, weight_decay=None,
                                        nu_post=0.01, spike_threshold=2.0,
                                        soft_bounds=False)
            pre, post, connection = make_connection(rule=rule)
            rule.on_sample_start(connection)
            for t in range(8):
                pre.spikes = np.array([True, False, False, False])
                post.spikes = np.array([t < post_rate_steps, False, False])
                rule.step(connection, 1.0, t)
            return float(connection.weights[0, 0] - 0.5)

        assert delta_after(8) > delta_after(1) > 0.0

    def test_fixed_rates_ablation_pins_factors_to_one(self):
        rule = SpikeDynLearningRule(update_interval=4.0, weight_decay=None,
                                    adaptive_rates=False, nu_post=0.1,
                                    soft_bounds=False)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        drive(rule, connection, pre, post, [1, 0, 0, 0], [1, 0, 0], steps=4)
        # kp pinned to 1: the update equals nu_post * pre_trace at the boundary.
        expected = 0.1 * rule.pre_trace.values[0]
        assert connection.weights[0, 0] - 0.5 == pytest.approx(expected)


class TestWeightDecayIntegration:
    def test_decay_shrinks_weights_between_updates(self):
        decay = SynapticWeightDecay(w_decay=5.0, tau_decay=10.0)
        rule = SpikeDynLearningRule(update_interval=5.0, weight_decay=decay,
                                    nu_post=0.0, nu_pre=0.0)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        drive(rule, connection, pre, post, [0, 0, 0, 0], [0, 0, 0], steps=5)
        assert np.all(connection.weights < before)

    def test_no_decay_object_means_no_decay(self):
        rule = SpikeDynLearningRule(update_interval=5.0, weight_decay=None,
                                    nu_post=0.0, nu_pre=0.0)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        drive(rule, connection, pre, post, [0, 0, 0, 0], [0, 0, 0], steps=5)
        np.testing.assert_array_equal(connection.weights, before)


class TestBookkeeping:
    def test_accumulator_matches_connection_shape(self):
        rule = SpikeDynLearningRule()
        _, _, connection = make_connection(6, 5, rule=rule)
        rule.on_sample_start(connection)
        assert rule.accumulator.n_pre == 6
        assert rule.accumulator.n_post == 5

    def test_sample_end_resets_accumulator(self):
        rule = SpikeDynLearningRule(update_interval=4.0)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        drive(rule, connection, pre, post, [1, 1, 1, 1], [1, 1, 1], steps=4)
        rule.on_sample_end(connection)
        assert rule.accumulator.max_pre == 0
        assert rule.accumulator.max_post == 0

    def test_reset_drops_the_accumulator(self):
        rule = SpikeDynLearningRule()
        _, _, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        rule.reset()
        assert rule.accumulator is None

    def test_weights_stay_within_bounds_under_random_drive(self):
        rule = SpikeDynLearningRule(update_interval=5.0, nu_post=1.0, nu_pre=1.0,
                                    weight_decay=SynapticWeightDecay(0.5, 10.0))
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        rng = np.random.default_rng(3)
        for t in range(60):
            pre.spikes = rng.random(4) < 0.5
            post.spikes = rng.random(3) < 0.4
            rule.step(connection, 1.0, t)
        assert connection.weights.min() >= connection.w_min
        assert connection.weights.max() <= connection.w_max

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpikeDynLearningRule(update_interval=0.0)
        with pytest.raises(ValueError):
            SpikeDynLearningRule(nu_pre=-1.0)

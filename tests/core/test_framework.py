"""Tests for the SpikeDynFramework facade (paper Fig. 3 tool flow)."""

from __future__ import annotations

import pytest

from repro.core.config import SpikeDynConfig
from repro.core.framework import SpikeDynFramework
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.estimation.hardware import JETSON_NANO
from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts
from repro.evaluation.protocols import DynamicProtocolResult, NonDynamicProtocolResult
from repro.models.spikedyn_model import SpikeDynModel


@pytest.fixture
def config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=64, n_exc=8, t_sim=20.0, seed=0)


@pytest.fixture
def framework(config) -> SpikeDynFramework:
    return SpikeDynFramework(config, rng=0)


@pytest.fixture
def source() -> SyntheticDigits:
    return SyntheticDigits(image_size=8, seed=0)


def memory_of(config: SpikeDynConfig, n_exc: int) -> float:
    return architecture_parameter_counts(
        ARCH_SPIKEDYN, config.n_input, n_exc
    ).memory_bytes(config.bit_precision)


class TestModelSearchIntegration:
    def test_default_size_without_search(self, framework, config):
        assert framework.selected_network_size() == config.n_exc

    def test_search_updates_the_selected_size(self, framework, config):
        budget = memory_of(config, 12) * 1.01
        result = framework.search_model(memory_budget_bytes=budget, n_add=4)
        assert result is framework.search_result
        assert framework.selected_network_size() == 12

    def test_failed_search_falls_back_to_the_default(self, framework, config):
        framework.search_model(memory_budget_bytes=16.0, n_add=4)
        assert framework.selected_network_size() == config.n_exc

    def test_build_model_uses_the_selected_size(self, framework, config):
        budget = memory_of(config, 12) * 1.01
        framework.search_model(memory_budget_bytes=budget, n_add=4)
        model = framework.build_model()
        assert isinstance(model, SpikeDynModel)
        assert model.n_exc == 12

    def test_build_model_with_explicit_size(self, framework):
        assert framework.build_model(n_exc=5).n_exc == 5


class TestProtocols:
    def test_run_dynamic(self, framework, source):
        model = framework.build_model(n_exc=6)
        result = framework.run_dynamic(
            model, source, class_sequence=[0, 1], samples_per_task=2,
            eval_samples_per_class=2,
        )
        assert isinstance(result, DynamicProtocolResult)
        assert result.class_sequence == [0, 1]
        assert set(result.recent_task_accuracy) == {0, 1}

    def test_run_nondynamic(self, framework, source):
        model = framework.build_model(n_exc=6)
        result = framework.run_nondynamic(
            model, source, checkpoints=(2, 4), classes=[0, 1],
            eval_samples_per_class=2,
        )
        assert isinstance(result, NonDynamicProtocolResult)
        assert result.checkpoints == [2, 4]
        assert set(result.accuracy_at_checkpoint) == {2, 4}


class TestEstimation:
    def test_estimate_memory_matches_the_analytical_model(self, framework, config):
        assert framework.estimate_memory_bytes(n_exc=10) == pytest.approx(
            memory_of(config, 10)
        )

    def test_estimate_phase_energy_scales_with_sample_count(self, framework, source):
        model = framework.build_model(n_exc=6)
        image = source.generate(0, 1, rng=0)[0]
        small = framework.estimate_phase_energy(model, image, learning=False,
                                                n_samples=10)
        large = framework.estimate_phase_energy(model, image, learning=False,
                                                n_samples=1000)
        assert large.joules > small.joules

    def test_device_selection_changes_the_energy_conversion(self, config, source):
        gpu = SpikeDynFramework(config, rng=0)
        embedded = SpikeDynFramework(config, device=JETSON_NANO, rng=0)
        image = source.generate(0, 1, rng=0)[0]
        gpu_estimate = gpu.estimate_phase_energy(
            gpu.build_model(n_exc=6), image, learning=False, n_samples=10
        )
        embedded_estimate = embedded.estimate_phase_energy(
            embedded.build_model(n_exc=6), image, learning=False, n_samples=10
        )
        assert embedded_estimate.seconds > gpu_estimate.seconds

    def test_estimate_phase_energy_requires_positive_samples(self, framework, source):
        model = framework.build_model(n_exc=6)
        image = source.generate(0, 1, rng=0)[0]
        with pytest.raises(ValueError):
            framework.estimate_phase_energy(model, image, learning=True, n_samples=0)

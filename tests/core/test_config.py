"""Tests for the SpikeDyn configuration dataclass."""

from __future__ import annotations

import pytest

from repro.core.config import SpikeDynConfig
from repro.core.weight_decay import DECAY_SCALE


class TestDefaults:
    def test_paper_defaults(self):
        config = SpikeDynConfig()
        assert config.n_input == 784
        assert config.n_exc == 400
        assert config.t_sim == 350.0
        assert config.max_rate == 63.75
        assert config.bit_precision == 32

    def test_paper_n200_and_n400_presets(self):
        assert SpikeDynConfig.paper_n200().n_exc == 200
        assert SpikeDynConfig.paper_n400().n_exc == 400

    def test_scaled_down_preset(self):
        config = SpikeDynConfig.scaled_down(n_exc=16)
        assert config.n_exc == 16
        assert config.n_input == 196
        assert config.t_rest == 0.0
        assert config.t_sim < 350.0


class TestDerivedQuantities:
    def test_effective_w_decay_defaults_to_inverse_network_size(self):
        config = SpikeDynConfig(n_exc=400)
        assert config.effective_w_decay == pytest.approx(DECAY_SCALE / 400)

    def test_paper_best_decay_value_at_n400(self):
        """The default scale recovers the paper's w_decay = 1e-2 at N400 (Fig. 6)."""
        assert SpikeDynConfig(n_exc=400).effective_w_decay == pytest.approx(1e-2)

    def test_explicit_w_decay_wins(self):
        config = SpikeDynConfig(n_exc=400, w_decay=0.5)
        assert config.effective_w_decay == 0.5

    def test_effective_norm_total_default(self):
        config = SpikeDynConfig(n_input=784)
        assert config.effective_norm_total == pytest.approx(78.4)

    def test_explicit_norm_total_wins(self):
        assert SpikeDynConfig(norm_total=10.0).effective_norm_total == 10.0

    def test_adaptation_potential_formula(self):
        config = SpikeDynConfig(c_theta=0.5, theta_decay=1e-3, t_sim=350.0)
        assert config.adaptation_potential == pytest.approx(0.5 * 1e-3 * 350.0)

    def test_tau_theta_is_inverse_decay_rate(self):
        config = SpikeDynConfig(theta_decay=1e-3)
        assert config.tau_theta == pytest.approx(1000.0)

    def test_tau_theta_with_zero_decay_is_infinite(self):
        assert SpikeDynConfig(theta_decay=0.0).tau_theta == float("inf")

    def test_simulation_parameters(self):
        config = SpikeDynConfig(dt=0.5, t_sim=100.0, t_rest=50.0)
        params = config.simulation_parameters()
        assert params.dt == 0.5
        assert params.steps_per_sample == 200
        assert params.rest_steps == 100


class TestCopies:
    def test_with_network_size(self):
        base = SpikeDynConfig(n_exc=200, seed=7)
        resized = base.with_network_size(400)
        assert resized.n_exc == 400
        assert resized.seed == 7
        assert base.n_exc == 200

    def test_replace(self):
        config = SpikeDynConfig().replace(nu_post=0.5, seed=9)
        assert config.nu_post == 0.5
        assert config.seed == 9


class TestSerialization:
    def test_round_trip(self):
        original = SpikeDynConfig(n_exc=123, w_decay=0.02, seed=5)
        rebuilt = SpikeDynConfig.from_dict(original.to_dict())
        assert rebuilt == original

    def test_unknown_fields_are_rejected(self):
        data = SpikeDynConfig().to_dict()
        data["mystery_field"] = 1
        with pytest.raises(ValueError, match="mystery_field"):
            SpikeDynConfig.from_dict(data)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"n_input": 0},
        {"n_exc": -1},
        {"dt": 0.0},
        {"t_sim": -10.0},
        {"t_rest": -1.0},
        {"tau_m": 0.0},
        {"spike_threshold": 0.0},
        {"update_interval": 0.0},
        {"w_decay": -0.1},
        {"bit_precision": 0},
    ])
    def test_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            SpikeDynConfig(**kwargs)

    def test_w_max_must_exceed_w_min(self):
        with pytest.raises(ValueError):
            SpikeDynConfig(w_min=1.0, w_max=0.5)

    def test_update_interval_must_fit_presentation_window(self):
        with pytest.raises(ValueError):
            SpikeDynConfig(t_sim=5.0, update_interval=10.0)

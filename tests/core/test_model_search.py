"""Tests for the memory- and energy-constrained model search (Alg. 1)."""

from __future__ import annotations

import pytest

from repro.core.config import SpikeDynConfig
from repro.core.model_search import ModelSearchResult, search_snn_model
from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO
from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts


@pytest.fixture
def base_config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=64, n_exc=8, t_sim=20.0, seed=0)


def memory_of(config: SpikeDynConfig, n_exc: int) -> float:
    return architecture_parameter_counts(
        ARCH_SPIKEDYN, config.n_input, n_exc
    ).memory_bytes(config.bit_precision)


class TestMemoryConstrainedSweep:
    def test_explores_sizes_in_steps_of_n_add(self, base_config):
        budget = memory_of(base_config, 16) * 1.01
        result = search_snn_model(base_config, memory_budget_bytes=budget, n_add=4)
        assert [candidate.n_exc for candidate in result.candidates] == [4, 8, 12, 16]

    def test_stops_at_the_memory_budget(self, base_config):
        budget = memory_of(base_config, 8) * 1.01
        result = search_snn_model(base_config, memory_budget_bytes=budget, n_add=4)
        assert all(candidate.memory_bytes <= budget for candidate in result.candidates)
        assert max(candidate.n_exc for candidate in result.candidates) == 8

    def test_selects_the_largest_feasible_candidate(self, base_config):
        budget = memory_of(base_config, 12) * 1.01
        result = search_snn_model(base_config, memory_budget_bytes=budget, n_add=4)
        assert result.selected is not None
        assert result.selected.n_exc == 12

    def test_no_candidate_fits_a_tiny_budget(self, base_config):
        result = search_snn_model(base_config, memory_budget_bytes=16.0, n_add=4)
        assert result.candidates == []
        assert result.selected is None

    def test_candidates_record_both_phase_energies(self, base_config):
        budget = memory_of(base_config, 8) * 1.01
        result = search_snn_model(base_config, memory_budget_bytes=budget, n_add=4)
        for candidate in result.candidates:
            assert candidate.feasible
            assert candidate.sample_training_energy is not None
            assert candidate.sample_inference_energy is not None
            assert candidate.training_energy.joules > 0
            assert candidate.inference_energy.joules > 0

    def test_total_energy_is_single_sample_times_n(self, base_config):
        budget = memory_of(base_config, 4) * 1.01
        result = search_snn_model(
            base_config, memory_budget_bytes=budget, n_add=4,
            n_training_samples=1000, n_inference_samples=100,
        )
        candidate = result.candidates[0]
        assert candidate.training_energy.joules == pytest.approx(
            candidate.sample_training_energy.joules * 1000
        )
        assert candidate.inference_energy.joules == pytest.approx(
            candidate.sample_inference_energy.joules * 100
        )


class TestEnergyConstraints:
    def test_training_budget_rejects_candidates(self, base_config):
        budget = memory_of(base_config, 8) * 1.01
        result = search_snn_model(
            base_config, memory_budget_bytes=budget, n_add=4,
            training_energy_budget_joules=1e-12,
        )
        assert result.selected is None
        assert all(not candidate.feasible for candidate in result.candidates)
        assert all("training" in candidate.rejection_reason
                   for candidate in result.candidates)

    def test_inference_budget_rejects_candidates(self, base_config):
        budget = memory_of(base_config, 8) * 1.01
        result = search_snn_model(
            base_config, memory_budget_bytes=budget, n_add=4,
            inference_energy_budget_joules=1e-12,
        )
        assert result.selected is None
        assert all("inference" in candidate.rejection_reason
                   for candidate in result.candidates)

    def test_generous_budgets_accept_candidates(self, base_config):
        budget = memory_of(base_config, 8) * 1.01
        result = search_snn_model(
            base_config, memory_budget_bytes=budget, n_add=4,
            training_energy_budget_joules=1e12,
            inference_energy_budget_joules=1e12,
        )
        assert result.selected is not None
        assert result.feasible_candidates

    def test_device_affects_energy_but_not_selection(self, base_config):
        budget = memory_of(base_config, 8) * 1.01
        slow = search_snn_model(base_config, memory_budget_bytes=budget, n_add=4,
                                device=JETSON_NANO, rng=0)
        fast = search_snn_model(base_config, memory_budget_bytes=budget, n_add=4,
                                device=GTX_1080_TI, rng=0)
        assert slow.selected.n_exc == fast.selected.n_exc
        assert (slow.candidates[0].sample_training_energy.seconds
                > fast.candidates[0].sample_training_energy.seconds)


class TestSearchResultHelpers:
    def test_exploration_time_is_much_cheaper_than_actual_runs(self, base_config):
        budget = memory_of(base_config, 8) * 1.01
        result = search_snn_model(base_config, memory_budget_bytes=budget, n_add=4)
        exploration = result.exploration_time_seconds()
        actual = result.actual_run_time_seconds(60_000, 10_000)
        assert exploration > 0
        assert actual > exploration * 1_000

    def test_empty_result_has_no_feasible_candidates(self):
        result = ModelSearchResult()
        assert result.feasible_candidates == []
        assert result.exploration_time_seconds() == 0.0

    def test_invalid_budgets_are_rejected(self, base_config):
        with pytest.raises(ValueError):
            search_snn_model(base_config, memory_budget_bytes=0.0)
        with pytest.raises(ValueError):
            search_snn_model(base_config, memory_budget_bytes=1e6, n_add=0)
        with pytest.raises(ValueError):
            search_snn_model(base_config, memory_budget_bytes=1e6,
                             training_energy_budget_joules=0.0)

"""Tests for post-training weight quantization (the BP knob of Section III-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.core.quantization import (
    QuantizationReport,
    quantization_error,
    quantization_levels,
    quantize_model_weights,
    quantize_weights,
)
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.estimation.memory import ARCH_SPIKEDYN, architecture_parameter_counts
from repro.models.spikedyn_model import SpikeDynModel


class TestQuantizationLevels:
    def test_level_count(self):
        assert quantization_levels(1, 0.0, 1.0).size == 2
        assert quantization_levels(4, 0.0, 1.0).size == 16

    def test_levels_span_the_bounds(self):
        levels = quantization_levels(3, 0.2, 0.8)
        assert levels[0] == pytest.approx(0.2)
        assert levels[-1] == pytest.approx(0.8)
        assert np.all(np.diff(levels) > 0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            quantization_levels(0, 0.0, 1.0)
        with pytest.raises(ValueError):
            quantization_levels(33, 0.0, 1.0)
        with pytest.raises(ValueError):
            quantization_levels(4, 1.0, 0.5)


class TestQuantizeWeights:
    def test_one_bit_snaps_to_the_bounds(self):
        weights = np.array([0.1, 0.4, 0.6, 0.9])
        quantized = quantize_weights(weights, 1, w_min=0.0, w_max=1.0)
        np.testing.assert_allclose(quantized, [0.0, 0.0, 1.0, 1.0])

    def test_values_land_on_the_level_grid(self):
        rng = np.random.default_rng(0)
        weights = rng.random((6, 7))
        quantized = quantize_weights(weights, 3, w_min=0.0, w_max=1.0)
        levels = quantization_levels(3, 0.0, 1.0)
        for value in quantized.ravel():
            assert np.isclose(levels, value).any()

    def test_quantization_is_idempotent(self):
        rng = np.random.default_rng(1)
        weights = rng.random((5, 5))
        once = quantize_weights(weights, 4, w_min=0.0, w_max=1.0)
        twice = quantize_weights(once, 4, w_min=0.0, w_max=1.0)
        np.testing.assert_allclose(once, twice)

    def test_out_of_range_values_are_clipped(self):
        quantized = quantize_weights(np.array([-1.0, 2.0]), 2, w_min=0.0, w_max=1.0)
        assert quantized[0] == 0.0
        assert quantized[1] == 1.0

    def test_input_is_not_modified(self):
        weights = np.array([0.31, 0.77])
        quantize_weights(weights, 2, w_min=0.0, w_max=1.0)
        np.testing.assert_allclose(weights, [0.31, 0.77])

    def test_high_precision_is_a_clip_only(self):
        rng = np.random.default_rng(2)
        weights = rng.random((4, 4))
        np.testing.assert_allclose(
            quantize_weights(weights, 32, w_min=0.0, w_max=1.0), weights
        )

    def test_error_decreases_with_more_bits(self):
        rng = np.random.default_rng(3)
        weights = rng.random((20, 20))
        errors = [quantization_error(weights, bits, w_min=0.0, w_max=1.0)
                  for bits in (1, 2, 4, 8)]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.01

    def test_maximum_error_is_half_a_step(self):
        rng = np.random.default_rng(4)
        weights = rng.random(1000)
        bits = 3
        quantized = quantize_weights(weights, bits, w_min=0.0, w_max=1.0)
        step = 1.0 / (2 ** bits - 1)
        assert np.max(np.abs(weights - quantized)) <= step / 2 + 1e-12


class TestQuantizeModelWeights:
    @pytest.fixture
    def trained_model(self) -> SpikeDynModel:
        config = SpikeDynConfig.scaled_down(n_input=64, n_exc=8, t_sim=20.0, seed=0)
        model = SpikeDynModel(config)
        source = SyntheticDigits(image_size=8, seed=0)
        for image in source.generate(0, 3, rng=0):
            model.train_sample(image)
        return model

    def test_report_contents(self, trained_model):
        report = quantize_model_weights(trained_model, 8)
        assert isinstance(report, QuantizationReport)
        counts = architecture_parameter_counts(ARCH_SPIKEDYN, 64, 8)
        assert report.memory_bytes == pytest.approx(counts.memory_bytes(8))
        assert report.full_precision_memory_bytes == pytest.approx(
            counts.memory_bytes(32)
        )
        assert report.memory_saving == pytest.approx(0.75)
        assert report.rms_error >= 0.0

    def test_weights_are_modified_in_place(self, trained_model):
        before = trained_model.input_weights.copy()
        quantize_model_weights(trained_model, 2)
        after = trained_model.input_weights
        levels = quantization_levels(2, 0.0, 1.0)
        assert not np.array_equal(before, after)
        for value in after.ravel():
            assert np.isclose(levels, value).any()

    def test_model_still_responds_after_quantization(self, trained_model):
        source = SyntheticDigits(image_size=8, seed=1)
        image = source.generate(0, 1, rng=1)[0]
        quantize_model_weights(trained_model, 4)
        counts = trained_model.respond(image)
        assert counts.shape == (8,)

    def test_coarser_precision_perturbs_more(self, trained_model):
        fine = quantize_model_weights(trained_model, 16, reference_bits=32)
        # Re-train slightly so the weights are off-grid again before the
        # coarse pass (quantization is idempotent otherwise).
        source = SyntheticDigits(image_size=8, seed=2)
        for image in source.generate(1, 2, rng=2):
            trained_model.train_sample(image)
        coarse = quantize_model_weights(trained_model, 2, reference_bits=32)
        assert coarse.rms_error > fine.rms_error
        assert coarse.memory_saving > fine.memory_saving

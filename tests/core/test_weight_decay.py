"""Tests for the synaptic weight decay (paper Section III-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weight_decay import (
    DECAY_SCALE,
    SynapticWeightDecay,
    decay_rate_for_network_size,
)
from repro.snn.simulation import OperationCounter


class TestDecayRateForNetworkSize:
    def test_inverse_proportionality(self):
        # w_decay ∝ 1 / n_exc: halving the network doubles the decay rate.
        assert decay_rate_for_network_size(200) == pytest.approx(
            2.0 * decay_rate_for_network_size(400)
        )

    def test_paper_value_at_n400(self):
        assert decay_rate_for_network_size(400) == pytest.approx(1e-2)

    def test_custom_scale(self):
        assert decay_rate_for_network_size(100, scale=1.0) == pytest.approx(0.01)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            decay_rate_for_network_size(0)


class TestSynapticWeightDecay:
    def test_enabled_flag(self):
        assert SynapticWeightDecay(0.01).enabled
        assert not SynapticWeightDecay(0.0).enabled

    def test_decay_fraction_closed_form(self):
        decay = SynapticWeightDecay(w_decay=0.01, tau_decay=100.0)
        fraction = decay.decay_fraction(50.0)
        assert fraction == pytest.approx(1.0 - np.exp(-0.01 * 50.0 / 100.0))

    def test_zero_elapsed_time_means_no_decay(self):
        assert SynapticWeightDecay(0.01).decay_fraction(0.0) == 0.0

    def test_disabled_decay_never_shrinks(self):
        decay = SynapticWeightDecay(0.0)
        weights = np.full((3, 3), 0.5)
        decay.apply(weights, 1000.0)
        np.testing.assert_allclose(weights, 0.5)

    def test_apply_shrinks_in_place(self):
        decay = SynapticWeightDecay(w_decay=1.0, tau_decay=10.0)
        weights = np.full((2, 2), 1.0)
        returned = decay.apply(weights, 10.0)
        assert returned is weights
        np.testing.assert_allclose(weights, np.exp(-1.0))

    def test_decay_is_multiplicative_so_zero_weights_stay_zero(self):
        decay = SynapticWeightDecay(w_decay=0.5, tau_decay=10.0)
        weights = np.array([[0.0, 0.8]])
        decay.apply(weights, 20.0)
        assert weights[0, 0] == 0.0
        assert 0.0 < weights[0, 1] < 0.8

    def test_two_half_windows_equal_one_full_window(self):
        """Lazily applying the decay over a window is exact (linear ODE)."""
        one_shot = np.full((2, 2), 0.7)
        split = np.full((2, 2), 0.7)
        decay = SynapticWeightDecay(w_decay=0.05, tau_decay=100.0)
        decay.apply(one_shot, 20.0)
        decay.apply(split, 10.0)
        decay.apply(split, 10.0)
        np.testing.assert_allclose(one_shot, split)

    def test_counter_records_updates(self):
        decay = SynapticWeightDecay(0.1)
        counter = OperationCounter()
        decay.apply(np.ones((4, 5)), 10.0, counter)
        assert counter.weight_updates == 20

    def test_for_network_size_constructor(self):
        decay = SynapticWeightDecay.for_network_size(400)
        assert decay.w_decay == pytest.approx(DECAY_SCALE / 400)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            SynapticWeightDecay(-0.1)
        with pytest.raises(ValueError):
            SynapticWeightDecay(0.1, tau_decay=0.0)

    def test_negative_elapsed_time_rejected(self):
        with pytest.raises(ValueError):
            SynapticWeightDecay(0.1).decay_fraction(-1.0)

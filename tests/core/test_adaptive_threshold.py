"""Tests for the adaptive membrane threshold potential (paper Section III-D)."""

from __future__ import annotations

import pytest

from repro.core.adaptive_threshold import AdaptiveThresholdPolicy, adaptation_potential
from repro.snn.neurons import AdaptiveLIFGroup, LIFGroup


class TestAdaptationPotential:
    def test_formula(self):
        # theta = c_theta * theta_decay * t_sim
        assert adaptation_potential(1.0, 1e-3, 350.0) == pytest.approx(0.35)

    def test_scales_linearly_in_each_factor(self):
        base = adaptation_potential(1.0, 1e-3, 350.0)
        assert adaptation_potential(2.0, 1e-3, 350.0) == pytest.approx(2 * base)
        assert adaptation_potential(1.0, 2e-3, 350.0) == pytest.approx(2 * base)
        assert adaptation_potential(1.0, 1e-3, 700.0) == pytest.approx(2 * base)

    def test_zero_constant_disables_adaptation(self):
        assert adaptation_potential(0.0, 1e-3, 350.0) == 0.0

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            adaptation_potential(-1.0, 1e-3, 350.0)
        with pytest.raises(ValueError):
            adaptation_potential(1.0, -1e-3, 350.0)
        with pytest.raises(ValueError):
            adaptation_potential(1.0, 1e-3, 0.0)


class TestAdaptiveThresholdPolicy:
    def test_theta_property(self):
        policy = AdaptiveThresholdPolicy(c_theta=0.5, theta_decay=1e-2, t_sim=100.0)
        assert policy.theta == pytest.approx(0.5 * 1e-2 * 100.0)

    def test_configure_group_installs_theta_plus_and_decay(self):
        group = AdaptiveLIFGroup(4, theta_plus=0.05, tau_theta=1e7)
        policy = AdaptiveThresholdPolicy(c_theta=1.0, theta_decay=1e-3, t_sim=350.0)
        configured = policy.configure_group(group)
        assert configured is group
        assert group.theta_plus == pytest.approx(0.35)
        assert group.tau_theta == pytest.approx(1000.0)

    def test_zero_decay_keeps_group_time_constant(self):
        group = AdaptiveLIFGroup(4, tau_theta=1e7)
        AdaptiveThresholdPolicy(theta_decay=0.0, c_theta=1.0).configure_group(group)
        assert group.tau_theta == pytest.approx(1e7)
        assert group.theta_plus == 0.0

    def test_requires_an_adaptive_group(self):
        policy = AdaptiveThresholdPolicy()
        with pytest.raises(TypeError):
            policy.configure_group(LIFGroup(4))

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveThresholdPolicy(c_theta=-1.0)
        with pytest.raises(ValueError):
            AdaptiveThresholdPolicy(t_sim=0.0)

"""Tests for the adaptive learning-rate factors (paper Eq. 1)."""

from __future__ import annotations

import math

import pytest

from repro.core.adaptive_rates import (
    AdaptiveLearningRates,
    depression_factor,
    potentiation_factor,
)


class TestPotentiationFactor:
    def test_matches_ceiling_formula(self):
        # kp = ceil(maxSp_post / Sp_th)  (Eq. 1a)
        assert potentiation_factor(7, 4.0) == math.ceil(7 / 4.0)
        assert potentiation_factor(8, 4.0) == 2.0
        assert potentiation_factor(9, 4.0) == 3.0

    def test_zero_activity_gives_zero_factor(self):
        assert potentiation_factor(0, 4.0) == 0.0

    def test_small_activity_rounds_up_to_one(self):
        assert potentiation_factor(1, 4.0) == 1.0

    def test_grows_monotonically_with_activity(self):
        values = [potentiation_factor(n, 4.0) for n in range(0, 30)]
        assert values == sorted(values)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            potentiation_factor(3, 0.0)

    def test_negative_activity_rejected(self):
        with pytest.raises(ValueError):
            potentiation_factor(-1, 4.0)


class TestDepressionFactor:
    def test_matches_ratio_formula(self):
        # kd = maxSp_post / maxSp_pre  (Eq. 1b)
        assert depression_factor(2, 8) == pytest.approx(0.25)
        assert depression_factor(8, 8) == pytest.approx(1.0)

    def test_zero_presynaptic_activity_gives_zero(self):
        assert depression_factor(5, 0) == 0.0

    def test_zero_postsynaptic_activity_gives_zero(self):
        assert depression_factor(0, 10) == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            depression_factor(-1, 5)
        with pytest.raises(ValueError):
            depression_factor(1, -5)


class TestAdaptiveLearningRatesContainer:
    def test_kp_uses_configured_threshold(self):
        rates = AdaptiveLearningRates(spike_threshold=2.0)
        assert rates.kp(5) == 3.0

    def test_kd_delegates_to_ratio(self):
        rates = AdaptiveLearningRates()
        assert rates.kd(3, 12) == pytest.approx(0.25)

    def test_default_threshold_matches_paper_config(self):
        assert AdaptiveLearningRates().spike_threshold == 4.0

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError):
            AdaptiveLearningRates(spike_threshold=0.0)

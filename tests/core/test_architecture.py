"""Tests for the network-architecture builders (paper Section III-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import (
    EXC_TO_INH_STRENGTH,
    build_baseline_network,
    build_spikedyn_network,
)
from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule
from repro.learning.stdp import PairwiseSTDP
from repro.snn.neurons import AdaptiveLIFGroup, InputGroup, LIFGroup
from repro.snn.synapses import UniformLateralInhibition


@pytest.fixture
def config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=16, n_exc=6, seed=0)


class TestBaselineArchitecture:
    def test_three_layers(self, config):
        network = build_baseline_network(config, learning_rule=PairwiseSTDP())
        assert set(network.groups) == {"input", "excitatory", "inhibitory"}
        assert isinstance(network.group("input"), InputGroup)
        assert isinstance(network.group("excitatory"), AdaptiveLIFGroup)
        assert isinstance(network.group("inhibitory"), LIFGroup)

    def test_layer_sizes(self, config):
        network = build_baseline_network(config, learning_rule=PairwiseSTDP())
        assert network.group("input").n == 16
        assert network.group("excitatory").n == 6
        assert network.group("inhibitory").n == 6

    def test_three_connections(self, config):
        network = build_baseline_network(config, learning_rule=PairwiseSTDP())
        names = {connection.name for connection in network.connections}
        assert names == {"input_to_exc", "exc_to_inh", "inh_to_exc"}

    def test_exc_to_inh_is_one_to_one(self, config):
        network = build_baseline_network(config, learning_rule=PairwiseSTDP())
        weights = network.connection("exc_to_inh").weights
        np.testing.assert_allclose(np.diag(weights), EXC_TO_INH_STRENGTH)
        assert np.count_nonzero(weights) == config.n_exc

    def test_inh_to_exc_is_dense_without_self(self, config):
        network = build_baseline_network(config, learning_rule=PairwiseSTDP())
        connection = network.connection("inh_to_exc")
        assert connection.sign == -1
        np.testing.assert_allclose(np.diag(connection.weights), 0.0)
        assert np.count_nonzero(connection.weights) == config.n_exc * (config.n_exc - 1)

    def test_learning_rule_is_attached_to_input_projection_only(self, config):
        rule = PairwiseSTDP()
        network = build_baseline_network(config, learning_rule=rule)
        assert network.connection("input_to_exc").learning_rule is rule
        assert network.connection("exc_to_inh").learning_rule is None
        assert network.connection("inh_to_exc").learning_rule is None

    def test_input_weights_are_seed_reproducible(self, config):
        a = build_baseline_network(config, learning_rule=PairwiseSTDP(), rng=5)
        b = build_baseline_network(config, learning_rule=PairwiseSTDP(), rng=5)
        np.testing.assert_array_equal(
            a.connection("input_to_exc").weights,
            b.connection("input_to_exc").weights,
        )

    def test_custom_inhibition_strength(self, config):
        network = build_baseline_network(
            config, learning_rule=PairwiseSTDP(), inh_to_exc_strength=3.0
        )
        weights = network.connection("inh_to_exc").weights
        assert weights.max() == pytest.approx(3.0)


class TestSpikeDynArchitecture:
    def test_no_inhibitory_layer(self, config):
        network = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        assert set(network.groups) == {"input", "excitatory"}

    def test_two_connections_with_lateral_inhibition(self, config):
        network = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        names = {connection.name for connection in network.connections}
        assert names == {"input_to_exc", "lateral_inhibition"}
        lateral = network.connection("lateral_inhibition")
        assert isinstance(lateral, UniformLateralInhibition)
        assert lateral.strength == config.inhibition_strength

    def test_threshold_policy_is_installed(self, config):
        network = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        excitatory = network.group("excitatory")
        assert excitatory.theta_plus == pytest.approx(config.adaptation_potential)
        assert excitatory.tau_theta == pytest.approx(config.tau_theta)

    def test_fewer_parameters_than_the_baseline(self, config):
        baseline = build_baseline_network(config, learning_rule=PairwiseSTDP())
        spikedyn = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        assert spikedyn.weight_count < baseline.weight_count
        assert spikedyn.neuron_parameter_count < baseline.neuron_parameter_count

    def test_input_projection_uses_configured_normalization(self, config):
        network = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        connection = network.connection("input_to_exc")
        assert connection.norm == pytest.approx(config.effective_norm_total)

    def test_same_seed_gives_same_input_weights_as_baseline(self, config):
        """Both architectures share the input-projection initialisation."""
        baseline = build_baseline_network(config, learning_rule=PairwiseSTDP(), rng=2)
        spikedyn = build_spikedyn_network(
            config, learning_rule=SpikeDynLearningRule(), rng=2
        )
        np.testing.assert_array_equal(
            baseline.connection("input_to_exc").weights,
            spikedyn.connection("input_to_exc").weights,
        )

    def test_networks_run_a_sample(self, config):
        """Both architectures are runnable end to end."""
        for build, rule in (
            (build_baseline_network, PairwiseSTDP()),
            (build_spikedyn_network, SpikeDynLearningRule()),
        ):
            network = build(config, learning_rule=rule)
            train = np.random.default_rng(0).random((20, 16)) < 0.6
            result = network.run_sample(train, learning=True)
            assert result.counts("excitatory").shape == (6,)

"""Tests for the spike accumulator used by spurious-update reduction (Alg. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spurious import SpikeAccumulator


class TestConstruction:
    def test_starts_empty(self):
        accumulator = SpikeAccumulator(4, 3)
        assert accumulator.max_pre == 0
        assert accumulator.max_post == 0
        assert not accumulator.post_spiked_in_window

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            SpikeAccumulator(0, 3)
        with pytest.raises(ValueError):
            SpikeAccumulator(4, 0)


class TestAccumulation:
    def test_counts_accumulate_per_neuron(self):
        accumulator = SpikeAccumulator(3, 2)
        accumulator.update(np.array([1, 0, 1], bool), np.array([0, 1], bool))
        accumulator.update(np.array([1, 0, 0], bool), np.array([0, 1], bool))
        np.testing.assert_array_equal(accumulator.pre_counts, [2, 0, 1])
        np.testing.assert_array_equal(accumulator.post_counts, [0, 2])

    def test_max_statistics(self):
        accumulator = SpikeAccumulator(3, 2)
        for _ in range(5):
            accumulator.update(np.array([1, 1, 0], bool), np.array([1, 0], bool))
        assert accumulator.max_pre == 5
        assert accumulator.max_post == 5

    def test_most_active_post(self):
        accumulator = SpikeAccumulator(2, 3)
        accumulator.update(np.zeros(2, bool), np.array([0, 1, 1], bool))
        accumulator.update(np.zeros(2, bool), np.array([0, 0, 1], bool))
        assert accumulator.most_active_post == 2

    def test_update_validates_shapes(self):
        accumulator = SpikeAccumulator(3, 2)
        with pytest.raises(ValueError):
            accumulator.update(np.zeros(2, bool), np.zeros(2, bool))
        with pytest.raises(ValueError):
            accumulator.update(np.zeros(3, bool), np.zeros(3, bool))


class TestWindowing:
    def test_window_flag_tracks_postsynaptic_spikes(self):
        accumulator = SpikeAccumulator(2, 2)
        accumulator.update(np.ones(2, bool), np.zeros(2, bool))
        assert not accumulator.post_spiked_in_window
        accumulator.update(np.zeros(2, bool), np.array([1, 0], bool))
        assert accumulator.post_spiked_in_window

    def test_close_window_resets_only_window_counts(self):
        accumulator = SpikeAccumulator(2, 2)
        accumulator.update(np.ones(2, bool), np.ones(2, bool))
        accumulator.close_window()
        assert not accumulator.post_spiked_in_window
        # Sample-level accumulated counts survive the window boundary.
        assert accumulator.max_post == 1
        assert accumulator.max_pre == 1

    def test_reset_clears_everything(self):
        accumulator = SpikeAccumulator(2, 2)
        accumulator.update(np.ones(2, bool), np.ones(2, bool))
        accumulator.reset()
        assert accumulator.max_pre == 0
        assert accumulator.max_post == 0
        assert not accumulator.post_spiked_in_window

    def test_paper_figure7_scenario(self):
        """Fig. 7: a window with postsynaptic spikes potentiates, one without
        depresses — the accumulator exposes exactly that decision signal."""
        accumulator = SpikeAccumulator(4, 2)
        # First window: both pre and post spikes occur.
        for _ in range(3):
            accumulator.update(np.array([1, 1, 0, 0], bool), np.array([1, 0], bool))
        first_window_had_post = accumulator.post_spiked_in_window
        accumulator.close_window()
        # Second window: only presynaptic spikes.
        for _ in range(3):
            accumulator.update(np.array([1, 0, 1, 0], bool), np.zeros(2, bool))
        second_window_had_post = accumulator.post_spiked_in_window
        assert first_window_had_post
        assert not second_window_had_post

"""Tests for the Poisson rate encoder (the paper's coding scheme)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.rate import PoissonRateEncoder


class TestSpikeProbabilities:
    def test_peak_intensity_maps_to_max_rate(self):
        encoder = PoissonRateEncoder(duration=100.0, dt=1.0, max_rate=100.0)
        probabilities = encoder.spike_probabilities(np.array([1.0, 0.5, 0.0]))
        assert probabilities[0] == pytest.approx(0.1)
        assert probabilities[1] == pytest.approx(0.05)
        assert probabilities[2] == pytest.approx(0.0)

    def test_intensity_scale_multiplies_rates(self):
        encoder = PoissonRateEncoder(duration=100.0, dt=1.0, max_rate=100.0,
                                     intensity_scale=2.0)
        probabilities = encoder.spike_probabilities(np.array([1.0]))
        assert probabilities[0] == pytest.approx(0.2)

    def test_probabilities_are_clipped_to_one(self):
        encoder = PoissonRateEncoder(duration=10.0, dt=1.0, max_rate=5000.0)
        probabilities = encoder.spike_probabilities(np.array([1.0]))
        assert probabilities[0] == 1.0

    def test_inputs_are_normalized_by_their_peak(self):
        encoder = PoissonRateEncoder(duration=10.0, dt=1.0, max_rate=100.0)
        a = encoder.spike_probabilities(np.array([2.0, 1.0]))
        b = encoder.spike_probabilities(np.array([1.0, 0.5]))
        np.testing.assert_allclose(a, b)

    def test_negative_intensities_rejected(self):
        encoder = PoissonRateEncoder()
        with pytest.raises(ValueError):
            encoder.spike_probabilities(np.array([-0.5, 1.0]))

    def test_empty_input_rejected(self):
        encoder = PoissonRateEncoder()
        with pytest.raises(ValueError):
            encoder.encode(np.array([]))


class TestEncode:
    def test_output_shape_and_dtype(self):
        encoder = PoissonRateEncoder(duration=50.0, dt=1.0, rng=0)
        train = encoder.encode(np.linspace(0, 1, 9).reshape(3, 3))
        assert train.shape == (50, 9)
        assert train.dtype == bool

    def test_zero_intensity_never_spikes(self):
        encoder = PoissonRateEncoder(duration=200.0, dt=1.0, max_rate=500.0, rng=0)
        train = encoder.encode(np.array([0.0, 1.0]))
        assert train[:, 0].sum() == 0
        assert train[:, 1].sum() > 0

    def test_spike_count_tracks_intensity(self):
        encoder = PoissonRateEncoder(duration=2000.0, dt=1.0, max_rate=200.0, rng=0)
        train = encoder.encode(np.array([0.25, 1.0]))
        assert train[:, 1].sum() > train[:, 0].sum()

    def test_empirical_rate_matches_expectation(self):
        encoder = PoissonRateEncoder(duration=5000.0, dt=1.0, max_rate=100.0, rng=1)
        train = encoder.encode(np.array([1.0]))
        empirical_rate_hz = train[:, 0].mean() * 1000.0
        assert empirical_rate_hz == pytest.approx(100.0, rel=0.15)

    def test_seeded_encoders_are_reproducible(self):
        image = np.linspace(0, 1, 16)
        a = PoissonRateEncoder(duration=100.0, rng=7).encode(image)
        b = PoissonRateEncoder(duration=100.0, rng=7).encode(image)
        np.testing.assert_array_equal(a, b)

    def test_flattens_two_dimensional_images(self):
        encoder = PoissonRateEncoder(duration=20.0, rng=0)
        train = encoder.encode(np.ones((4, 4)))
        assert train.shape == (20, 16)

    def test_coarser_timestep_reduces_step_count(self):
        encoder = PoissonRateEncoder(duration=100.0, dt=2.0, rng=0)
        assert encoder.timesteps == 50
        assert encoder.encode(np.ones(4)).shape == (50, 4)

"""Tests for the latency, rank-order, phase, and burst encoders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.base import SpikeEncoder
from repro.encoding.burst import BurstEncoder
from repro.encoding.phase import PhaseEncoder
from repro.encoding.rank_order import RankOrderEncoder
from repro.encoding.temporal import LatencyEncoder


class TestSpikeEncoderBase:
    def test_timesteps(self):
        assert SpikeEncoder(duration=350.0, dt=1.0).timesteps == 350
        assert SpikeEncoder(duration=100.0, dt=0.5).timesteps == 200

    def test_duration_must_cover_one_timestep(self):
        with pytest.raises(ValueError):
            SpikeEncoder(duration=0.5, dt=1.0)

    def test_encode_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SpikeEncoder().encode(np.ones(3))


class TestLatencyEncoder:
    def test_each_active_element_spikes_once(self):
        encoder = LatencyEncoder(duration=20.0, dt=1.0)
        train = encoder.encode(np.array([1.0, 0.5, 0.2]))
        np.testing.assert_array_equal(train.sum(axis=0), [1, 1, 1])

    def test_stronger_inputs_spike_earlier(self):
        encoder = LatencyEncoder(duration=20.0, dt=1.0)
        times = encoder.spike_times(np.array([1.0, 0.5, 0.1]))
        assert times[0] < times[1] < times[2]

    def test_maximum_intensity_spikes_first_step(self):
        encoder = LatencyEncoder(duration=20.0, dt=1.0)
        assert encoder.spike_times(np.array([1.0, 0.2]))[0] == 0

    def test_sub_threshold_intensity_never_spikes(self):
        encoder = LatencyEncoder(duration=20.0, dt=1.0, epsilon=0.05)
        train = encoder.encode(np.array([1.0, 0.0]))
        assert train[:, 1].sum() == 0

    def test_output_shape(self):
        encoder = LatencyEncoder(duration=30.0, dt=1.0)
        assert encoder.encode(np.ones(5)).shape == (30, 5)


class TestRankOrderEncoder:
    def test_ranks_follow_intensity_order(self):
        encoder = RankOrderEncoder(duration=20.0, dt=1.0)
        order = encoder.spike_order(np.array([0.3, 1.0, 0.6]))
        assert order[1] == 0
        assert order[2] == 1
        assert order[0] == 2

    def test_inactive_elements_get_no_rank(self):
        encoder = RankOrderEncoder(duration=20.0, dt=1.0, epsilon=0.05)
        order = encoder.spike_order(np.array([1.0, 0.0]))
        assert order[1] == -1

    def test_one_spike_per_active_element(self):
        encoder = RankOrderEncoder(duration=20.0, dt=1.0)
        train = encoder.encode(np.array([0.9, 0.5, 0.1]))
        np.testing.assert_array_equal(train.sum(axis=0), [1, 1, 1])

    def test_each_rank_occupies_its_own_timestep(self):
        encoder = RankOrderEncoder(duration=20.0, dt=1.0)
        train = encoder.encode(np.array([0.9, 0.5, 0.1]))
        assert train[0, 0] and train[1, 1] and train[2, 2]

    def test_elements_beyond_window_are_dropped(self):
        encoder = RankOrderEncoder(duration=2.0, dt=1.0)
        train = encoder.encode(np.array([1.0, 0.8, 0.6, 0.4]))
        assert train.sum() == 2


class TestPhaseEncoder:
    def test_period_must_cover_one_timestep(self):
        with pytest.raises(ValueError):
            PhaseEncoder(duration=20.0, dt=1.0, period=0.5)

    def test_strong_input_fires_at_cycle_start(self):
        encoder = PhaseEncoder(duration=20.0, dt=1.0, period=10.0)
        train = encoder.encode(np.array([1.0]))
        spike_steps = np.flatnonzero(train[:, 0])
        np.testing.assert_array_equal(spike_steps % 10, 0)

    def test_weak_input_fires_late_in_cycle(self):
        encoder = PhaseEncoder(duration=20.0, dt=1.0, period=10.0, epsilon=0.0)
        train = encoder.encode(np.array([1.0, 1e-4]))
        weak_steps = np.flatnonzero(train[:, 1])
        assert np.all(weak_steps % 10 == 9)

    def test_one_spike_per_cycle(self):
        encoder = PhaseEncoder(duration=50.0, dt=1.0, period=10.0)
        train = encoder.encode(np.array([0.8]))
        assert train[:, 0].sum() == 5

    def test_sub_threshold_never_spikes(self):
        encoder = PhaseEncoder(duration=50.0, dt=1.0, period=10.0, epsilon=0.05)
        train = encoder.encode(np.array([1.0, 0.0]))
        assert train[:, 1].sum() == 0


class TestBurstEncoder:
    def test_burst_length_grows_with_intensity(self):
        encoder = BurstEncoder(duration=50.0, dt=1.0, max_burst_length=5)
        lengths = encoder.burst_lengths(np.array([1.0, 0.5, 0.1]))
        assert lengths[0] == 5
        assert lengths[1] == 3
        assert lengths[2] == 1
        assert lengths[0] > lengths[1] > lengths[2]

    def test_zero_intensity_has_no_burst(self):
        encoder = BurstEncoder(duration=50.0, dt=1.0)
        lengths = encoder.burst_lengths(np.array([1.0, 0.0]))
        assert lengths[1] == 0

    def test_spike_count_equals_burst_length(self):
        encoder = BurstEncoder(duration=50.0, dt=1.0, max_burst_length=4,
                               inter_spike_interval=3)
        train = encoder.encode(np.array([1.0, 0.5]))
        np.testing.assert_array_equal(train.sum(axis=0),
                                      encoder.burst_lengths(np.array([1.0, 0.5])))

    def test_burst_respects_inter_spike_interval(self):
        encoder = BurstEncoder(duration=50.0, dt=1.0, max_burst_length=3,
                               inter_spike_interval=4)
        train = encoder.encode(np.array([1.0]))
        np.testing.assert_array_equal(np.flatnonzero(train[:, 0]), [0, 4, 8])

    def test_burst_is_truncated_by_the_window(self):
        encoder = BurstEncoder(duration=5.0, dt=1.0, max_burst_length=10,
                               inter_spike_interval=2)
        train = encoder.encode(np.array([1.0]))
        assert train[:, 0].sum() == 3  # steps 0, 2, 4


class TestAllEncodersShareTheInterface:
    @pytest.mark.parametrize("encoder_cls", [
        LatencyEncoder, RankOrderEncoder, PhaseEncoder, BurstEncoder,
    ])
    def test_shape_and_dtype(self, encoder_cls):
        encoder = encoder_cls(duration=30.0, dt=1.0)
        image = np.linspace(0.0, 1.0, 12).reshape(3, 4)
        train = encoder.encode(image)
        assert train.shape == (30, 12)
        assert train.dtype == bool

"""Tests for the event-stream encoder family and its dataset adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.event_streams import EventStreamDigitSource
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.encoding.events import (
    DVSEventStreamEncoder,
    EventStreamEncoder,
    PoissonEventStreamEncoder,
)
from repro.snn.events import EventStream


class TestPoissonEventStreamEncoder:
    def test_encode_events_returns_a_valid_stream(self):
        encoder = PoissonEventStreamEncoder(duration=500.0, rng=11)
        values = np.linspace(0.0, 1.0, 16)
        stream = encoder.encode_events(values)
        assert isinstance(stream, EventStream)
        assert stream.n_steps == encoder.timesteps
        assert stream.n_channels == 16

    def test_dense_view_matches_the_stream(self):
        encoder = PoissonEventStreamEncoder(duration=300.0, rng=5)
        values = np.full(8, 0.7)
        np.testing.assert_array_equal(
            encoder.encode_events(values).to_dense().shape,
            (encoder.timesteps, 8),
        )
        dense = encoder.encode(values)
        assert dense.dtype == bool and dense.shape == (encoder.timesteps, 8)

    def test_zero_intensity_channel_never_fires(self):
        encoder = PoissonEventStreamEncoder(duration=2000.0, rng=3)
        values = np.array([0.0, 1.0, 1.0, 1.0])
        stream = encoder.encode_events(values)
        assert 0 not in stream.channels

    def test_default_regime_is_sub_percent_density(self):
        encoder = PoissonEventStreamEncoder(rng=1)
        stream = encoder.encode_events(np.full(64, 1.0))
        assert 0.0 < stream.density < 0.01

    def test_empirical_rate_matches_expectation(self):
        encoder = PoissonEventStreamEncoder(duration=4000.0, max_rate=10.0,
                                            rng=13)
        stream = encoder.encode_events(np.array([1.0]))
        expected = encoder.timesteps * 10.0 / 1000.0
        assert stream.n_events == pytest.approx(expected, rel=0.5)

    def test_negative_intensities_rejected(self):
        encoder = PoissonEventStreamEncoder(rng=0)
        with pytest.raises(ValueError):
            encoder.encode_events(np.array([-0.1, 0.5]))


class TestDVSEventStreamEncoder:
    def test_events_lie_only_inside_burst_windows(self):
        encoder = DVSEventStreamEncoder(duration=1200.0, n_bursts=6,
                                        burst_steps=8, rng=21)
        stream = encoder.encode_events(np.full(32, 1.0))
        allowed = set()
        for start in encoder.burst_starts():
            allowed.update(range(start, start + encoder.burst_steps))
        assert set(stream.times.tolist()) <= allowed

    def test_long_silent_gaps_dominate(self):
        encoder = DVSEventStreamEncoder(rng=21)
        stream = encoder.encode_events(np.full(64, 1.0))
        assert stream.density < 0.01
        assert stream.active_steps.size \
            <= encoder.n_bursts * encoder.burst_steps

    def test_bursts_must_fit_the_horizon(self):
        with pytest.raises(ValueError, match="do not fit"):
            DVSEventStreamEncoder(duration=10.0, n_bursts=6, burst_steps=8)

    def test_max_probability_is_validated(self):
        with pytest.raises(ValueError, match="max_probability"):
            DVSEventStreamEncoder(max_probability=1.5)

    def test_batch_encoding_yields_one_stream_per_input(self):
        encoder = DVSEventStreamEncoder(rng=2)
        streams = encoder.encode_events_batch([np.full(9, 0.5)] * 3)
        assert len(streams) == 3
        assert all(isinstance(s, EventStream) for s in streams)
        with pytest.raises(ValueError, match="empty batch"):
            encoder.encode_events_batch([])


class TestEventStreamDigitSource:
    def make_source(self):
        return EventStreamDigitSource(
            SyntheticDigits(image_size=10, seed=4),
            DVSEventStreamEncoder(duration=400.0, n_bursts=4, burst_steps=4,
                                  rng=4),
        )

    def test_generate_yields_labelled_streams(self):
        source = self.make_source()
        samples = source.generate(3, 2, rng=np.random.default_rng(0))
        assert len(samples) == 2
        for sample in samples:
            assert sample.label == 3
            assert isinstance(sample.stream, EventStream)
            assert sample.stream.n_channels == 100
            assert sample.image.shape == (10, 10)

    def test_labelled_streams_cover_requested_classes(self):
        source = self.make_source()
        samples, labels = source.labelled_streams(2, classes=(0, 1), rng=0)
        assert len(samples) == 4
        np.testing.assert_array_equal(labels, [0, 0, 1, 1])

    def test_rejects_non_event_encoders(self):
        from repro.encoding.rate import PoissonRateEncoder

        with pytest.raises(TypeError, match="EventStreamEncoder"):
            EventStreamDigitSource(SyntheticDigits(image_size=10, seed=4),
                                   PoissonRateEncoder())

    def test_rejects_empty_class_selection(self):
        with pytest.raises(ValueError, match="no classes"):
            self.make_source().labelled_streams(1, classes=())


class TestModelEventPath:
    def test_grid_encoder_models_reject_encode_events(self):
        from repro.core.config import SpikeDynConfig
        from repro.models.spikedyn_model import SpikeDynModel

        config = SpikeDynConfig.scaled_down(n_input=16, n_exc=4, t_sim=20.0)
        model = SpikeDynModel(config)
        with pytest.raises(TypeError, match="EventStreamEncoder"):
            model.encode_events(np.zeros(16))

    def test_event_encoder_models_round_trip(self):
        from repro.core.config import SpikeDynConfig
        from repro.models.spikedyn_model import SpikeDynModel

        config = SpikeDynConfig.scaled_down(
            n_input=16, n_exc=4, t_sim=20.0, backend="eventqueue"
        )
        model = SpikeDynModel(config)
        model.encoder = DVSEventStreamEncoder(
            duration=200.0, n_bursts=3, burst_steps=4, rng=8
        )
        stream = model.encode_events(np.linspace(0, 1, 16))
        assert isinstance(stream, EventStream)
        counts = model.respond_events(stream)
        assert counts.shape == (4,)
        predictions = model.predict_events([stream, stream])
        assert predictions.shape == (2,)


def test_encoders_are_exported_from_the_package():
    import repro.encoding as encoding

    assert issubclass(encoding.PoissonEventStreamEncoder,
                      encoding.EventStreamEncoder)
    assert issubclass(encoding.DVSEventStreamEncoder, EventStreamEncoder)

"""Batched encoding must be bit-for-bit identical to sequential encoding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.encoding.burst import BurstEncoder
from repro.encoding.rank_order import RankOrderEncoder
from repro.encoding.rate import PoissonRateEncoder


@pytest.fixture
def images():
    rng = np.random.default_rng(5)
    return [rng.random(49) for _ in range(6)]


class TestPoissonEncodeBatch:
    def test_matches_sequential_encoding_bit_for_bit(self, images):
        sequential_encoder = PoissonRateEncoder(duration=30.0, rng=123)
        batched_encoder = PoissonRateEncoder(duration=30.0, rng=123)
        sequential = np.stack([sequential_encoder.encode(image)
                               for image in images])
        batched = batched_encoder.encode_batch(images)
        np.testing.assert_array_equal(batched, sequential)

    def test_output_shape_and_dtype(self, images):
        encoder = PoissonRateEncoder(duration=25.0, rng=0)
        trains = encoder.encode_batch(images)
        assert trains.shape == (len(images), encoder.timesteps, 49)
        assert trains.dtype == bool

    def test_empty_batch_is_rejected(self):
        encoder = PoissonRateEncoder(duration=25.0, rng=0)
        with pytest.raises(ValueError, match="empty batch"):
            encoder.encode_batch([])

    def test_consumes_rng_like_the_sequential_loop(self, images):
        """After a batch, further draws continue where a loop would."""
        sequential_encoder = PoissonRateEncoder(duration=20.0, rng=9)
        batched_encoder = PoissonRateEncoder(duration=20.0, rng=9)
        for image in images[:3]:
            sequential_encoder.encode(image)
        batched_encoder.encode_batch(images[:3])
        follow_up = images[3]
        np.testing.assert_array_equal(
            batched_encoder.encode(follow_up),
            sequential_encoder.encode(follow_up),
        )


class TestDefaultEncodeBatch:
    """Deterministic encoders inherit the stacked default implementation."""

    @pytest.mark.parametrize("encoder_cls", [BurstEncoder, RankOrderEncoder])
    def test_matches_sequential_encoding(self, encoder_cls, images):
        encoder = encoder_cls(duration=20.0)
        sequential = np.stack([encoder.encode(image) for image in images])
        batched = encoder.encode_batch(images)
        np.testing.assert_array_equal(batched, sequential)

"""Tests for the dynamic / non-dynamic task streams and the array source."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.streams import (
    ArrayDigitSource,
    StreamSample,
    dynamic_task_stream,
    nondynamic_stream,
    normalize_task_schedule,
    task_schedule_stream,
)
from repro.datasets.synthetic_mnist import SyntheticDigits


@pytest.fixture
def source() -> SyntheticDigits:
    return SyntheticDigits(image_size=8, seed=0)


class TestDynamicTaskStream:
    def test_tasks_appear_consecutively(self, source):
        stream = dynamic_task_stream(source, class_sequence=[3, 1, 4],
                                     samples_per_task=2, rng=0)
        labels = [sample.label for sample in stream]
        assert labels == [3, 3, 1, 1, 4, 4]

    def test_task_indices_follow_the_sequence(self, source):
        stream = dynamic_task_stream(source, class_sequence=[3, 1],
                                     samples_per_task=2, rng=0)
        assert [sample.task_index for sample in stream] == [0, 0, 1, 1]

    def test_every_task_has_the_same_sample_count(self, source):
        """The paper's dynamic protocol presents equal-sized tasks."""
        stream = dynamic_task_stream(source, samples_per_task=3, rng=0)
        labels = np.array([sample.label for sample in stream])
        counts = {digit: int((labels == digit).sum()) for digit in source.classes}
        assert set(counts.values()) == {3}

    def test_defaults_to_all_classes_in_ascending_order(self, source):
        stream = dynamic_task_stream(source, samples_per_task=1, rng=0)
        assert [sample.label for sample in stream] == list(range(10))

    def test_images_match_the_source_size(self, source):
        stream = dynamic_task_stream(source, class_sequence=[0],
                                     samples_per_task=2, rng=0)
        assert all(sample.image.shape == (8, 8) for sample in stream)

    def test_empty_sequence_rejected(self, source):
        with pytest.raises(ValueError, match="task sequence is empty"):
            dynamic_task_stream(source, class_sequence=[], samples_per_task=2)

    def test_single_task_stream(self, source):
        """A one-task sequence is valid and yields exactly one task."""
        stream = dynamic_task_stream(source, class_sequence=[7],
                                     samples_per_task=3, rng=0)
        assert [sample.label for sample in stream] == [7, 7, 7]
        assert {sample.task_index for sample in stream} == {0}

    def test_invalid_sample_count_rejected(self, source):
        with pytest.raises(ValueError):
            dynamic_task_stream(source, class_sequence=[0], samples_per_task=0)

    def test_seeded_streams_are_reproducible(self, source):
        a = dynamic_task_stream(source, class_sequence=[0, 1],
                                samples_per_task=2, rng=7)
        b = dynamic_task_stream(source, class_sequence=[0, 1],
                                samples_per_task=2, rng=7)
        for sample_a, sample_b in zip(a, b):
            np.testing.assert_array_equal(sample_a.image, sample_b.image)


class TestNonDynamicStream:
    def test_length_and_label_mixing(self, source):
        stream = nondynamic_stream(source, n_samples=40, rng=0)
        assert len(stream) == 40
        labels = {sample.label for sample in stream}
        assert len(labels) > 3  # classes are mixed, not consecutive

    def test_all_task_indices_are_zero(self, source):
        stream = nondynamic_stream(source, n_samples=10, rng=0)
        assert all(sample.task_index == 0 for sample in stream)

    def test_restricting_classes(self, source):
        stream = nondynamic_stream(source, n_samples=30, classes=[2, 7], rng=0)
        assert {sample.label for sample in stream}.issubset({2, 7})

    def test_empty_class_list_rejected(self, source):
        with pytest.raises(ValueError):
            nondynamic_stream(source, n_samples=10, classes=[])

    def test_invalid_sample_count_rejected(self, source):
        with pytest.raises(ValueError):
            nondynamic_stream(source, n_samples=0)


class TestTaskScheduleStream:
    def test_multi_class_tasks_share_one_task_index(self, source):
        stream = task_schedule_stream(source, [(0, 1), (2, 3)],
                                      samples_per_task=6, rng=0)
        assert len(stream) == 12
        first, second = stream[:6], stream[6:]
        assert {s.task_index for s in first} == {0}
        assert {s.task_index for s in second} == {1}
        assert {s.label for s in first}.issubset({0, 1})
        assert {s.label for s in second}.issubset({2, 3})

    def test_bare_int_tasks_match_dynamic_stream_shape(self, source):
        stream = task_schedule_stream(source, [3, 1], samples_per_task=2, rng=0)
        assert [s.label for s in stream] == [3, 3, 1, 1]
        assert [s.task_index for s in stream] == [0, 0, 1, 1]

    def test_recurring_tasks_get_fresh_indices(self, source):
        stream = task_schedule_stream(source, [0, 1, 0], samples_per_task=1, rng=0)
        assert [s.task_index for s in stream] == [0, 1, 2]
        assert [s.label for s in stream] == [0, 1, 0]

    def test_seeded_schedules_are_reproducible(self, source):
        a = task_schedule_stream(source, [(0, 1), (2,)], samples_per_task=4, rng=5)
        b = task_schedule_stream(source, [(0, 1), (2,)], samples_per_task=4, rng=5)
        assert [s.label for s in a] == [s.label for s in b]
        for sample_a, sample_b in zip(a, b):
            np.testing.assert_array_equal(sample_a.image, sample_b.image)

    def test_empty_schedule_rejected(self, source):
        with pytest.raises(ValueError, match="task schedule is empty"):
            task_schedule_stream(source, [], samples_per_task=2)

    def test_empty_task_rejected(self, source):
        with pytest.raises(ValueError, match="task 1 .* no classes"):
            task_schedule_stream(source, [(0,), ()], samples_per_task=2)

    def test_invalid_sample_count_rejected(self, source):
        with pytest.raises(ValueError):
            task_schedule_stream(source, [(0,)], samples_per_task=0)


class TestNormalizeTaskSchedule:
    def test_mixed_ints_and_groups(self):
        assert normalize_task_schedule([0, (1, 2), [3]]) == [(0,), (1, 2), (3,)]

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="at least one task"):
            normalize_task_schedule([])

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError, match="at least one class"):
            normalize_task_schedule([[0], []])


class TestArrayDigitSource:
    def make_source(self, n_per_class=4, classes=(0, 1, 2)) -> ArrayDigitSource:
        rng = np.random.default_rng(0)
        images, labels = [], []
        for digit in classes:
            for _ in range(n_per_class):
                images.append(rng.random((6, 6)))
                labels.append(digit)
        return ArrayDigitSource(np.stack(images), np.array(labels), seed=0)

    def test_classes_are_discovered_from_labels(self):
        source = self.make_source(classes=(5, 2, 9))
        assert source.classes == (2, 5, 9)

    def test_image_size_and_pixels(self):
        source = self.make_source()
        assert source.image_size == 6
        assert source.n_pixels == 36

    def test_generate_draws_from_the_right_class(self):
        source = self.make_source()
        rng = np.random.default_rng(0)
        images = source.generate(1, 3, rng=rng)
        assert images.shape == (3, 6, 6)
        class_pool = source.images[source.labels == 1]
        for image in images:
            assert any(np.array_equal(image, candidate) for candidate in class_pool)

    def test_generate_with_replacement_when_pool_is_small(self):
        source = self.make_source(n_per_class=2)
        images = source.generate(0, 10, rng=0)
        assert images.shape == (10, 6, 6)

    def test_unknown_class_rejected(self):
        source = self.make_source()
        with pytest.raises(ValueError):
            source.generate(9, 1)

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            ArrayDigitSource(np.zeros((4, 6)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            ArrayDigitSource(np.zeros((4, 6, 6)), np.zeros(3, dtype=int))

    def test_empty_dataset_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="dataset is empty"):
            ArrayDigitSource(np.zeros((0, 6, 6)), np.zeros(0, dtype=int))

    def test_works_with_the_dynamic_stream(self):
        source = self.make_source()
        stream = dynamic_task_stream(source, class_sequence=[0, 2],
                                     samples_per_task=2, rng=0)
        assert [sample.label for sample in stream] == [0, 0, 2, 2]


class TestStreamSample:
    def test_fields(self):
        sample = StreamSample(image=np.zeros((2, 2)), label=3, task_index=1)
        assert sample.label == 3
        assert sample.task_index == 1
        assert sample.image.shape == (2, 2)

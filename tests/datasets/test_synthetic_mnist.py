"""Tests for the procedural MNIST-like digit generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic_mnist import SyntheticDigits


class TestConstruction:
    def test_exposes_ten_classes(self):
        assert SyntheticDigits(seed=0).classes == tuple(range(10))

    def test_n_pixels(self):
        assert SyntheticDigits(image_size=14, seed=0).n_pixels == 196
        assert SyntheticDigits(image_size=28, seed=0).n_pixels == 784

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticDigits(image_size=0)
        with pytest.raises(ValueError):
            SyntheticDigits(thickness=0.0)
        with pytest.raises(ValueError):
            SyntheticDigits(noise=-0.1)


class TestPrototypes:
    @pytest.mark.parametrize("digit", range(10))
    def test_every_digit_has_a_nonempty_prototype(self, digit):
        source = SyntheticDigits(image_size=14, seed=0)
        prototype = source.prototype(digit)
        assert prototype.shape == (14, 14)
        # The soft pen peaks near (not exactly at) 1.0 on the stroke centres.
        assert 0.9 < prototype.max() <= 1.0
        assert prototype.sum() > 1.0

    def test_prototypes_are_deterministic(self):
        a = SyntheticDigits(image_size=14, seed=0).prototype(5)
        b = SyntheticDigits(image_size=14, seed=99).prototype(5)
        np.testing.assert_array_equal(a, b)

    def test_prototypes_are_mutually_distinct(self):
        source = SyntheticDigits(image_size=14, seed=0)
        prototypes = [source.prototype(d).ravel() for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                difference = np.abs(prototypes[i] - prototypes[j]).mean()
                assert difference > 0.01, f"digits {i} and {j} look identical"

    def test_digits_4_and_9_share_features(self):
        """The overlap behind the paper's Fig. 10 observation is built in:
        digits 4 and 9 overlap more than digits 1 and 0 do."""
        source = SyntheticDigits(image_size=28, seed=0)

        def overlap(a: int, b: int) -> float:
            pa, pb = source.prototype(a), source.prototype(b)
            return float(np.minimum(pa, pb).sum() / np.maximum(pa, pb).sum())

        assert overlap(4, 9) > overlap(1, 0)

    def test_invalid_digit_rejected(self):
        source = SyntheticDigits(seed=0)
        with pytest.raises(ValueError):
            source.prototype(10)


class TestGenerate:
    def test_shape_and_range(self):
        source = SyntheticDigits(image_size=14, seed=0)
        images = source.generate(3, 5)
        assert images.shape == (5, 14, 14)
        assert images.min() >= 0.0
        assert images.max() <= 1.0

    def test_samples_vary_within_a_class(self):
        source = SyntheticDigits(image_size=14, seed=0)
        images = source.generate(3, 2)
        assert not np.array_equal(images[0], images[1])

    def test_samples_resemble_their_prototype(self):
        source = SyntheticDigits(image_size=14, seed=0, noise=0.02)
        prototype = source.prototype(7).ravel()
        sample = source.generate(7, 1)[0].ravel()
        other = source.prototype(1).ravel()
        corr_own = np.corrcoef(sample, prototype)[0, 1]
        corr_other = np.corrcoef(sample, other)[0, 1]
        assert corr_own > corr_other

    def test_explicit_rng_is_reproducible(self):
        source = SyntheticDigits(image_size=14, seed=0)
        a = source.generate(2, 3, rng=5)
        b = source.generate(2, 3, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_internal_rng_is_seed_reproducible(self):
        a = SyntheticDigits(image_size=14, seed=11).generate(2, 3)
        b = SyntheticDigits(image_size=14, seed=11).generate(2, 3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_arguments(self):
        source = SyntheticDigits(seed=0)
        with pytest.raises(ValueError):
            source.generate(42, 1)
        with pytest.raises(ValueError):
            source.generate(1, 0)

    def test_noise_free_generator(self):
        source = SyntheticDigits(image_size=14, seed=0, noise=0.0,
                                 jitter=0.0, scale_jitter=0.0,
                                 intensity_jitter=0.0)
        images = source.generate(6, 2)
        np.testing.assert_array_equal(images[0], images[1])


class TestSample:
    def test_labels_come_from_requested_classes(self):
        source = SyntheticDigits(image_size=14, seed=0)
        images, labels = source.sample(20, classes=[1, 3, 5])
        assert images.shape == (20, 14, 14)
        assert set(np.unique(labels)).issubset({1, 3, 5})

    def test_defaults_to_all_classes(self):
        source = SyntheticDigits(image_size=14, seed=0)
        _, labels = source.sample(50)
        assert set(np.unique(labels)).issubset(set(range(10)))
        assert len(set(np.unique(labels))) > 3

    def test_invalid_class_rejected(self):
        source = SyntheticDigits(seed=0)
        with pytest.raises(ValueError):
            source.sample(5, classes=[11])

"""Tests for the MNIST IDX loader and its synthetic fallback."""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.mnist import (
    TRAIN_IMAGES_FILE,
    TRAIN_LABELS_FILE,
    load_digit_source,
    load_mnist_idx,
)
from repro.datasets.streams import ArrayDigitSource
from repro.datasets.synthetic_mnist import SyntheticDigits


def write_idx_files(directory: Path, images: np.ndarray, labels: np.ndarray,
                    *, image_magic: int = 2051, label_magic: int = 2049,
                    truncate_images: bool = False) -> tuple:
    """Write a minimal MNIST-style IDX image/label pair for testing."""
    directory.mkdir(parents=True, exist_ok=True)
    images_path = directory / TRAIN_IMAGES_FILE
    labels_path = directory / TRAIN_LABELS_FILE

    count, rows, cols = images.shape
    raw = (images * 255).astype(np.uint8).tobytes()
    if truncate_images:
        raw = raw[:-5]
    with open(images_path, "wb") as handle:
        handle.write(struct.pack(">IIII", image_magic, count, rows, cols))
        handle.write(raw)
    with open(labels_path, "wb") as handle:
        handle.write(struct.pack(">II", label_magic, labels.size))
        handle.write(labels.astype(np.uint8).tobytes())
    return images_path, labels_path


@pytest.fixture
def idx_dataset(tmp_path):
    rng = np.random.default_rng(0)
    images = rng.random((12, 6, 6))
    labels = np.arange(12) % 3
    paths = write_idx_files(tmp_path, images, labels)
    return images, labels, paths, tmp_path


class TestLoadMnistIdx:
    def test_round_trip(self, idx_dataset):
        images, labels, (images_path, labels_path), _ = idx_dataset
        loaded_images, loaded_labels = load_mnist_idx(images_path, labels_path)
        assert loaded_images.shape == (12, 6, 6)
        assert loaded_images.min() >= 0.0 and loaded_images.max() <= 1.0
        np.testing.assert_array_equal(loaded_labels, labels)
        expected = (images * 255).astype(np.uint8) / 255.0
        np.testing.assert_allclose(loaded_images, expected, atol=1e-9)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mnist_idx(tmp_path / "missing", tmp_path / "also_missing")

    def test_bad_image_magic_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        paths = write_idx_files(tmp_path, rng.random((4, 3, 3)),
                                np.zeros(4, dtype=int), image_magic=1234)
        with pytest.raises(ValueError, match="not an IDX image file"):
            load_mnist_idx(*paths)

    def test_bad_label_magic_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        paths = write_idx_files(tmp_path, rng.random((4, 3, 3)),
                                np.zeros(4, dtype=int), label_magic=1234)
        with pytest.raises(ValueError, match="not an IDX label file"):
            load_mnist_idx(*paths)

    def test_truncated_images_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        paths = write_idx_files(tmp_path, rng.random((4, 3, 3)),
                                np.zeros(4, dtype=int), truncate_images=True)
        with pytest.raises(ValueError, match="truncated"):
            load_mnist_idx(*paths)

    def test_count_mismatch_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        images = rng.random((4, 3, 3))
        write_idx_files(tmp_path, images, np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            load_mnist_idx(tmp_path / TRAIN_IMAGES_FILE, tmp_path / TRAIN_LABELS_FILE)


class TestLoadDigitSource:
    def test_prefers_real_mnist_when_present(self, idx_dataset):
        _, _, _, directory = idx_dataset
        source = load_digit_source(directory)
        assert isinstance(source, ArrayDigitSource)
        assert source.image_size == 6

    def test_falls_back_to_synthetic_without_files(self, tmp_path):
        source = load_digit_source(tmp_path / "empty", image_size=14, seed=0)
        assert isinstance(source, SyntheticDigits)
        assert source.image_size == 14

    def test_falls_back_to_synthetic_without_directory(self):
        source = load_digit_source(None, image_size=14, seed=0)
        assert isinstance(source, SyntheticDigits)

    def test_falls_back_on_corrupt_files(self, tmp_path):
        rng = np.random.default_rng(0)
        write_idx_files(tmp_path, rng.random((4, 3, 3)), np.zeros(4, dtype=int),
                        image_magic=9999)
        source = load_digit_source(tmp_path, image_size=14, seed=0)
        assert isinstance(source, SyntheticDigits)

    def test_both_source_kinds_share_the_generate_interface(self, idx_dataset):
        _, _, _, directory = idx_dataset
        real = load_digit_source(directory)
        synthetic = load_digit_source(None, image_size=6, seed=0)
        for source in (real, synthetic):
            images = source.generate(1, 2, rng=0)
            assert images.shape == (2, 6, 6)
            assert hasattr(source, "classes")

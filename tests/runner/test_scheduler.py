"""Tests for the process-pool scheduler: crash isolation, timeouts, caching,
resume, and the parallel == sequential determinism guarantee."""

from __future__ import annotations

import pytest

from repro.runner import (
    SOURCE_CACHE,
    SOURCE_MANIFEST,
    SOURCE_RUN,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    JobSpec,
    ParallelRunner,
    RunManifest,
    run_jobs,
)

ECHO = "repro.runner.testing:echo_driver"
CRASH = "repro.runner.testing:crashing_driver"
DIE = "repro.runner.testing:dying_driver"
HANG = "repro.runner.testing:hanging_driver"


def echo_jobs(scale, count: int) -> list:
    return [
        JobSpec(experiment=ECHO, scale=scale, overrides={"tag": f"job-{index}"})
        for index in range(count)
    ]


class TestInlineExecution:
    def test_workers_zero_runs_in_process(self, micro_scale):
        (record,) = run_jobs(echo_jobs(micro_scale, 1), workers=0)
        assert record.status == STATUS_COMPLETED
        assert record.source == SOURCE_RUN
        assert "seed=0" in record.report

    def test_inline_crash_is_isolated_too(self, micro_scale):
        crash = JobSpec(experiment=CRASH, scale=micro_scale)
        ok = JobSpec(experiment=ECHO, scale=micro_scale)
        crashed, completed = run_jobs([crash, ok], workers=0)
        assert crashed.status == STATUS_FAILED
        assert "intentional crash" in crashed.error
        assert completed.status == STATUS_COMPLETED

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(-1)

    def test_records_returned_in_job_order(self, micro_scale):
        jobs = echo_jobs(micro_scale, 4)
        records = run_jobs(jobs, workers=0)
        assert [record.key for record in records] == [job.key() for job in jobs]

    def test_duplicate_jobs_collapse_to_one_execution(self, micro_scale):
        events = []
        job = JobSpec(experiment=ECHO, scale=micro_scale)
        records = run_jobs(
            [job, job], workers=0, on_event=lambda event, record: events.append(event)
        )
        assert len(records) == 2
        assert records[0].key == records[1].key
        assert events.count("start") == 1  # executed once, not twice


@pytest.mark.integration
class TestParallelExecution:
    def test_parallel_reports_match_inline(self, micro_scale):
        jobs = echo_jobs(micro_scale, 3)
        inline = run_jobs(jobs, workers=0)
        parallel = run_jobs(jobs, workers=3)
        assert [r.report for r in parallel] == [r.report for r in inline]
        assert all(record.status == STATUS_COMPLETED for record in parallel)

    def test_crash_does_not_take_down_the_pool(self, micro_scale, manifest):
        jobs = [
            JobSpec(experiment=CRASH, scale=micro_scale),
            JobSpec(experiment=DIE, scale=micro_scale),
            JobSpec(experiment=ECHO, scale=micro_scale),
        ]
        crashed, died, completed = run_jobs(jobs, workers=2, manifest=manifest)
        assert crashed.status == STATUS_FAILED
        assert "intentional crash" in crashed.error
        assert died.status == STATUS_FAILED
        assert "exitcode" in died.error
        assert completed.status == STATUS_COMPLETED
        assert manifest.counts() == {STATUS_FAILED: 2, STATUS_COMPLETED: 1}

    def test_hanging_job_is_timed_out_and_killed(self, micro_scale, manifest):
        jobs = [
            JobSpec(experiment=HANG, scale=micro_scale, timeout=1.0),
            JobSpec(experiment=ECHO, scale=micro_scale),
        ]
        hung, completed = run_jobs(jobs, workers=2, manifest=manifest)
        assert hung.status == STATUS_TIMEOUT
        assert "timeout" in hung.error
        assert completed.status == STATUS_COMPLETED
        reloaded = RunManifest.load(manifest.path)
        assert reloaded.counts() == {STATUS_TIMEOUT: 1, STATUS_COMPLETED: 1}


@pytest.mark.integration
class TestCaching:
    def test_second_run_is_served_from_cache(self, micro_scale, cache):
        jobs = echo_jobs(micro_scale, 2)
        first = run_jobs(jobs, workers=2, cache=cache)
        second = run_jobs(jobs, workers=2, cache=cache)
        assert [record.source for record in first] == [SOURCE_RUN, SOURCE_RUN]
        assert [record.source for record in second] == [SOURCE_CACHE, SOURCE_CACHE]
        assert [r.report for r in second] == [r.report for r in first]

    def test_failed_jobs_are_never_cached(self, micro_scale, cache):
        job = JobSpec(experiment=CRASH, scale=micro_scale)
        run_jobs([job], workers=0, cache=cache)
        assert cache.get(job.key()) is None
        (retried,) = run_jobs([job], workers=0, cache=cache)
        assert retried.source == SOURCE_RUN

    def test_force_ignores_the_cache(self, micro_scale, cache):
        jobs = echo_jobs(micro_scale, 1)
        run_jobs(jobs, workers=0, cache=cache)
        (forced,) = run_jobs(jobs, workers=0, cache=cache, force=True)
        assert forced.source == SOURCE_RUN

    def test_different_seeds_miss_each_other(self, micro_scale, cache):
        base = JobSpec(experiment=ECHO, scale=micro_scale)
        run_jobs([base], workers=0, cache=cache)
        (other,) = run_jobs([base.with_seed(7)], workers=0, cache=cache)
        assert other.source == SOURCE_RUN
        assert "seed=7" in other.report


@pytest.mark.integration
class TestResume:
    def test_resume_retries_only_failed_and_missing(self, micro_scale, tmp_path):
        ok = JobSpec(experiment=ECHO, scale=micro_scale)
        bad = JobSpec(experiment=CRASH, scale=micro_scale)
        manifest = RunManifest(tmp_path / "manifest.json")
        run_jobs([ok, bad], workers=0, manifest=manifest)

        # Resume with the crash replaced by a working job of the same key set,
        # plus a new job: only the failed and the new one execute.
        resumed_manifest = RunManifest.load(tmp_path / "manifest.json")
        fresh = JobSpec(experiment=ECHO, scale=micro_scale, overrides={"tag": "fresh"})
        records = run_jobs([ok, bad, fresh], workers=0, manifest=resumed_manifest)
        assert records[0].source == SOURCE_MANIFEST
        assert records[1].source == SOURCE_RUN
        assert records[1].status == STATUS_FAILED
        assert records[2].source == SOURCE_RUN
        assert records[2].status == STATUS_COMPLETED

    def test_resume_disabled_reruns_everything(self, micro_scale, tmp_path):
        job = JobSpec(experiment=ECHO, scale=micro_scale)
        manifest = RunManifest(tmp_path / "manifest.json")
        run_jobs([job], workers=0, manifest=manifest)
        reloaded = RunManifest.load(tmp_path / "manifest.json")
        (record,) = run_jobs([job], workers=0, manifest=reloaded, resume=False)
        assert record.source == SOURCE_RUN


class TestEvents:
    def test_event_sequence_for_run_and_cache_hit(self, micro_scale, cache):
        events = []

        def on_event(event, record):
            events.append((event, record.experiment))

        jobs = echo_jobs(micro_scale, 1)
        run_jobs(jobs, workers=0, cache=cache, on_event=on_event)
        run_jobs(jobs, workers=0, cache=cache, on_event=on_event)
        assert events == [("start", ECHO), ("done", ECHO), ("cached", ECHO)]


@pytest.mark.integration
class TestRealDriverDeterminism:
    def test_parallel_report_identical_to_sequential(self, micro_scale):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("fig9-dynamic")
        sequential = spec.report(micro_scale)
        job = JobSpec(experiment="fig9-dynamic", scale=micro_scale)
        (parallel,) = run_jobs([job], workers=2)
        assert parallel.status == STATUS_COMPLETED
        assert parallel.report == sequential

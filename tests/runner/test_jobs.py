"""Tests for job specifications and content-addressed keys."""

from __future__ import annotations

import pytest

import repro
from repro.experiments.common import ExperimentScale
from repro.runner import JobSpec, scale_from_dict, scale_to_dict


class TestScaleSerialization:
    def test_round_trip_preserves_every_field(self, micro_scale):
        rebuilt = scale_from_dict(scale_to_dict(micro_scale))
        assert rebuilt == micro_scale

    def test_tuples_become_lists_and_back(self, micro_scale):
        data = scale_to_dict(micro_scale)
        assert isinstance(data["network_sizes"], list)
        assert isinstance(data["class_sequence"], list)
        rebuilt = scale_from_dict(data)
        assert isinstance(rebuilt.network_sizes, tuple)
        assert isinstance(rebuilt.class_sequence, tuple)


class TestJobKey:
    def test_key_is_deterministic(self, micro_scale):
        a = JobSpec(experiment="fig5", scale=micro_scale)
        b = JobSpec(experiment="fig5", scale=micro_scale)
        assert a.key() == b.key()
        assert len(a.key()) == 64  # sha256 hex digest

    def test_key_changes_with_driver(self, micro_scale):
        a = JobSpec(experiment="fig5", scale=micro_scale)
        b = JobSpec(experiment="fig6", scale=micro_scale)
        assert a.key() != b.key()

    def test_key_changes_with_seed(self, micro_scale):
        a = JobSpec(experiment="fig5", scale=micro_scale)
        b = a.with_seed(a.seed + 1)
        assert a.key() != b.key()
        assert b.seed == a.seed + 1

    def test_key_changes_with_scale(self, micro_scale):
        a = JobSpec(experiment="fig5", scale=micro_scale)
        b = JobSpec(experiment="fig5", scale=micro_scale.replace(t_sim=31.0))
        assert a.key() != b.key()

    def test_key_changes_with_overrides(self, micro_scale):
        a = JobSpec(experiment="fig5", scale=micro_scale)
        b = JobSpec(experiment="fig5", scale=micro_scale, overrides={"actual_run_samples": 2})
        assert a.key() != b.key()

    def test_key_includes_package_version(self, micro_scale, monkeypatch):
        a = JobSpec(experiment="fig5", scale=micro_scale).key()
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        b = JobSpec(experiment="fig5", scale=micro_scale).key()
        assert a != b

    def test_timeout_is_not_part_of_the_key(self, micro_scale):
        a = JobSpec(experiment="fig5", scale=micro_scale)
        b = JobSpec(experiment="fig5", scale=micro_scale, timeout=10.0)
        assert a.key() == b.key()


class TestJobSpec:
    def test_dict_round_trip(self, micro_scale):
        job = JobSpec(
            experiment="fig9-dynamic",
            scale=micro_scale,
            overrides={"models": ["baseline"]},
            output="fig09_dynamic_accuracy",
            timeout=60.0,
        )
        rebuilt = JobSpec.from_dict(job.to_dict())
        assert rebuilt.key() == job.key()
        assert rebuilt.scale == job.scale
        assert rebuilt.output_stem == "fig09_dynamic_accuracy"
        assert rebuilt.timeout == 60.0

    def test_default_output_stem_is_sanitized(self, micro_scale):
        job = JobSpec(experiment="repro.runner.testing:echo_driver", scale=micro_scale)
        assert ":" not in job.output_stem
        dashed = JobSpec(experiment="fig9-dynamic", scale=micro_scale)
        assert dashed.output_stem == "fig9_dynamic"

    def test_empty_experiment_rejected(self, micro_scale):
        with pytest.raises(ValueError):
            JobSpec(experiment="", scale=micro_scale)

    def test_non_json_overrides_rejected(self, micro_scale):
        with pytest.raises(TypeError):
            JobSpec(experiment="fig5", scale=micro_scale, overrides={"rng": object()})

    def test_example_scale_equivalence(self):
        tiny_a = ExperimentScale.tiny(seed=3)
        tiny_b = ExperimentScale.tiny(seed=3)
        assert JobSpec(experiment="fig5", scale=tiny_a).key() == (
            JobSpec(experiment="fig5", scale=tiny_b).key()
        )

"""Tests for the content-addressed result cache."""

from __future__ import annotations

import pytest

from repro.runner import ResultCache
from repro.runner.cache import CACHE_DIR_ENV, default_cache_root

KEY_A = "a" * 64
KEY_B = "b" * 64


class TestRoundTrip:
    def test_put_then_get(self, cache):
        record = {"status": "completed", "report": "hello", "elapsed": 1.5}
        path = cache.put(KEY_A, record)
        assert path.is_file()
        assert cache.get(KEY_A) == record

    def test_miss_returns_none(self, cache):
        assert cache.get(KEY_A) is None

    def test_two_level_fanout_layout(self, cache):
        path = cache.put(KEY_A, {"status": "completed"})
        assert path.parent.name == KEY_A[:2]
        assert path.name == f"{KEY_A}.json"

    def test_short_key_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.path_for("ab")

    def test_no_temp_files_left_behind(self, cache):
        cache.put(KEY_A, {"status": "completed"})
        leftovers = list(cache.root.rglob(".tmp-*"))
        assert leftovers == []


class TestCorruption:
    def test_truncated_record_is_a_miss_and_removed(self, cache):
        path = cache.put(KEY_A, {"status": "completed"})
        path.write_text('{"status": "comp', encoding="utf-8")
        assert cache.get(KEY_A) is None
        assert not path.exists()

    def test_non_dict_record_is_a_miss(self, cache):
        path = cache.put(KEY_A, {"status": "completed"})
        path.write_text('["not", "a", "record"]', encoding="utf-8")
        assert cache.get(KEY_A) is None

    def test_non_utf8_record_is_a_miss_and_removed(self, cache):
        path = cache.put(KEY_A, {"status": "completed"})
        path.write_bytes(b"\xff\xfe garbage bytes")
        assert cache.get(KEY_A) is None
        assert not path.exists()

    def test_leftover_temp_files_are_not_entries(self, cache):
        cache.put(KEY_A, {"status": "completed"})
        stray = cache.root / KEY_A[:2] / ".tmp-dead-writer.json"
        stray.write_text("{", encoding="utf-8")
        assert [key for key, _ in cache.iter_entries()] == [KEY_A]
        assert cache.stats()["entries"] == 1

    def test_foreign_short_named_files_are_not_entries(self, cache):
        cache.put(KEY_A, {"status": "completed"})
        (cache.root / KEY_A[:2] / "x.json").write_text("{}", encoding="utf-8")
        assert [key for key, _ in cache.iter_entries()] == [KEY_A]


class TestManagement:
    def test_delete(self, cache):
        cache.put(KEY_A, {"status": "completed"})
        assert cache.delete(KEY_A) is True
        assert cache.delete(KEY_A) is False

    def test_undeletable_corrupt_record_is_still_a_miss(self, cache, monkeypatch):
        from pathlib import Path

        path = cache.put(KEY_A, {"status": "completed"})
        path.write_text("{truncated", encoding="utf-8")
        monkeypatch.setattr(
            Path, "unlink", lambda self, **kw: (_ for _ in ()).throw(PermissionError())
        )
        assert cache.get(KEY_A) is None

    def test_clear_sweeps_orphaned_temp_files(self, cache):
        cache.put(KEY_A, {"status": "completed"})
        stray = cache.root / KEY_A[:2] / ".tmp-dead-writer.json"
        stray.write_text("{", encoding="utf-8")
        assert cache.clear() == 1
        assert not stray.exists()

    def test_clear_and_stats(self, cache):
        assert cache.stats()["entries"] == 0
        cache.put(KEY_A, {"status": "completed"})
        cache.put(KEY_B, {"status": "completed"})
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0

    def test_iter_entries_sorted(self, cache):
        cache.put(KEY_B, {"status": "completed"})
        cache.put(KEY_A, {"status": "completed"})
        keys = [key for key, _ in cache.iter_entries()]
        assert keys == [KEY_A, KEY_B]


class TestDefaultRoot:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"

    def test_falls_back_to_user_cache(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro" / "results"

    def test_default_constructor_uses_default_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "viaenv"))
        assert ResultCache().root == tmp_path / "viaenv"

"""Tests for full-suite job construction."""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.registry import EXPERIMENTS
from repro.runner import (
    SUITE_OVERRIDES,
    build_suite,
    default_scale_overrides,
    scales_for_preset,
)


class TestScalesForPreset:
    def test_every_family_covered(self):
        for preset in ("tiny", "small", "paper"):
            scales = scales_for_preset(preset)
            assert set(scales) == {"accuracy", "energy", "sweep", "static"}

    def test_tiny_energy_uses_paper_image_size(self):
        scales = scales_for_preset("tiny")
        assert scales["energy"].image_size == 28
        assert scales["accuracy"].image_size == 14

    def test_seed_propagates_to_every_scale(self):
        scales = scales_for_preset("tiny", seed=9)
        assert all(scale.seed == 9 for scale in scales.values())

    def test_paper_networks_switch(self):
        assert scales_for_preset("small")["energy"].network_sizes == (100, 200)
        small = scales_for_preset("small", paper_networks=True)
        assert small["energy"].network_sizes == (200, 400)

    def test_sweep_uses_largest_accuracy_network(self):
        scales = scales_for_preset("tiny")
        assert scales["sweep"].network_sizes == (max(scales["accuracy"].network_sizes),)

    def test_sweep_runs_on_the_full_digit_set(self):
        # The sweep drivers (fig6, ablation) have always used all ten digits
        # regardless of the accuracy preset's task sequence.
        for preset in ("tiny", "small", "paper"):
            assert scales_for_preset(preset)["sweep"].class_sequence == tuple(range(10))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown scale preset"):
            scales_for_preset("huge")


class TestBuildSuite:
    def test_full_suite_covers_every_driver(self):
        jobs = build_suite(scales_for_preset("tiny"))
        assert [job.experiment for job in jobs] == list(EXPERIMENTS)

    def test_suite_overrides_applied(self):
        jobs = {job.experiment: job for job in build_suite(scales_for_preset("tiny"))}
        for name, overrides in SUITE_OVERRIDES.items():
            assert dict(jobs[name].overrides) == overrides

    def test_subset_selection_preserves_registry_order(self):
        jobs = build_suite(scales_for_preset("tiny"), experiments=["fig5", "table1"])
        assert [job.experiment for job in jobs] == ["fig5", "table1"]

    def test_unknown_driver_rejected(self):
        with pytest.raises(KeyError, match="fig99"):
            build_suite(scales_for_preset("tiny"), experiments=["fig99"])

    def test_timeout_applied_to_every_job(self):
        jobs = build_suite(scales_for_preset("tiny"), timeout=120.0)
        assert all(job.timeout == 120.0 for job in jobs)

    def test_scale_override_wins_over_family(self):
        special = ExperimentScale.tiny(image_size=16)
        jobs = {
            job.experiment: job
            for job in build_suite(
                scales_for_preset("tiny"), scale_overrides={"fig1": special}
            )
        }
        assert jobs["fig1"].scale == special
        assert jobs["fig9-dynamic"].scale != special

    def test_job_keys_are_unique(self):
        jobs = build_suite(scales_for_preset("tiny"))
        keys = [job.key() for job in jobs]
        assert len(keys) == len(set(keys))


class TestDefaultScaleOverrides:
    def test_tiny_has_no_exceptions(self):
        assert default_scale_overrides("tiny", scales_for_preset("tiny")) == {}

    def test_small_moves_fig1_to_energy_networks(self):
        scales = scales_for_preset("small")
        overrides = default_scale_overrides("small", scales)
        assert set(overrides) == {"fig1"}
        fig1 = overrides["fig1"]
        assert fig1.network_sizes == scales["energy"].network_sizes
        assert fig1.image_size == scales["energy"].image_size
        assert fig1.class_sequence == scales["accuracy"].class_sequence

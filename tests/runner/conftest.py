"""Shared fixtures for the runner test suite."""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale
from repro.runner import JobSpec, ResultCache, RunManifest


@pytest.fixture
def micro_scale() -> ExperimentScale:
    """The smallest valid scale — job payloads only, no real simulation."""
    return ExperimentScale.tiny(
        network_sizes=(8,),
        class_sequence=(0, 1),
        samples_per_task=2,
        eval_samples_per_class=2,
        nondynamic_checkpoints=(2,),
        t_sim=30.0,
    )


@pytest.fixture
def echo_job(micro_scale: ExperimentScale) -> JobSpec:
    return JobSpec(experiment="repro.runner.testing:echo_driver", scale=micro_scale)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def manifest(tmp_path) -> RunManifest:
    return RunManifest(tmp_path / "manifest.json")

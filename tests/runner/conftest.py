"""Shared fixtures for the runner test suite."""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale
from repro.runner import JobSpec, ResultCache, RunManifest

# The micro_scale fixture lives in the top-level tests/conftest.py: the
# property tests of the job keys use it too.


@pytest.fixture
def echo_job(micro_scale: ExperimentScale) -> JobSpec:
    return JobSpec(experiment="repro.runner.testing:echo_driver", scale=micro_scale)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def manifest(tmp_path) -> RunManifest:
    return RunManifest(tmp_path / "manifest.json")

"""Tests for the experiment registry and the worker's driver resolution."""

from __future__ import annotations

import pytest

from repro.experiments.registry import (
    EXPERIMENTS,
    SCALE_FAMILIES,
    ExperimentSpec,
    experiment_names,
    get_experiment,
)
from repro.runner.worker import execute_payload, render_report, resolve_runner
from repro.runner import JobSpec


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert experiment_names() == [
            "table1",
            "table2",
            "fig1",
            "fig4",
            "fig5",
            "fig6",
            "fig9-dynamic",
            "fig9-nondynamic",
            "fig10",
            "fig11",
            "alg1",
            "ablation",
            "eventstream",
            "scen-classinc",
            "scen-recurring",
            "scen-drift",
            "scen-corrupt",
        ]

    def test_specs_are_well_formed(self):
        for name, spec in EXPERIMENTS.items():
            assert spec.name == name
            assert spec.artifact
            assert spec.output
            assert spec.family in SCALE_FAMILIES
            assert callable(spec.runner)

    def test_output_stems_are_unique(self):
        outputs = [spec.output for spec in EXPERIMENTS.values()]
        assert len(outputs) == len(set(outputs))

    def test_get_experiment_unknown_name(self):
        with pytest.raises(KeyError, match="fig99"):
            get_experiment("fig99")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown scale family"):
            ExperimentSpec(
                name="x",
                artifact="x",
                output="x",
                family="bogus",
                runner=lambda scale: "x",
            )

    def test_static_driver_report(self, micro_scale):
        text = get_experiment("table1").report(micro_scale)
        assert "GTX 1080 Ti" in text

    def test_schema_matches_result_fields(self, micro_scale):
        spec = get_experiment("fig9-dynamic")
        result = spec.run(micro_scale)
        for field_name in spec.schema:
            assert hasattr(result, field_name)

    def test_job_units_default_to_one_per_driver(self, micro_scale):
        for spec in EXPERIMENTS.values():
            units = spec.job_units(micro_scale)
            assert units == [{"experiment": spec.name}]


class TestDriverResolution:
    def test_registry_name_resolves(self):
        assert resolve_runner("fig5") is EXPERIMENTS["fig5"].runner

    def test_module_reference_resolves(self, micro_scale):
        runner = resolve_runner("repro.runner.testing:echo_driver")
        assert "seed=0" in runner(micro_scale)

    def test_non_callable_reference_rejected(self):
        with pytest.raises(TypeError):
            resolve_runner("repro.runner.testing:__doc__")

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="known experiments"):
            resolve_runner("not-an-experiment")

    def test_render_report_rejects_non_text(self):
        with pytest.raises(TypeError):
            render_report(12345)


class TestExecutePayload:
    def test_completed_record(self, micro_scale):
        job = JobSpec(experiment="table1", scale=micro_scale)
        record = execute_payload(job.to_dict())
        assert record["status"] == "completed"
        assert record["key"] == job.key()
        assert "GTX 1080 Ti" in record["report"]

    def test_failed_record_contains_traceback(self, micro_scale):
        job = JobSpec(experiment="repro.runner.testing:crashing_driver", scale=micro_scale)
        record = execute_payload(job.to_dict())
        assert record["status"] == "failed"
        assert "RuntimeError" in record["error"]

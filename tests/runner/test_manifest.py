"""Tests for the run manifest and its resume semantics."""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    JobRecord,
    JobSpec,
    RunManifest,
)


def record_for(job: JobSpec, status: str = STATUS_COMPLETED) -> JobRecord:
    return JobRecord(
        key=job.key(),
        experiment=job.experiment,
        output=job.output_stem,
        seed=job.seed,
        status=status,
        report="text" if status == STATUS_COMPLETED else None,
    )


class TestPersistence:
    def test_update_persists_immediately(self, manifest, echo_job):
        manifest.update(record_for(echo_job))
        reloaded = RunManifest.load(manifest.path)
        assert reloaded.is_complete(echo_job.key())

    def test_report_text_is_not_stored(self, manifest, echo_job):
        manifest.update(record_for(echo_job))
        data = json.loads(manifest.path.read_text(encoding="utf-8"))
        (job_data,) = data["jobs"].values()
        assert "report" not in job_data
        assert job_data["status"] == STATUS_COMPLETED

    def test_metadata_round_trip(self, tmp_path, echo_job):
        manifest = RunManifest(tmp_path / "m.json", metadata={"scale": "tiny"})
        manifest.update(record_for(echo_job))
        reloaded = RunManifest.load(manifest.path)
        assert reloaded.metadata["scale"] == "tiny"
        assert "version" in reloaded.metadata

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunManifest.load(tmp_path / "absent.json")

    def test_load_or_create_refreshes_metadata(self, tmp_path, echo_job):
        manifest = RunManifest(tmp_path / "m.json", metadata={"seed": 0, "workers": 4})
        manifest.update(record_for(echo_job))
        resumed = RunManifest.load_or_create(tmp_path / "m.json", metadata={"seed": 1})
        assert resumed.metadata["seed"] == 1
        assert resumed.metadata["workers"] == 4
        assert resumed.is_complete(echo_job.key())

    def test_load_or_create_tolerates_corruption(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json", encoding="utf-8")
        manifest = RunManifest.load_or_create(path)
        assert manifest.records == {}

    def test_load_rejects_non_manifest(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text('{"something": "else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            RunManifest.load(path)


class TestResumeSemantics:
    def test_pending_jobs_skips_only_completed(self, manifest, micro_scale):
        done = JobSpec(experiment="repro.runner.testing:echo_driver", scale=micro_scale)
        failed = JobSpec(
            experiment="repro.runner.testing:echo_driver",
            scale=micro_scale,
            overrides={"tag": "failed"},
        )
        timed_out = JobSpec(
            experiment="repro.runner.testing:echo_driver",
            scale=micro_scale,
            overrides={"tag": "hung"},
        )
        fresh = JobSpec(
            experiment="repro.runner.testing:echo_driver",
            scale=micro_scale,
            overrides={"tag": "fresh"},
        )
        manifest.update(record_for(done), save=False)
        manifest.update(record_for(failed, STATUS_FAILED), save=False)
        manifest.update(record_for(timed_out, STATUS_TIMEOUT), save=False)

        pending = manifest.pending_jobs([done, failed, timed_out, fresh])
        assert [job.overrides.get("tag") for job in pending] == ["failed", "hung", "fresh"]

    def test_counts(self, manifest, micro_scale):
        jobs = [
            JobSpec(
                experiment="repro.runner.testing:echo_driver",
                scale=micro_scale,
                overrides={"tag": str(index)},
            )
            for index in range(3)
        ]
        manifest.update(record_for(jobs[0]), save=False)
        manifest.update(record_for(jobs[1]), save=False)
        manifest.update(record_for(jobs[2], STATUS_FAILED), save=False)
        assert manifest.counts() == {STATUS_COMPLETED: 2, STATUS_FAILED: 1}

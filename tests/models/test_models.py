"""Tests for the three comparison-partner models and the shared base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule
from repro.datasets.streams import StreamSample
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.estimation.memory import ARCH_BASELINE, ARCH_SPIKEDYN
from repro.learning.asp import ASPLearningRule
from repro.learning.stdp import PairwiseSTDP
from repro.models.asp_model import ASPModel
from repro.models.base import N_CLASSES, UnsupervisedDigitClassifier
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel

ALL_MODELS = (DiehlCookModel, ASPModel, SpikeDynModel)


@pytest.fixture
def config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=64, n_exc=8, t_sim=20.0, seed=0)


@pytest.fixture
def source() -> SyntheticDigits:
    return SyntheticDigits(image_size=8, seed=0)


class TestConstruction:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_builds_from_config(self, model_cls, config):
        model = model_cls(config)
        assert model.n_input == 64
        assert model.n_exc == 8
        assert model.samples_trained == 0
        assert model.input_weights.shape == (64, 8)

    def test_model_names(self, config):
        assert DiehlCookModel(config).name == "baseline"
        assert ASPModel(config).name == "asp"
        assert SpikeDynModel(config).name == "spikedyn"

    def test_architecture_names(self, config):
        assert DiehlCookModel(config).architecture_name() == ARCH_BASELINE
        assert ASPModel(config).architecture_name() == ARCH_BASELINE
        assert SpikeDynModel(config).architecture_name() == ARCH_SPIKEDYN

    def test_default_learning_rules(self, config):
        assert isinstance(DiehlCookModel(config).learning_rule, PairwiseSTDP)
        assert isinstance(ASPModel(config).learning_rule, ASPLearningRule)
        assert isinstance(SpikeDynModel(config).learning_rule, SpikeDynLearningRule)

    def test_custom_learning_rule_is_used(self, config):
        rule = SpikeDynLearningRule(adaptive_rates=False)
        model = SpikeDynModel(config, learning_rule=rule)
        assert model.learning_rule is rule
        assert model.network.connection("input_to_exc").learning_rule is rule

    def test_spikedyn_weight_decay_follows_network_size(self, config):
        model = SpikeDynModel(config)
        assert model.learning_rule.weight_decay.w_decay == pytest.approx(
            config.effective_w_decay
        )

    def test_assignments_start_unlabelled(self, config):
        model = SpikeDynModel(config)
        assert model.assignments.shape == (8,)
        assert np.all(model.assignments == -1)


class TestTrainingAndInference:
    def test_train_sample_returns_excitatory_counts(self, config, source):
        model = SpikeDynModel(config)
        counts = model.train_sample(source.generate(0, 1, rng=0)[0])
        assert counts.shape == (8,)
        assert model.samples_trained == 1

    def test_train_sample_changes_weights(self, config, source):
        model = SpikeDynModel(config)
        before = model.input_weights.copy()
        for image in source.generate(0, 4, rng=0):
            model.train_sample(image)
        assert not np.array_equal(model.input_weights, before)

    def test_respond_does_not_learn(self, config, source):
        model = SpikeDynModel(config)
        before = model.input_weights.copy()
        model.respond(source.generate(0, 1, rng=0)[0])
        np.testing.assert_array_equal(model.input_weights, before)
        assert model.samples_trained == 0

    def test_image_size_is_validated(self, config):
        model = SpikeDynModel(config)
        with pytest.raises(ValueError):
            model.train_sample(np.zeros((10, 10)))

    def test_train_stream(self, config, source):
        model = SpikeDynModel(config)
        stream = [StreamSample(image=image, label=0, task_index=0)
                  for image in source.generate(0, 3, rng=0)]
        assert model.train_stream(stream) == 3
        assert model.samples_trained == 3

    def test_respond_batch_shape(self, config, source):
        model = SpikeDynModel(config)
        images = list(source.generate(1, 4, rng=0))
        responses = model.respond_batch(images)
        assert responses.shape == (4, 8)

    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_all_models_train_and_respond(self, model_cls, config, source):
        model = model_cls(config)
        image = source.generate(2, 1, rng=0)[0]
        model.train_sample(image)
        counts = model.respond(image)
        assert counts.shape == (8,)
        assert model.counter.total_ops() > 0


class TestReadout:
    def test_assign_labels_and_predict(self, config, source):
        model = SpikeDynModel(config)
        rng = np.random.default_rng(0)
        images, labels = [], []
        for digit in (0, 1):
            for image in source.generate(digit, 6, rng=rng):
                model.train_sample(image)
        for digit in (0, 1):
            for image in source.generate(digit, 3, rng=rng):
                images.append(image)
                labels.append(digit)
        assignments = model.assign_labels(images, labels)
        assert assignments.shape == (8,)
        assert set(np.unique(assignments)).issubset({-1, 0, 1})
        predictions = model.predict(images)
        assert predictions.shape == (len(images),)
        assert set(np.unique(predictions)).issubset(set(range(N_CLASSES)))

    def test_evaluate_accuracy_bounds(self, config, source):
        model = SpikeDynModel(config)
        rng = np.random.default_rng(0)
        images = list(source.generate(0, 4, rng=rng))
        labels = [0] * 4
        model.assign_labels(images, labels)
        accuracy = model.evaluate_accuracy(images, labels)
        assert 0.0 <= accuracy <= 1.0


class TestBookkeeping:
    def test_reset_counter_returns_snapshot(self, config, source):
        model = SpikeDynModel(config)
        model.train_sample(source.generate(0, 1, rng=0)[0])
        snapshot = model.reset_counter()
        assert snapshot.total_ops() > 0
        assert model.counter.total_ops() == 0

    def test_describe(self, config):
        model = SpikeDynModel(config)
        description = model.describe()
        assert description["name"] == "spikedyn"
        assert description["architecture"] == ARCH_SPIKEDYN
        assert description["n_exc"] == 8

    def test_baseline_has_more_network_parameters(self, config):
        baseline = DiehlCookModel(config)
        spikedyn = SpikeDynModel(config)
        assert (baseline.network.weight_count
                > spikedyn.network.weight_count)


class TestPersistence:
    def test_save_and_load_round_trip(self, config, source, tmp_path):
        model = SpikeDynModel(config)
        for image in source.generate(0, 3, rng=0):
            model.train_sample(image)
        images = list(source.generate(0, 2, rng=0))
        model.assign_labels(images, [0, 0])
        model.save(tmp_path / "model")

        restored = SpikeDynModel(config)
        restored.load_state(tmp_path / "model")
        np.testing.assert_array_equal(restored.input_weights, model.input_weights)
        np.testing.assert_array_equal(restored.assignments, model.assignments)
        np.testing.assert_array_equal(
            restored.network.group("excitatory").theta,
            model.network.group("excitatory").theta,
        )
        assert restored.samples_trained == model.samples_trained

    def test_load_rejects_mismatched_sizes(self, config, tmp_path):
        model = SpikeDynModel(config)
        model.save(tmp_path / "model")
        other = SpikeDynModel(config.with_network_size(10))
        with pytest.raises(ValueError):
            other.load_state(tmp_path / "model")

    def test_loaded_model_predicts_like_the_original(self, config, source, tmp_path):
        model = SpikeDynModel(config)
        for image in source.generate(1, 3, rng=0):
            model.train_sample(image)
        eval_images = list(source.generate(1, 2, rng=1))
        model.assign_labels(eval_images, [1, 1])
        model.save(tmp_path / "model")

        restored = SpikeDynModel(config)
        restored.load_state(tmp_path / "model")
        # Give both models identically seeded encoders so the Poisson draws
        # (and therefore the responses) match exactly.
        from repro.encoding.rate import PoissonRateEncoder

        for candidate in (model, restored):
            candidate.encoder = PoissonRateEncoder(
                duration=config.t_sim, dt=config.dt, max_rate=config.max_rate,
                intensity_scale=config.intensity_scale, rng=123,
            )
        np.testing.assert_array_equal(
            model.predict(eval_images), restored.predict(eval_images)
        )


class TestBaseClassIsAbstract:
    def test_architecture_name_must_be_implemented(self, config):
        from repro.core.architecture import build_spikedyn_network

        network = build_spikedyn_network(config, learning_rule=SpikeDynLearningRule())
        model = UnsupervisedDigitClassifier(config, network)
        with pytest.raises(NotImplementedError):
            model.architecture_name()

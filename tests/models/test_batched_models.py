"""Batched inference and training at the model layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.base import DEFAULT_EVAL_BATCH_SIZE
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel


@pytest.fixture
def config() -> SpikeDynConfig:
    return SpikeDynConfig.scaled_down(n_input=64, n_exc=10, t_sim=20.0, seed=0)


@pytest.fixture
def images():
    source = SyntheticDigits(image_size=8, seed=0)
    return [source.generate(cls, 3, rng=cls)[index]
            for cls in (0, 1, 2) for index in range(3)]


class TestRespondBatch:
    def test_default_batch_size_comes_from_the_model(self, config):
        model = SpikeDynModel(config)
        assert model.eval_batch_size == DEFAULT_EVAL_BATCH_SIZE

    def test_matches_sequential_when_adaptation_is_frozen(self, config, images):
        batched_model = SpikeDynModel(config)
        sequential_model = SpikeDynModel(config)
        for model in (batched_model, sequential_model):
            model.network.group("excitatory").adapt_theta = False

        batched = batched_model.respond_batch(images)
        sequential = sequential_model.respond_batch(images, batch_size=1)
        np.testing.assert_array_equal(batched, sequential)

    def test_chunking_does_not_change_results(self, config, images):
        one_chunk = SpikeDynModel(config).respond_batch(images, batch_size=len(images))
        small_chunks = SpikeDynModel(config).respond_batch(images, batch_size=2)
        np.testing.assert_array_equal(one_chunk, small_chunks)

    def test_does_not_mutate_adaptation_state(self, config, images):
        model = SpikeDynModel(config)
        theta_before = model.network.group("excitatory").theta.copy()
        model.respond_batch(images)
        np.testing.assert_array_equal(
            model.network.group("excitatory").theta, theta_before
        )

    def test_shape(self, config, images):
        responses = SpikeDynModel(config).respond_batch(images)
        assert responses.shape == (len(images), config.n_exc)


class TestTrainBatch:
    @pytest.mark.parametrize("model_cls", [SpikeDynModel, DiehlCookModel])
    def test_matches_train_sample_loop_bit_for_bit(self, model_cls, config, images):
        looped = model_cls(config)
        batched = model_cls(config)

        loop_counts = np.stack([looped.train_sample(image) for image in images])
        batch_counts = batched.train_batch(images)

        np.testing.assert_array_equal(batch_counts, loop_counts)
        np.testing.assert_array_equal(batched.input_weights, looped.input_weights)
        assert batched.samples_trained == looped.samples_trained == len(images)
        assert batched.counter.as_dict() == looped.counter.as_dict()

    def test_empty_batch(self, config):
        model = SpikeDynModel(config)
        counts = model.train_batch([])
        assert counts.shape == (0, config.n_exc)
        assert model.samples_trained == 0


class TestEncodeBatch:
    def test_shape_and_size_validation(self, config, images):
        model = SpikeDynModel(config)
        trains = model.encode_batch(images)
        assert trains.shape[0] == len(images)
        assert trains.shape[2] == config.n_input
        with pytest.raises(ValueError, match="pixels"):
            model.encode_batch([np.zeros(5)])

    def test_evaluation_pipeline_runs_batched(self, config, images):
        labels = [0, 0, 0, 1, 1, 1, 2, 2, 2]
        model = SpikeDynModel(config)
        model.assign_labels(images, labels)
        accuracy = model.evaluate_accuracy(images, labels)
        assert 0.0 <= accuracy <= 1.0

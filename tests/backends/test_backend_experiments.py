"""Every registered experiment is backend-independent at smoke scale.

The acceptance bar for the sparse event backend: running any registered
experiment driver at the tiny (CI) scale on ``backend="sparse"`` must render
a report byte-identical to the dense reference — same predictions, labels,
accuracies, and operation tallies.  The report text is the experiment's
complete observable output, so string equality is the strongest cheap check.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.registry import EXPERIMENTS

#: Drivers whose tiny-scale runs stay fast enough for the unit-test budget;
#: the full registry sweep is the same assertion at every entry.
pytestmark = pytest.mark.integration


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_sparse_report_is_byte_identical_to_dense(name):
    spec = EXPERIMENTS[name]
    dense_report = spec.report(ExperimentScale.tiny(seed=0))
    sparse_report = spec.report(ExperimentScale.tiny(seed=0, backend="sparse"))
    assert sparse_report == dense_report, (
        f"experiment {name!r} renders different reports on the sparse "
        "backend"
    )

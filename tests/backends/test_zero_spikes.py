"""Zero-spike inputs must be handled uniformly by every backend.

All-silent inputs are the degenerate corner of the event-driven work: the
clock-driven engines must walk them without emitting a single spike or
touching any weight, the event engine must collapse them into one analytic
jump, and a silent sample embedded in an otherwise active batch must behave
exactly like its sequential counterpart.  Parametrized over every available
backend via the shared conformance fixtures.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.models.spikedyn_model import SpikeDynModel
from repro.snn.events import EventStream

N_INPUT = 64
N_EXC = 10
TIMESTEPS = 30


def _model(backend_name: str) -> SpikeDynModel:
    config = SpikeDynConfig.scaled_down(
        n_input=N_INPUT, n_exc=N_EXC, t_sim=float(TIMESTEPS), seed=29,
        backend=backend_name,
    )
    return SpikeDynModel(config)


class TestZeroSpikeInputs:
    def test_all_silent_sample_is_inert(self, backend_name):
        model = _model(backend_name)
        silent = np.zeros((TIMESTEPS, N_INPUT), dtype=bool)
        weights_before = model.input_weights.copy()
        result = model.network.run_sample(silent, learning=False)
        assert result.counts("excitatory").sum() == 0
        np.testing.assert_array_equal(model.input_weights, weights_before)

    def test_all_silent_training_sample_emits_no_spikes(self, backend_name):
        # With plasticity on, a silent sample still commits SpikeDyn's
        # window depression (by design) — but it must never spike.
        model = _model(backend_name)
        silent = np.zeros((TIMESTEPS, N_INPUT), dtype=bool)
        result = model.network.run_sample(silent, learning=True)
        assert result.counts("excitatory").sum() == 0

    def test_silent_sample_in_a_batch_matches_sequential(self, backend_name):
        model = _model(backend_name)
        rng = np.random.default_rng(29)
        trains = rng.random((3, TIMESTEPS, N_INPUT)) < 0.15
        trains[1] = False  # one all-silent sample mid-batch
        batched = model.network.run_batch(trains, learning=False)
        assert batched[1].counts("excitatory").sum() == 0

        sequential_model = _model(backend_name)
        for index, train in enumerate(trains):
            reference = sequential_model.network.run_sample(
                train, learning=False
            )
            np.testing.assert_array_equal(
                batched[index].counts("excitatory"),
                reference.counts("excitatory"),
                err_msg=f"{backend_name}: batch sample {index} diverged",
            )

    def test_empty_event_stream_runs_on_every_backend(self, backend_name):
        model = _model(backend_name)
        result = model.network.run_events(
            EventStream.empty(TIMESTEPS, N_INPUT)
        )
        assert result.counts("excitatory").sum() == 0
        assert model.counter.events_processed == 0
        # Only event-capable backends may skip steps; either way the
        # executed+skipped accounting must cover the whole horizon when
        # jumps happened.
        if model.network.backend.supports_events:
            assert model.counter.steps_skipped == TIMESTEPS
        else:
            assert model.counter.steps_skipped == 0

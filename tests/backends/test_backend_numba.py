"""Numba backend: optional-dependency degradation and compiled-path checks.

The degradation contract is testable everywhere: ``available()`` mirrors the
import probe, the backend stays registered either way, and on stdlib-only
installs (no numba) instantiating it through the registry raises
``RuntimeError`` while everything else — listing, describing, configs and
artifacts that merely *name* it — keeps working.

The compiled-path tests are skipped when numba is missing; CI runs them on
a dedicated leg with numba installed.  They only smoke the backend wiring
(instantiation, kernel chain, engine integration) — full numerical coverage
comes from the conformance suite, which auto-enrolls numba whenever it is
available.
"""

from __future__ import annotations

import importlib.util

import numpy as np
import pytest

from repro.backends import (
    NumbaBackend,
    available_backends,
    describe_backend,
    get_backend,
)
from repro.core.config import SpikeDynConfig
from repro.models.spikedyn_model import SpikeDynModel

NUMBA_INSTALLED = importlib.util.find_spec("numba") is not None

needs_numba = pytest.mark.skipif(not NUMBA_INSTALLED,
                                 reason="numba not installed")
needs_no_numba = pytest.mark.skipif(NUMBA_INSTALLED,
                                    reason="numba is installed")


class TestDegradation:
    def test_available_mirrors_the_import_probe(self):
        assert NumbaBackend.available() is NUMBA_INSTALLED

    def test_registration_is_unconditional(self):
        info = describe_backend("numba")
        assert info["name"] == "numba"
        assert info["tier"] == "exact"
        assert info["available"] is NUMBA_INSTALLED

    def test_availability_listing_tracks_the_probe(self):
        assert ("numba" in available_backends()) is NUMBA_INSTALLED

    @needs_no_numba
    def test_get_backend_raises_runtime_error_without_numba(self):
        with pytest.raises(RuntimeError, match="not available"):
            get_backend("numba")

    @needs_no_numba
    def test_direct_instantiation_raises_without_numba(self):
        with pytest.raises(RuntimeError, match="numba"):
            NumbaBackend()

    def test_configs_may_name_numba_regardless_of_availability(self):
        # Selection is validated by *name*; availability is enforced when
        # kernels are actually built, so a config naming numba can be
        # created (and shipped in an artifact) on any machine.
        config = SpikeDynConfig.scaled_down(n_input=16, n_exc=4,
                                            backend="numba")
        assert config.backend == "numba"


@needs_numba
class TestCompiledKernels:
    def test_backend_instantiates_and_compiles(self):
        backend = get_backend("numba")
        assert backend.name == "numba"
        assert backend.equivalence_tier == "exact"

    def test_lif_step_matches_dense_bitwise(self):
        dense = get_backend("dense")
        numba = get_backend("numba")
        rng = np.random.default_rng(61)
        v = rng.uniform(-70, -50, (3, 9))
        refrac = rng.choice([0.0, 2.0], (3, 9))
        current = rng.uniform(0, 30, (3, 9))
        threshold = np.full(9, -54.0)
        kwargs = dict(decay=0.98, v_rest=-65.0, v_reset=-65.0,
                      refractory=5.0, dt=1.0)
        ref = dense.lif_step(v.copy(), refrac.copy(), current, threshold,
                             **kwargs)
        got = numba.lif_step(v.copy(), refrac.copy(), current, threshold,
                             **kwargs)
        for got_arr, ref_arr in zip(got, ref):
            np.testing.assert_array_equal(got_arr, ref_arr)

    def test_engine_runs_end_to_end_on_numba(self):
        config = SpikeDynConfig.scaled_down(
            n_input=64, n_exc=10, t_sim=30.0, seed=62, backend="numba"
        )
        dense_config = config.replace(backend="dense")
        images = np.random.default_rng(62).random((4, 64)) * 0.7
        numba_model = SpikeDynModel(config)
        dense_model = SpikeDynModel(dense_config)
        np.testing.assert_array_equal(numba_model.respond_batch(images),
                                      dense_model.respond_batch(images))
        assert numba_model.counter.as_dict() == dense_model.counter.as_dict()

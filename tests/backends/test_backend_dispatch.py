"""Regression tests for the auto backend's profiling dispatcher.

Two families: *live profiling* — on workload shapes with a decisive winner,
the profiler must route below-crossover geometries to dense and large
sparse-activity geometries away from dense — and *pinned profiles* — a
routing table loaded from JSON (directly or via ``REPRO_AUTO_PROFILE``)
makes dispatch fully deterministic: pinned buckets are never re-profiled
and every call in them goes to the pinned candidate.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import get_backend
from repro.backends.auto import (
    PROFILE_ENV,
    AutoBackend,
    density_band,
    propagation_bucket,
)


class _Recorder:
    """Wraps a candidate backend and counts propagate_spikes deliveries."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def propagate_spikes(self, conductance, pre_spikes, weights):
        self.calls += 1
        return self.inner.propagate_spikes(conductance, pre_spikes, weights)


def _workload(n_pre, n_post, events, seed=0):
    rng = np.random.default_rng(seed)
    spikes = np.zeros(n_pre, dtype=bool)
    spikes[rng.choice(n_pre, size=events, replace=False)] = True
    weights = rng.random((n_pre, n_post))
    conductance = np.zeros(n_post)
    return conductance, spikes, weights


class TestBucketing:
    def test_density_bands_partition_the_unit_interval(self):
        assert density_band(0.0) == "le01"
        assert density_band(0.001) == "le01"
        assert density_band(0.005) == "le1"
        assert density_band(0.01) == "le1"
        assert density_band(0.02) == "le5"
        assert density_band(0.05) == "le5"
        assert density_band(0.12) == "le20"
        assert density_band(0.5) == "gt20"
        assert density_band(1.0) == "gt20"

    def test_sub_percent_band_separates_event_stream_workloads(self):
        # Regression: a long-horizon event stream (~0.05 % density) and an
        # ordinary sparse presentation (~0.8 %) used to collapse into the
        # same `le1` bucket, so one profiling result silently decided both.
        assert density_band(0.0005) != density_band(0.008)
        assert propagation_bucket(784, 400, 0.0005) \
            == "propagate:784x400:le01"
        assert propagation_bucket(784, 400, 0.008) \
            == "propagate:784x400:le1"

    def test_bucket_key_is_stable_and_readable(self):
        assert propagation_bucket(784, 400, 0.03) == "propagate:784x400:le5"

    def test_eventqueue_is_a_pinnable_candidate(self, tmp_path, monkeypatch):
        from repro.backends.eventqueue import EventQueueBackend

        auto = AutoBackend()
        assert isinstance(auto.candidates["eventqueue"], EventQueueBackend)

        profile = tmp_path / "profile.json"
        profile.write_text(json.dumps(
            {"decisions": {"propagate:32x8:le01": "eventqueue"}}
        ))
        monkeypatch.setenv(PROFILE_ENV, str(profile))
        pinned = AutoBackend()
        conductance, spikes, weights = _workload(32, 8, events=0)
        recorder = _Recorder(pinned.candidates["eventqueue"])
        pinned.candidates["eventqueue"] = recorder
        pinned.propagate_spikes(conductance, spikes, weights)
        assert recorder.calls == 1

    def test_decision_for_reports_unseen_buckets_as_none(self):
        auto = AutoBackend()
        assert auto.decision_for(999, 999, 0.5) is None


class TestLiveProfiling:
    def test_below_crossover_selects_dense(self):
        # Tiny geometry at full density: the BLAS product over a 32x8
        # matrix beats any gather/segment-sum of all 32 rows.
        auto = AutoBackend()
        conductance, spikes, weights = _workload(32, 8, events=32)
        auto.propagate_spikes(conductance, spikes, weights)
        assert auto.decision_for(32, 8, 1.0) == "dense"

    def test_above_crossover_avoids_dense(self):
        # Large geometry with ~0.4% activity: touching 4 of 1024 weight
        # rows beats a full 1024x512 product by orders of magnitude, so
        # whichever event-driven candidate wins, it is not dense.
        auto = AutoBackend()
        conductance, spikes, weights = _workload(1024, 512, events=4)
        auto.propagate_spikes(conductance, spikes, weights)
        assert auto.decision_for(1024, 512, 4 / 1024) in (
            "sparse", "numba", "eventqueue"
        )

    def test_profiling_happens_once_per_bucket(self):
        auto = AutoBackend()
        conductance, spikes, weights = _workload(48, 6, events=10, seed=3)
        auto.propagate_spikes(conductance.copy(), spikes, weights)
        first = auto.decisions
        assert list(first) == [propagation_bucket(48, 6, 10 / 48)]
        # Same bucket, different arrays: the decision table must not grow
        # or change — dispatch is a dict lookup from here on.
        _, spikes2, weights2 = _workload(48, 6, events=11, seed=4)
        auto.propagate_spikes(conductance.copy(), spikes2, weights2)
        assert auto.decisions == first

    def test_dispatch_results_match_dense_exactly(self):
        auto = AutoBackend()
        dense = get_backend("dense")
        for seed in range(3):
            conductance, spikes, weights = _workload(64, 16, events=12,
                                                     seed=seed)
            reference = conductance.copy()
            dense.propagate_spikes(reference, spikes, weights)
            auto.propagate_spikes(conductance, spikes, weights)
            np.testing.assert_allclose(conductance, reference,
                                       rtol=1e-12, atol=1e-12)

    def test_reset_profile_forgets_decisions(self):
        auto = AutoBackend()
        conductance, spikes, weights = _workload(16, 4, events=2, seed=5)
        auto.propagate_spikes(conductance, spikes, weights)
        assert auto.decisions
        auto.reset_profile()
        assert auto.decisions == {}


class TestPinnedProfiles:
    def _write_profile(self, path, decisions):
        path.write_text(json.dumps({"version": 1, "decisions": decisions}))
        return path

    def test_pinned_bucket_is_honored_without_reprofiling(self, tmp_path):
        bucket = propagation_bucket(40, 12, 1.0)
        profile = self._write_profile(tmp_path / "profile.json",
                                      {bucket: "sparse"})
        auto = AutoBackend()
        auto.load_profile(profile)
        # Instrument both candidates; a profiling pass would hit *every*
        # candidate, honored pinning hits only the pinned one.
        recorders = {name: _Recorder(auto.candidates[name])
                     for name in list(auto.candidates)}
        auto.candidates.update(recorders)
        conductance, spikes, weights = _workload(40, 12, events=40, seed=7)
        auto.propagate_spikes(conductance, spikes, weights)
        auto.propagate_spikes(conductance, spikes, weights)
        assert recorders["sparse"].calls == 2
        assert recorders["dense"].calls == 0
        assert auto.decisions[bucket] == "sparse"

    def test_pinned_dispatch_is_deterministic_across_instances(self, tmp_path):
        bucket = propagation_bucket(40, 12, 1.0)
        profile = self._write_profile(tmp_path / "profile.json",
                                      {bucket: "dense"})
        decision_tables = []
        for _ in range(2):
            auto = AutoBackend()
            auto.load_profile(profile)
            conductance, spikes, weights = _workload(40, 12, events=40,
                                                     seed=8)
            auto.propagate_spikes(conductance, spikes, weights)
            decision_tables.append(auto.decisions)
        assert decision_tables[0] == decision_tables[1] == {bucket: "dense"}

    def test_environment_variable_pins_at_construction(self, tmp_path,
                                                       monkeypatch):
        bucket = propagation_bucket(24, 8, 1.0)
        profile = self._write_profile(tmp_path / "env_profile.json",
                                      {bucket: "sparse"})
        monkeypatch.setenv(PROFILE_ENV, str(profile))
        auto = AutoBackend()
        assert auto.decisions == {bucket: "sparse"}

    def test_unknown_candidate_in_profile_is_rejected(self, tmp_path):
        profile = self._write_profile(tmp_path / "bad.json",
                                      {"propagate:8x8:le1": "quantum"})
        auto = AutoBackend()
        with pytest.raises(ValueError, match="quantum"):
            auto.load_profile(profile)

    def test_profile_without_decisions_is_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ValueError, match="decisions"):
            AutoBackend().load_profile(path)

    def test_save_load_round_trip(self, tmp_path):
        auto = AutoBackend()
        conductance, spikes, weights = _workload(20, 5, events=3, seed=9)
        auto.propagate_spikes(conductance, spikes, weights)
        learned = auto.decisions
        assert learned
        saved = auto.save_profile(tmp_path / "learned.json")
        payload = json.loads(saved.read_text())
        assert payload == {"version": 1, "decisions": learned}
        replica = AutoBackend()
        replica.load_profile(saved)
        assert replica.decisions == learned


class TestAutoInTheEngine:
    def test_auto_model_matches_dense_counts_and_tallies(self):
        from repro.core.config import SpikeDynConfig
        from repro.models.spikedyn_model import SpikeDynModel

        def build(backend):
            config = SpikeDynConfig.scaled_down(
                n_input=64, n_exc=10, t_sim=30.0, seed=13, backend=backend
            )
            return SpikeDynModel(config)

        images = np.random.default_rng(13).random((5, 64)) * 0.7
        dense_model = build("dense")
        dense_counts = dense_model.respond_batch(images)
        auto_model = build("auto")
        auto_counts = auto_model.respond_batch(images)
        np.testing.assert_array_equal(auto_counts, dense_counts)
        assert auto_model.counter.as_dict() == dense_model.counter.as_dict()
        assert auto_model.backend_name == "auto"

"""Kernel-level equivalence between the dense and sparse backends.

Every sparse kernel must compute the same values as its dense counterpart;
for the scatter-style kernels (trace bumps, theta bumps, STDP deltas) the
scalar arithmetic is identical so the results must be *bit-for-bit* equal,
while the gather/segment-sum propagation kernels may differ by last-ULP
rounding (different association order) and are compared with a tight
``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend

DENSE = get_backend("dense")
SPARSE = get_backend("sparse")


def _spikes(shape, density, seed):
    return np.random.default_rng(seed).random(shape) < density


@pytest.mark.parametrize("density", [0.0, 0.03, 0.5, 1.0])
@pytest.mark.parametrize("batched", [False, True])
class TestPropagation:
    def test_propagate_spikes_matches_dense(self, density, batched):
        rng = np.random.default_rng(7)
        n_pre, n_post, batch = 37, 11, 5
        shape = (batch, n_pre) if batched else (n_pre,)
        spikes = _spikes(shape, density, seed=1)
        weights = rng.random((n_pre, n_post))
        cond_shape = (batch, n_post) if batched else (n_post,)
        dense_cond = rng.random(cond_shape)
        sparse_cond = dense_cond.copy()

        DENSE.propagate_spikes(dense_cond, spikes, weights)
        SPARSE.propagate_spikes(sparse_cond, spikes, weights)
        np.testing.assert_allclose(sparse_cond, dense_cond,
                                   rtol=1e-12, atol=1e-12)

    def test_propagate_lateral_matches_dense(self, density, batched):
        rng = np.random.default_rng(8)
        n, batch = 23, 4
        shape = (batch, n) if batched else (n,)
        spikes = _spikes(shape, density, seed=2)
        dense_cond = rng.random(shape)
        sparse_cond = dense_cond.copy()

        DENSE.propagate_lateral(dense_cond, spikes, 17.0)
        SPARSE.propagate_lateral(sparse_cond, spikes, 17.0)
        np.testing.assert_array_equal(sparse_cond, dense_cond)


class TestPropagationEvents:
    def test_single_spike_adds_exactly_one_weight_row(self):
        weights = np.arange(12.0).reshape(4, 3)
        spikes = np.array([False, False, True, False])
        conductance = np.zeros(3)
        SPARSE.propagate_spikes(conductance, spikes, weights)
        np.testing.assert_array_equal(conductance, weights[2])

    def test_batched_segments_land_on_the_right_samples(self):
        weights = np.eye(4)
        spikes = np.zeros((3, 4), dtype=bool)
        spikes[0, [0, 2]] = True  # sample 0: rows 0 and 2
        spikes[2, 3] = True       # sample 2: row 3; sample 1 silent
        conductance = np.zeros((3, 4))
        SPARSE.propagate_spikes(conductance, spikes, weights)
        np.testing.assert_array_equal(conductance[0], [1, 0, 1, 0])
        np.testing.assert_array_equal(conductance[1], 0.0)
        np.testing.assert_array_equal(conductance[2], [0, 0, 0, 1])

    def test_no_spikes_is_a_no_op(self):
        conductance = np.full((2, 3), 0.5)
        SPARSE.propagate_spikes(conductance, np.zeros((2, 5), dtype=bool),
                                np.ones((5, 3)))
        np.testing.assert_array_equal(conductance, 0.5)


@pytest.mark.parametrize("batched", [False, True])
class TestNeuronKernels:
    def test_lif_step_is_inherited_bitwise(self, batched):
        rng = np.random.default_rng(3)
        shape = (4, 9) if batched else (9,)
        v = rng.uniform(-70, -50, shape)
        refrac = rng.choice([0.0, 2.0], shape)
        current = rng.uniform(0, 30, shape)
        threshold = np.full(shape[-1], -54.0)
        kwargs = dict(decay=0.98, v_rest=-65.0, v_reset=-65.0,
                      refractory=5.0, dt=1.0)
        dv, dspk, dref = DENSE.lif_step(v.copy(), refrac.copy(), current,
                                        threshold, **kwargs)
        sv, sspk, sref = SPARSE.lif_step(v.copy(), refrac.copy(), current,
                                         threshold, **kwargs)
        np.testing.assert_array_equal(sv, dv)
        np.testing.assert_array_equal(sspk, dspk)
        np.testing.assert_array_equal(sref, dref)

    def test_theta_step_matches_dense_bitwise(self, batched):
        rng = np.random.default_rng(4)
        shape = (3, 8) if batched else (8,)
        theta = rng.uniform(0, 1, shape)
        spikes = _spikes(shape, 0.3, seed=5)
        dense_theta = DENSE.theta_step(theta.copy(), spikes,
                                       decay=0.999, theta_plus=0.05)
        sparse_theta = SPARSE.theta_step(theta.copy(), spikes,
                                         decay=0.999, theta_plus=0.05)
        np.testing.assert_array_equal(sparse_theta, dense_theta)

    def test_theta_step_without_bump(self, batched):
        shape = (2, 5) if batched else (5,)
        theta = np.full(shape, 0.25)
        spikes = np.ones(shape, dtype=bool)
        dense_theta = DENSE.theta_step(theta.copy(), spikes,
                                       decay=0.5, theta_plus=0.0)
        sparse_theta = SPARSE.theta_step(theta.copy(), spikes,
                                         decay=0.5, theta_plus=0.0)
        np.testing.assert_array_equal(sparse_theta, dense_theta)
        np.testing.assert_array_equal(sparse_theta, 0.125)


@pytest.mark.parametrize("mode", ["set", "add"])
@pytest.mark.parametrize("batched", [False, True])
class TestTraceKernels:
    def test_bump_trace_matches_dense_bitwise(self, mode, batched):
        rng = np.random.default_rng(6)
        shape = (3, 12) if batched else (12,)
        values = rng.uniform(0, 1, shape)
        spikes = _spikes(shape, 0.25, seed=7)
        dense_values = DENSE.bump_trace(values.copy(), spikes, 1.0, mode)
        sparse_values = SPARSE.bump_trace(values.copy(), spikes, 1.0, mode)
        np.testing.assert_array_equal(sparse_values, dense_values)

    def test_decay_state_is_shared(self, mode, batched):
        shape = (2, 6) if batched else (6,)
        dense_values = np.full(shape, 2.0)
        sparse_values = np.full(shape, 2.0)
        DENSE.decay_state(dense_values, 0.5)
        SPARSE.decay_state(sparse_values, 0.5)
        np.testing.assert_array_equal(sparse_values, dense_values)
        np.testing.assert_array_equal(sparse_values, 1.0)


@pytest.mark.parametrize("soft_bounds", [True, False])
@pytest.mark.parametrize("density", [0.0, 0.2, 1.0])
class TestSTDPKernels:
    def test_potentiation_matches_dense_bitwise(self, soft_bounds, density):
        rng = np.random.default_rng(9)
        n_pre, n_post = 15, 7
        pre_trace = rng.uniform(0, 1, n_pre)
        post_spikes = _spikes((n_post,), density, seed=10)
        weights = rng.uniform(0, 1, (n_pre, n_post))
        dense_delta = DENSE.stdp_potentiation(
            pre_trace, post_spikes, weights,
            nu=1e-2, w_max=1.0, soft_bounds=soft_bounds)
        sparse_delta = SPARSE.stdp_potentiation(
            pre_trace, post_spikes, weights,
            nu=1e-2, w_max=1.0, soft_bounds=soft_bounds)
        np.testing.assert_array_equal(sparse_delta, dense_delta)
        # Quiet postsynaptic columns contribute exactly nothing.
        np.testing.assert_array_equal(sparse_delta[:, ~post_spikes], 0.0)

    def test_depression_matches_dense_bitwise(self, soft_bounds, density):
        rng = np.random.default_rng(11)
        n_pre, n_post = 15, 7
        pre_spikes = _spikes((n_pre,), density, seed=12)
        post_trace = rng.uniform(0, 1, n_post)
        weights = rng.uniform(0, 1, (n_pre, n_post))
        dense_delta = DENSE.stdp_depression(
            pre_spikes, post_trace, weights,
            nu=1e-4, w_min=0.0, soft_bounds=soft_bounds)
        sparse_delta = SPARSE.stdp_depression(
            pre_spikes, post_trace, weights,
            nu=1e-4, w_min=0.0, soft_bounds=soft_bounds)
        np.testing.assert_array_equal(sparse_delta, dense_delta)
        assert (sparse_delta <= 0.0).all()

"""Shared fixtures for the backend-conformance suite.

The conformance tests are parametrized over *every* backend that reports
itself available in this environment, so a new backend registered through
``repro.backends`` is picked up automatically — including optional-dependency
backends like ``numba``, which simply drop out of the parametrization on
machines where the import probe fails (their registered-but-unavailable
behaviour is covered separately).

Tolerances come from the backend classes themselves: each backend declares
an equivalence tier (``exact`` or ``tolerance``) plus ``state_rtol`` /
``state_atol`` bounds for its float state, and :func:`assert_state_close`
applies exactly those bounds — bit-for-bit when a backend claims zero
tolerance (the dense reference), ``allclose`` otherwise.  Integer results
(spike counts, predictions, operation tallies) are never toleranced; every
tier must reproduce them exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import available_backends, get_backend

#: Names of every backend usable in this environment, in registration order.
#: Computed at collection time so the parametrized tests enumerate exactly
#: what ``repro backends list`` would report as available.
AVAILABLE_BACKEND_NAMES = list(available_backends())


@pytest.fixture(params=AVAILABLE_BACKEND_NAMES)
def backend_name(request) -> str:
    """Every available backend name, one parametrized case each."""
    return request.param


@pytest.fixture
def backend(backend_name: str):
    """The shared registry instance for ``backend_name``."""
    return get_backend(backend_name)


def assert_state_close(backend, actual, desired, err_msg: str = "") -> None:
    """Assert float state agreement at ``backend``'s declared tolerance.

    A backend declaring zero tolerance (``state_rtol == state_atol == 0.0``,
    i.e. the dense reference) is held to bit-for-bit equality; every other
    backend is held to its own ``state_rtol`` / ``state_atol`` bounds.
    """
    rtol = type(backend).state_rtol
    atol = type(backend).state_atol
    if rtol == 0.0 and atol == 0.0:
        np.testing.assert_array_equal(actual, desired, err_msg=err_msg)
    else:
        np.testing.assert_allclose(actual, desired, rtol=rtol, atol=atol,
                                   err_msg=err_msg)


@pytest.fixture(name="assert_state_close")
def assert_state_close_fixture():
    """Function-fixture alias so test modules need no conftest import."""
    return assert_state_close

"""Backend-conformance suite: every available backend vs the dense reference.

Auto-parametrized over :func:`repro.backends.available_backends` (see
``conftest.py``), so registering a new backend automatically enrolls it here.
Each backend is held to its *declared* equivalence tier:

* ``exact`` (dense, sparse, numba, auto) — spike decisions, counts,
  predictions, and operation tallies are bit-identical to the dense
  reference; float state may differ only by summation-order rounding
  (``state_rtol``/``state_atol`` at double-precision tightness; zero for
  dense itself).
* ``tolerance`` (float32) — integer results are *still* exact; float state
  is held to the backend's own single-precision bounds.

The suite checks three layers: individual kernels against their dense
counterparts, batched-vs-sequential agreement within each backend, and a
full golden-trace replay against the committed fixture.  A final test pins
the registry's degradation contract for backends whose ``available()``
probe fails.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.backends import (
    DenseBackend,
    available_backends,
    describe_backend,
    get_backend,
    register_backend,
)
from repro.core.config import SpikeDynConfig
from repro.models.spikedyn_model import SpikeDynModel

DENSE = get_backend("dense")

_TESTS_DIR = Path(__file__).resolve().parents[1]


def _load_golden_trace_module():
    """Import ``tests/snn/test_golden_trace.py`` (tests are not a package)."""
    path = _TESTS_DIR / "snn" / "test_golden_trace.py"
    spec = importlib.util.spec_from_file_location("golden_trace_module", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _spikes(shape, density, seed):
    return np.random.default_rng(seed).random(shape) < density


class TestDeclaredTiers:
    def test_every_backend_declares_a_known_tier(self, backend):
        from repro.backends.base import EQUIVALENCE_TIERS

        assert backend.equivalence_tier in EQUIVALENCE_TIERS
        assert describe_backend(backend.name)["tier"] == backend.equivalence_tier

    def test_exact_tier_backends_have_double_precision_bounds(self, backend):
        if backend.equivalence_tier != "exact":
            pytest.skip("tolerance-tier backend")
        assert type(backend).state_rtol <= 1e-9
        assert type(backend).state_atol <= 1e-12


@pytest.mark.parametrize("batched", [False, True])
class TestNeuronKernelConformance:
    def test_lif_step_spikes_are_exact_and_state_is_in_tier(
            self, backend, assert_state_close, batched):
        rng = np.random.default_rng(21)
        shape = (4, 9) if batched else (9,)
        v = rng.uniform(-70, -50, shape)
        refrac = rng.choice([0.0, 2.0], shape)
        current = rng.uniform(0, 30, shape)
        threshold = np.full(shape[-1], -54.0)
        kwargs = dict(decay=0.98, v_rest=-65.0, v_reset=-65.0,
                      refractory=5.0, dt=1.0)
        ref_v, ref_spk, ref_ref = DENSE.lif_step(
            v.copy(), refrac.copy(), current, threshold, **kwargs)
        got_v, got_spk, got_ref = backend.lif_step(
            v.copy(), refrac.copy(), current, threshold, **kwargs)
        # Spike decisions are boolean results: exact for every tier.
        np.testing.assert_array_equal(got_spk, ref_spk)
        assert_state_close(backend, got_v, ref_v, "membrane potential")
        assert_state_close(backend, got_ref, ref_ref, "refractory clocks")

    def test_theta_step_conforms(self, backend, assert_state_close, batched):
        rng = np.random.default_rng(22)
        shape = (3, 8) if batched else (8,)
        theta = rng.uniform(0, 1, shape)
        spikes = _spikes(shape, 0.3, seed=23)
        reference = DENSE.theta_step(theta.copy(), spikes,
                                     decay=0.999, theta_plus=0.05)
        actual = backend.theta_step(theta.copy(), spikes,
                                    decay=0.999, theta_plus=0.05)
        assert_state_close(backend, actual, reference, "theta")

    def test_decay_state_conforms(self, backend, assert_state_close, batched):
        shape = (2, 6) if batched else (6,)
        values = np.random.default_rng(24).uniform(0, 2, shape)
        reference = DENSE.decay_state(values.copy(), 0.9048374180359595)
        actual = backend.decay_state(values.copy(), 0.9048374180359595)
        assert_state_close(backend, actual, reference, "decayed state")


@pytest.mark.parametrize("density", [0.0, 0.03, 0.5, 1.0])
@pytest.mark.parametrize("batched", [False, True])
class TestPropagationConformance:
    def test_propagate_spikes_conforms(self, backend, assert_state_close,
                                       density, batched):
        rng = np.random.default_rng(25)
        n_pre, n_post, batch = 37, 11, 5
        shape = (batch, n_pre) if batched else (n_pre,)
        spikes = _spikes(shape, density, seed=26)
        weights = rng.random((n_pre, n_post))
        cond_shape = (batch, n_post) if batched else (n_post,)
        seed_cond = rng.random(cond_shape)
        reference = seed_cond.copy()
        DENSE.propagate_spikes(reference, spikes, weights)
        actual = np.asarray(seed_cond, dtype=backend.state_dtype).copy()
        backend.propagate_spikes(actual, spikes, weights)
        assert_state_close(backend, actual, reference, "conductance")

    def test_propagate_lateral_conforms(self, backend, assert_state_close,
                                        density, batched):
        rng = np.random.default_rng(27)
        n, batch = 23, 4
        shape = (batch, n) if batched else (n,)
        spikes = _spikes(shape, density, seed=28)
        seed_cond = rng.random(shape)
        reference = seed_cond.copy()
        DENSE.propagate_lateral(reference, spikes, 17.0)
        actual = np.asarray(seed_cond, dtype=backend.state_dtype).copy()
        backend.propagate_lateral(actual, spikes, 17.0)
        assert_state_close(backend, actual, reference, "lateral conductance")


@pytest.mark.parametrize("mode", ["set", "add"])
class TestTraceKernelConformance:
    def test_bump_trace_conforms(self, backend, assert_state_close, mode):
        rng = np.random.default_rng(29)
        values = rng.uniform(0, 1, 12)
        spikes = _spikes((12,), 0.25, seed=30)
        reference = DENSE.bump_trace(values.copy(), spikes, 1.0, mode)
        actual = backend.bump_trace(values.copy(), spikes, 1.0, mode)
        assert_state_close(backend, actual, reference, "trace values")


@pytest.mark.parametrize("soft_bounds", [True, False])
class TestSTDPKernelConformance:
    def test_potentiation_conforms(self, backend, assert_state_close,
                                   soft_bounds):
        rng = np.random.default_rng(31)
        n_pre, n_post = 15, 7
        pre_trace = rng.uniform(0, 1, n_pre)
        post_spikes = _spikes((n_post,), 0.4, seed=32)
        weights = rng.uniform(0, 1, (n_pre, n_post))
        reference = DENSE.stdp_potentiation(
            pre_trace, post_spikes, weights,
            nu=1e-2, w_max=1.0, soft_bounds=soft_bounds)
        actual = backend.stdp_potentiation(
            pre_trace, post_spikes, weights,
            nu=1e-2, w_max=1.0, soft_bounds=soft_bounds)
        assert_state_close(backend, actual, reference, "potentiation delta")
        # Sparsity structure is exact in every tier: quiet columns are zero.
        np.testing.assert_array_equal(np.asarray(actual)[:, ~post_spikes], 0.0)

    def test_depression_conforms(self, backend, assert_state_close,
                                 soft_bounds):
        rng = np.random.default_rng(33)
        n_pre, n_post = 15, 7
        pre_spikes = _spikes((n_pre,), 0.4, seed=34)
        post_trace = rng.uniform(0, 1, n_post)
        weights = rng.uniform(0, 1, (n_pre, n_post))
        reference = DENSE.stdp_depression(
            pre_spikes, post_trace, weights,
            nu=1e-4, w_min=0.0, soft_bounds=soft_bounds)
        actual = backend.stdp_depression(
            pre_spikes, post_trace, weights,
            nu=1e-4, w_min=0.0, soft_bounds=soft_bounds)
        assert_state_close(backend, actual, reference, "depression delta")
        np.testing.assert_array_equal(np.asarray(actual)[~pre_spikes], 0.0)


class TestBatchedVersusSequential:
    """Within one backend, batched and sequential inference must agree.

    Spike counts are integers, so they are asserted exactly for every tier —
    including float32, whose 1-D and batched propagation paths are built on
    the same segment-sum so single-precision rounding cannot differ between
    them.
    """

    def test_respond_batch_matches_sequential_respond(self, backend_name):
        config = SpikeDynConfig.scaled_down(
            n_input=64, n_exc=10, t_sim=30.0, seed=17, backend=backend_name
        )
        images = np.random.default_rng(17).random((6, 64)) * 0.7
        batched = SpikeDynModel(config).respond_batch(images)
        sequential_model = SpikeDynModel(config)
        sequential = np.stack([sequential_model.respond(image)
                               for image in images])
        np.testing.assert_array_equal(batched, sequential)


class TestGoldenTraceReplay:
    """Every available backend replays the committed golden trace.

    Spike counts must be bit-exact for *all* tiers; learned weights and
    adapted thresholds are held to each backend's declared state tolerance.
    """

    @pytest.fixture(scope="class")
    def golden(self):
        module = _load_golden_trace_module()
        return module, dict(np.load(module.FIXTURE))

    def test_backend_replays_the_fixture(self, backend, backend_name,
                                         assert_state_close, golden):
        module, expected = golden
        actual = module.compute_trace(backend=backend_name)
        np.testing.assert_array_equal(
            actual["inference_counts"], expected["inference_counts"],
            err_msg=f"{backend_name}: inference counts diverged",
        )
        np.testing.assert_array_equal(
            actual["learning_counts"], expected["learning_counts"],
            err_msg=f"{backend_name}: learning counts diverged",
        )
        assert_state_close(backend, actual["final_weights"],
                           expected["final_weights"],
                           f"{backend_name}: learned weights")
        assert_state_close(backend, actual["final_theta"],
                           expected["final_theta"],
                           f"{backend_name}: adapted theta")


class TestUnavailableBackendDegradation:
    """A backend whose ``available()`` probe fails degrades cleanly.

    It stays *registered* (visible, describable) but is excluded from the
    conformance parametrization source and cannot be instantiated through
    the registry — the same contract the numba backend follows on machines
    without the optional dependency.
    """

    def test_stub_backend_is_registered_but_not_available(self):
        class Stub(DenseBackend):
            name = "conformance-stub"
            description = "import probe always fails"

            @classmethod
            def available(cls):
                return False

        register_backend(Stub)
        try:
            assert "conformance-stub" not in available_backends()
            assert "conformance-stub" not in list(available_backends())
            info = describe_backend("conformance-stub")
            assert info["available"] is False
            assert info["tier"] == "exact"
            with pytest.raises(RuntimeError, match="not available"):
                get_backend("conformance-stub")
        finally:
            from repro import backends as backends_module

            backends_module._REGISTRY.pop("conformance-stub", None)

"""Error paths of backend selection: every wrong turn fails loudly.

Covers the registry (unknown names, registered-but-unavailable backends),
configuration validation, and the serving artifact layer — an artifact that
*records* an unavailable backend still loads (its arrays are
backend-agnostic), but rebuilding a model on that backend fails with an
``ArtifactError`` that names the override escape hatch.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import (
    DenseBackend,
    available_backends,
    describe_backend,
    get_backend,
    normalize_backend_name,
    register_backend,
)
from repro.core.config import SpikeDynConfig
from repro.models.base import ARTIFACT_METADATA_FILE
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving.artifacts import load_artifact
from repro.utils.serialization import ArtifactError


@pytest.fixture
def unavailable_backend():
    """A registered backend whose availability probe always fails."""

    class Unavailable(DenseBackend):
        name = "errors-unavailable"
        description = "dependency never importable"

        @classmethod
        def available(cls):
            return False

    register_backend(Unavailable)
    yield "errors-unavailable"
    from repro import backends as backends_module

    backends_module._REGISTRY.pop("errors-unavailable", None)


class TestRegistryErrors:
    def test_unknown_name_raises_value_error_listing_known_backends(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("does-not-exist")
        message = str(excinfo.value)
        for known in ("dense", "sparse", "float32", "numba", "auto"):
            assert known in message

    def test_unavailable_backend_raises_runtime_error(self,
                                                      unavailable_backend):
        with pytest.raises(RuntimeError, match="not available"):
            get_backend(unavailable_backend)

    def test_unavailable_backend_is_still_describable(self,
                                                      unavailable_backend):
        info = describe_backend(unavailable_backend)
        assert info["available"] is False
        assert info["name"] == unavailable_backend
        assert info["description"] == "dependency never importable"

    def test_unavailable_backend_is_excluded_from_available(
            self, unavailable_backend):
        assert unavailable_backend not in available_backends()

    def test_normalize_accepts_registered_but_unavailable_names(
            self, unavailable_backend):
        # Normalization is a *name* check, not an availability check —
        # configs and artifacts may legitimately carry the name of a
        # backend this environment cannot run.
        assert normalize_backend_name(unavailable_backend) == \
            unavailable_backend


class TestConfigErrors:
    def test_config_rejects_unknown_backend_names(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SpikeDynConfig.scaled_down(n_input=16, n_exc=4,
                                       backend="does-not-exist")

    def test_config_accepts_every_registered_backend_name(self):
        for name in ("dense", "sparse", "float32", "numba", "auto"):
            config = SpikeDynConfig.scaled_down(n_input=16, n_exc=4,
                                                backend=name)
            assert config.backend == name


class TestArtifactErrors:
    @pytest.fixture
    def artifact_dir(self, tmp_path):
        config = SpikeDynConfig.scaled_down(n_input=36, n_exc=6, t_sim=20.0,
                                            seed=1)
        model = SpikeDynModel(config)
        images = np.random.default_rng(1).random((3, 36)) * 0.7
        model.train_batch(images)
        model.assign_labels(images, [0, 1, 0])
        return model.save(tmp_path / "artifact")

    def _rewrite_backend(self, artifact_dir, backend_name):
        metadata_path = artifact_dir / ARTIFACT_METADATA_FILE
        metadata = json.loads(metadata_path.read_text())
        metadata["backend"] = backend_name
        metadata["config"]["backend"] = backend_name
        metadata_path.write_text(json.dumps(metadata))

    def test_artifact_with_unknown_backend_fails_at_load(self, artifact_dir):
        self._rewrite_backend(artifact_dir, "does-not-exist")
        with pytest.raises(ArtifactError, match="unknown backend"):
            load_artifact(artifact_dir)

    def test_artifact_with_unavailable_backend_loads_but_cannot_rebuild(
            self, artifact_dir, unavailable_backend):
        self._rewrite_backend(artifact_dir, unavailable_backend)
        # Loading succeeds: the stored arrays are backend-agnostic and the
        # recorded name is only the default for rebuilds.
        artifact = load_artifact(artifact_dir)
        assert artifact.backend == unavailable_backend
        # Rebuilding on the recorded default cannot work here, and the
        # error must say how to escape (override the backend).
        with pytest.raises(ArtifactError,
                           match="registered but not available"):
            artifact.build_model()
        with pytest.raises(ArtifactError, match="build_model"):
            artifact.build_model()

    def test_rebuild_backend_override_escapes_the_unavailable_default(
            self, artifact_dir, unavailable_backend):
        self._rewrite_backend(artifact_dir, unavailable_backend)
        artifact = load_artifact(artifact_dir)
        model = artifact.build_model(backend="dense")
        assert model.backend_name == "dense"
        # The rebuilt replica carries the artifact's learned state.
        np.testing.assert_array_equal(model.input_weights,
                                      artifact.arrays["input_weights"])

    def test_rebuild_on_available_recorded_backend_still_works(
            self, artifact_dir):
        self._rewrite_backend(artifact_dir, "float32")
        artifact = load_artifact(artifact_dir)
        model = artifact.build_model()
        assert model.backend_name == "float32"

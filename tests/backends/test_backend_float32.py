"""Float32 backend: half-memory state, exact integer results.

The ``tolerance`` tier relaxes only the *float state* (membranes, traces,
conductances, theta) to single-precision agreement; everything integer —
spike counts, predictions, label assignments, operation tallies — must stay
bit-identical to the dense reference.  These tests pin that split, the
actual dtype of the live state (the memory claim), and the serving
round-trip on a float32 replica.
"""

from __future__ import annotations

import numpy as np

from repro.backends import Float32Backend, get_backend
from repro.core.config import SpikeDynConfig
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving.artifacts import load_artifact
from repro.serving.inference import offline_predictions


def _config(backend, seed=41):
    return SpikeDynConfig.scaled_down(
        n_input=64, n_exc=10, t_sim=30.0, seed=seed, backend=backend
    )


def _images(seed, count=8, n_input=64):
    return np.random.default_rng(seed).random((count, n_input)) * 0.7


def _pair(seed=41):
    return SpikeDynModel(_config("dense", seed)), \
        SpikeDynModel(_config("float32", seed))


class TestTierDeclaration:
    def test_float32_declares_the_tolerance_tier(self):
        backend = get_backend("float32")
        assert isinstance(backend, Float32Backend)
        assert backend.equivalence_tier == "tolerance"
        assert backend.state_dtype == np.float32
        assert Float32Backend.state_rtol > 0.0


class TestStateDtype:
    def test_sequential_run_leaves_all_dynamic_state_in_float32(self):
        model = SpikeDynModel(_config("float32"))
        model.respond(_images(42, count=1)[0])
        network = model.network
        exc = network.group("excitatory")
        assert exc.v.dtype == np.float32
        assert exc.theta.dtype == np.float32
        assert exc.refrac_remaining.dtype == np.float32
        for name in ("input_to_exc",):
            assert network.connection(name).conductance.dtype == np.float32
        # Weights deliberately stay float64: artifacts keep full precision
        # and stay backend-agnostic.
        assert model.input_weights.dtype == np.float64

    def test_float32_state_halves_the_membrane_memory(self):
        dense, f32 = _pair()
        image = _images(43, count=1)[0]
        dense.respond(image)
        f32.respond(image)
        dense_v = dense.network.group("excitatory").v
        f32_v = f32.network.group("excitatory").v
        assert f32_v.nbytes * 2 == dense_v.nbytes


class TestExactIntegerResults:
    def test_batched_counts_and_tallies_match_dense(self):
        dense, f32 = _pair()
        images = _images(44)
        np.testing.assert_array_equal(f32.respond_batch(images),
                                      dense.respond_batch(images))
        assert f32.counter.as_dict() == dense.counter.as_dict()

    def test_trained_predictions_match_dense(self):
        dense, f32 = _pair(seed=45)
        train = _images(45, count=6)
        assign = _images(46, count=8)
        labels = [i % 2 for i in range(len(assign))]
        evaluate = _images(47, count=10)
        for model in (dense, f32):
            model.train_batch(train)
            model.assign_labels(assign, labels)
        np.testing.assert_array_equal(f32.predict(evaluate),
                                      dense.predict(evaluate))
        np.testing.assert_array_equal(f32.assignments, dense.assignments)

    def test_trained_weights_agree_at_single_precision(self):
        dense, f32 = _pair(seed=48)
        images = _images(48, count=6)
        dense_counts = dense.train_batch(images)
        f32_counts = f32.train_batch(images)
        np.testing.assert_array_equal(f32_counts, dense_counts)
        np.testing.assert_allclose(f32.input_weights, dense.input_weights,
                                   rtol=Float32Backend.state_rtol,
                                   atol=Float32Backend.state_atol)


class TestServingRoundTrip:
    def test_artifact_saved_from_float32_rebuilds_and_serves(self, tmp_path):
        _, f32 = _pair(seed=49)
        images = _images(49, count=6)
        f32.train_batch(images)
        f32.assign_labels(images, [i % 2 for i in range(len(images))])
        artifact_dir = f32.save(tmp_path / "f32-artifact")

        artifact = load_artifact(artifact_dir)
        assert artifact.backend == "float32"
        replica = artifact.build_model()
        assert replica.backend_name == "float32"
        # Weights persist at full precision regardless of compute dtype.
        np.testing.assert_array_equal(replica.input_weights,
                                      f32.input_weights)
        # Seeded encoding makes the comparison deterministic (a freshly
        # rebuilt replica's encoder RNG is at a different stream position
        # than the original's, which already consumed training draws).
        evaluate = list(_images(50, count=5))
        seeds = list(range(len(evaluate)))
        np.testing.assert_array_equal(
            offline_predictions(replica, evaluate, seeds),
            offline_predictions(f32, evaluate, seeds))

    def test_dense_artifact_rebuilds_on_float32_with_same_predictions(
            self, tmp_path):
        dense, _ = _pair(seed=51)
        images = _images(51, count=6)
        dense.train_batch(images)
        dense.assign_labels(images, [i % 3 for i in range(len(images))])
        artifact = load_artifact(dense.save(tmp_path / "dense-artifact"))
        replica = artifact.build_model(backend="float32")
        assert replica.backend_name == "float32"
        evaluate = list(_images(52, count=5))
        seeds = list(range(len(evaluate)))
        np.testing.assert_array_equal(
            offline_predictions(replica, evaluate, seeds),
            offline_predictions(dense, evaluate, seeds))

"""Tests for the compute-backend registry."""

from __future__ import annotations

import pytest

from repro.backends import (
    AutoBackend,
    Backend,
    DenseBackend,
    Float32Backend,
    NumbaBackend,
    SparseEventBackend,
    available_backends,
    backend_names,
    get_backend,
    normalize_backend_name,
    register_backend,
)


class TestRegistry:
    def test_shipped_backends_are_registered_in_order(self):
        assert backend_names() == ["dense", "sparse", "float32", "numba",
                                   "auto", "eventqueue"]

    def test_always_available_backends(self):
        from repro.backends import EventQueueBackend

        available = available_backends()
        assert available["dense"] is DenseBackend
        assert available["sparse"] is SparseEventBackend
        assert available["float32"] is Float32Backend
        assert available["auto"] is AutoBackend
        assert available["eventqueue"] is EventQueueBackend

    def test_event_support_is_declared_per_backend(self):
        from repro.backends import EventQueueBackend, describe_backend

        assert EventQueueBackend.supports_events is True
        assert DenseBackend.supports_events is False
        assert describe_backend("eventqueue")["events"] is True
        assert describe_backend("dense")["events"] is False

    def test_numba_availability_tracks_the_import_probe(self):
        # The numba backend is always *registered*; whether it is available
        # must exactly track whether the optional dependency imports.
        import importlib.util

        expected = importlib.util.find_spec("numba") is not None
        assert NumbaBackend.available() is expected
        assert ("numba" in available_backends()) is expected

    def test_get_backend_returns_shared_instances(self):
        assert get_backend("dense") is get_backend("dense")
        assert get_backend("sparse") is get_backend("sparse")
        assert get_backend("dense") is not get_backend("sparse")

    def test_none_resolves_to_the_dense_default(self):
        assert get_backend(None) is get_backend("dense")
        assert get_backend().name == "dense"

    def test_instances_pass_through(self):
        instance = SparseEventBackend()
        assert get_backend(instance) is instance

    def test_unknown_name_lists_the_known_backends(self):
        with pytest.raises(ValueError, match="dense.*sparse"):
            get_backend("quantum")
        with pytest.raises(ValueError, match="unknown backend"):
            normalize_backend_name("quantum")

    def test_normalize_returns_known_names(self):
        assert normalize_backend_name("sparse") == "sparse"

    def test_reregistering_the_same_class_is_idempotent(self):
        assert register_backend(DenseBackend) is DenseBackend

    def test_registering_a_name_clash_fails(self):
        class Impostor(DenseBackend):
            name = "dense"

        with pytest.raises(ValueError, match="already registered"):
            register_backend(Impostor)

    def test_registering_an_unnamed_backend_fails(self):
        class Nameless(Backend):  # pragma: no cover - never instantiated
            pass

        with pytest.raises(ValueError, match="must set a name"):
            register_backend(Nameless)

    def test_unavailable_backend_is_reported_not_instantiated(self):
        class Unavailable(DenseBackend):
            name = "unavailable-for-testing"

            @classmethod
            def available(cls):
                return False

        register_backend(Unavailable)
        try:
            assert "unavailable-for-testing" not in available_backends()
            with pytest.raises(RuntimeError, match="not available"):
                get_backend("unavailable-for-testing")
        finally:
            from repro import backends as backends_module

            backends_module._REGISTRY.pop("unavailable-for-testing", None)

    def test_describe_is_json_safe(self):
        info = get_backend("sparse").describe()
        assert info["name"] == "sparse"
        assert info["available"] is True
        assert isinstance(info["description"], str) and info["description"]

    def test_describe_backend_works_without_instantiation(self):
        from repro.backends import describe_backend

        class Unavailable(DenseBackend):
            name = "describe-unavailable"
            description = "never importable"

            @classmethod
            def available(cls):
                return False

            def __init__(self):  # pragma: no cover - must never run
                raise AssertionError("describe_backend must not instantiate")

        register_backend(Unavailable)
        try:
            info = describe_backend("describe-unavailable")
            assert info == {
                "name": "describe-unavailable",
                "description": "never importable",
                "available": False,
                "tier": "exact",
                "events": False,
            }
        finally:
            from repro import backends as backends_module

            backends_module._REGISTRY.pop("describe-unavailable", None)

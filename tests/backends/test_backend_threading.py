"""Backend selection threads through network, config, models, and artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend
from repro.core.config import SpikeDynConfig
from repro.experiments.common import ExperimentScale
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel
from repro.runner.jobs import JobSpec
from repro.serving.artifacts import load_artifact
from repro.snn.network import Network
from repro.snn.neurons import InputGroup, LIFGroup
from repro.snn.synapses import Connection
from repro.utils.serialization import ArtifactError


def _tiny_config(**overrides):
    defaults = dict(n_input=16, n_exc=6, t_sim=20.0, seed=0)
    defaults.update(overrides)
    return SpikeDynConfig.scaled_down(**defaults)


class TestNetworkBackend:
    def _network(self, backend=None):
        network = Network(backend=backend)
        inputs = network.add_group(InputGroup(4, name="input"))
        hidden = network.add_group(LIFGroup(3, name="hidden"))
        network.add_connection(Connection(inputs, hidden, np.ones((4, 3))))
        return network

    def test_default_backend_is_dense(self):
        network = self._network()
        assert network.backend_name == "dense"

    def test_network_assigns_its_backend_to_components(self):
        network = self._network(backend="sparse")
        assert network.backend_name == "sparse"
        for group in network.groups.values():
            assert group.backend is get_backend("sparse")
        for connection in network.connections:
            assert connection.backend is get_backend("sparse")

    def test_set_backend_retargets_everything(self):
        network = self._network()
        network.set_backend("sparse")
        assert network.backend_name == "sparse"
        assert all(g.backend is get_backend("sparse")
                   for g in network.groups.values())
        assert all(c.backend is get_backend("sparse")
                   for c in network.connections)
        network.set_backend("dense")
        assert network.backend_name == "dense"

    def test_unknown_backend_is_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Network(backend="quantum")


class TestConfigBackend:
    def test_config_records_and_validates_the_backend(self):
        assert _tiny_config().backend == "dense"
        assert _tiny_config(backend="sparse").backend == "sparse"
        with pytest.raises(ValueError, match="unknown backend"):
            _tiny_config(backend="quantum")

    def test_config_backend_reaches_the_model_network(self):
        model = SpikeDynModel(_tiny_config(backend="sparse"))
        assert model.backend_name == "sparse"
        assert "backend" in model.describe()
        assert model.describe()["backend"] == "sparse"

    def test_constructor_backend_overrides_the_config(self):
        model = DiehlCookModel(_tiny_config(), backend="sparse")
        assert model.backend_name == "sparse"
        # The config follows the override, so a saved artifact's top-level
        # backend and config.backend can never disagree.
        assert model.config.backend == "sparse"

    def test_constructor_override_saves_a_consistent_artifact(self, tmp_path):
        model = SpikeDynModel(_tiny_config(), backend="sparse")
        artifact = load_artifact(model.save(tmp_path / "overridden"))
        assert artifact.backend == "sparse"
        assert artifact.config.backend == "sparse"

    def test_set_backend_keeps_config_and_saved_artifact_consistent(
            self, tmp_path):
        model = SpikeDynModel(_tiny_config())
        model.set_backend("sparse")
        assert model.backend_name == "sparse"
        assert model.config.backend == "sparse"
        artifact = load_artifact(model.save(tmp_path / "switched"))
        assert artifact.backend == "sparse"
        assert artifact.config.backend == "sparse"

    def test_config_round_trips_through_dict(self):
        config = _tiny_config(backend="sparse")
        assert SpikeDynConfig.from_dict(config.to_dict()).backend == "sparse"


class TestScaleAndJobBackend:
    def test_scale_backend_reaches_the_config(self):
        scale = ExperimentScale.tiny(backend="sparse")
        assert scale.config(8).backend == "sparse"
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentScale.tiny(backend="quantum")

    def test_backend_is_part_of_the_job_key(self):
        dense_job = JobSpec("fig5", ExperimentScale.tiny())
        sparse_job = JobSpec("fig5", ExperimentScale.tiny(backend="sparse"))
        assert dense_job.backend == "dense"
        assert sparse_job.backend == "sparse"
        assert dense_job.key() != sparse_job.key()
        assert dense_job.payload()["scale"]["backend"] == "dense"

    def test_job_round_trip_preserves_the_backend(self):
        job = JobSpec("fig5", ExperimentScale.tiny(backend="sparse"))
        restored = JobSpec.from_dict(job.to_dict())
        assert restored.backend == "sparse"
        assert restored.key() == job.key()


class TestArtifactBackend:
    def _saved(self, tmp_path, backend="dense"):
        model = SpikeDynModel(_tiny_config(backend=backend))
        return model, model.save(tmp_path / "artifact")

    def test_schema_v3_records_the_backend(self, tmp_path):
        _, directory = self._saved(tmp_path, backend="sparse")
        artifact = load_artifact(directory)
        assert artifact.schema_version == 3
        assert artifact.backend == "sparse"
        assert artifact.describe()["backend"] == "sparse"

    def test_build_model_defaults_to_the_recorded_backend(self, tmp_path):
        _, directory = self._saved(tmp_path, backend="sparse")
        rebuilt = load_artifact(directory).build_model()
        assert rebuilt.backend_name == "sparse"

    def test_build_model_backend_override(self, tmp_path):
        saved, directory = self._saved(tmp_path, backend="dense")
        rebuilt = load_artifact(directory).build_model(backend="sparse")
        assert rebuilt.backend_name == "sparse"
        np.testing.assert_array_equal(rebuilt.input_weights,
                                      saved.input_weights)

    def test_cross_backend_load_state_is_allowed(self, tmp_path):
        _, directory = self._saved(tmp_path, backend="sparse")
        dense_model = SpikeDynModel(_tiny_config())
        dense_model.load_state(directory)  # backend mismatch is exempt
        assert dense_model.backend_name == "dense"

    def test_unknown_recorded_backend_is_rejected(self, tmp_path):
        import json

        _, directory = self._saved(tmp_path)
        metadata_path = directory / "model.json"
        metadata = json.loads(metadata_path.read_text())
        metadata["backend"] = "quantum"
        metadata["config"]["backend"] = "dense"
        metadata_path.write_text(json.dumps(metadata))
        with pytest.raises(ArtifactError, match="unknown backend"):
            load_artifact(directory)

    def test_v3_artifact_without_backend_field_is_rejected(self, tmp_path):
        import json

        _, directory = self._saved(tmp_path)
        metadata_path = directory / "model.json"
        metadata = json.loads(metadata_path.read_text())
        del metadata["backend"]
        metadata_path.write_text(json.dumps(metadata))
        with pytest.raises(ArtifactError, match="missing the 'backend'"):
            load_artifact(directory)

    def test_legacy_v2_artifact_defaults_to_dense(self, tmp_path):
        import json

        _, directory = self._saved(tmp_path)
        metadata_path = directory / "model.json"
        metadata = json.loads(metadata_path.read_text())
        metadata["schema_version"] = 2
        del metadata["backend"]
        del metadata["config"]["backend"]
        metadata["meta"].pop("backend", None)
        metadata_path.write_text(json.dumps(metadata))
        artifact = load_artifact(directory)
        assert artifact.schema_version == 2
        assert artifact.backend == "dense"
        assert artifact.build_model().backend_name == "dense"

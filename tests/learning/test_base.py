"""Tests for the learning-rule base class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.base import LearningRule
from repro.snn.neurons import InputGroup, LIFGroup
from repro.snn.synapses import Connection


def make_connection(n_pre=4, n_post=3, **kwargs) -> Connection:
    pre = InputGroup(n_pre, name="pre")
    post = LIFGroup(n_post, name="post")
    return Connection(pre, post, np.full((n_pre, n_post), 0.5), **kwargs)


class TestLearningRuleBase:
    def test_traces_are_lazily_created(self):
        rule = LearningRule()
        assert rule.pre_trace is None and rule.post_trace is None
        connection = make_connection()
        rule.on_sample_start(connection)
        assert rule.pre_trace.n == 4
        assert rule.post_trace.n == 3

    def test_traces_are_rebuilt_when_sizes_change(self):
        rule = LearningRule()
        rule.on_sample_start(make_connection(4, 3))
        rule.on_sample_start(make_connection(6, 5))
        assert rule.pre_trace.n == 6
        assert rule.post_trace.n == 5

    def test_on_sample_start_resets_traces(self):
        rule = LearningRule()
        connection = make_connection()
        rule.on_sample_start(connection)
        rule.pre_trace.values[:] = 1.0
        rule.on_sample_start(connection)
        np.testing.assert_allclose(rule.pre_trace.values, 0.0)

    def test_step_is_abstract(self):
        rule = LearningRule()
        with pytest.raises(NotImplementedError):
            rule.step(make_connection(), 1.0, 0)

    def test_on_sample_end_normalizes_the_connection(self):
        rule = LearningRule()
        connection = make_connection(norm=2.0, w_max=3.0)
        rule.on_sample_end(connection)
        np.testing.assert_allclose(connection.weights.sum(axis=0), 2.0)

    def test_reset_clears_trace_values(self):
        rule = LearningRule()
        connection = make_connection()
        rule.on_sample_start(connection)
        rule.pre_trace.values[:] = 0.7
        rule.reset()
        np.testing.assert_allclose(rule.pre_trace.values, 0.0)

    def test_rejects_non_positive_time_constants(self):
        with pytest.raises(ValueError):
            LearningRule(tau_pre=0.0)
        with pytest.raises(ValueError):
            LearningRule(tau_post=-1.0)

"""Tests for the ASP (adaptive synaptic plasticity) comparator rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.asp import ASPLearningRule
from repro.learning.stdp import PairwiseSTDP
from repro.snn.neurons import InputGroup, LIFGroup
from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection


def make_connection(n_pre=4, n_post=3, initial=0.5, *, rule=None):
    pre = InputGroup(n_pre, name="pre")
    post = LIFGroup(n_post, name="post")
    connection = Connection(pre, post, np.full((n_pre, n_post), initial),
                            learning_rule=rule)
    return pre, post, connection


class TestWeightLeak:
    def test_weights_leak_towards_baseline_without_spikes(self):
        rule = ASPLearningRule(nu_pre=0.0, nu_post=0.0, tau_leak=100.0,
                               leak_activity_gain=0.0, w_baseline=0.0)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        for t in range(10):
            rule.step(connection, 1.0, t)
        assert np.all(connection.weights < before)
        assert np.all(connection.weights > 0.0)

    def test_leak_pulls_towards_configured_baseline(self):
        rule = ASPLearningRule(nu_pre=0.0, nu_post=0.0, tau_leak=5.0,
                               leak_activity_gain=0.0, w_baseline=0.3)
        pre, post, connection = make_connection(initial=0.9, rule=rule)
        rule.on_sample_start(connection)
        for t in range(300):
            rule.step(connection, 1.0, t)
        np.testing.assert_allclose(connection.weights, 0.3, atol=1e-3)

    def test_activity_accelerates_the_leak(self):
        def final_weight(spiking: bool) -> float:
            rule = ASPLearningRule(nu_pre=0.0, nu_post=0.0, tau_leak=100.0,
                                   leak_activity_gain=5.0)
            pre, post, connection = make_connection(rule=rule)
            rule.on_sample_start(connection)
            for t in range(20):
                post.spikes = np.array([spiking, False, False])
                rule.step(connection, 1.0, t)
            return float(connection.weights[0, 0])

        assert final_weight(True) < final_weight(False)

    def test_leak_is_clamped_to_half_per_step(self):
        rule = ASPLearningRule(nu_pre=0.0, nu_post=0.0, tau_leak=1e-3,
                               leak_activity_gain=100.0)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        post.spikes = np.ones(3, dtype=bool)
        rule.step(connection, 1.0, 0)
        # Even with an absurd leak configuration, at most half of the weight
        # (relative to the baseline) disappears in a single step.
        assert np.all(connection.weights >= 0.25 - 1e-12)


class TestAdaptiveLearningRate:
    def test_recent_activity_boosts_potentiation(self):
        def potentiation_delta(with_history: bool) -> float:
            rule = ASPLearningRule(nu_pre=0.0, nu_post=0.1, soft_bounds=False,
                                   learning_rate_gain=1.0, tau_leak=1e9)
            pre, post, connection = make_connection(rule=rule)
            rule.on_sample_start(connection)
            # Optional history of postsynaptic activity for neuron 0.
            for t in range(5):
                pre.spikes = np.zeros(4, dtype=bool)
                post.spikes = np.array([with_history, False, False])
                rule.step(connection, 1.0, t)
            # Build the presynaptic trace, then trigger one potentiation event.
            pre.spikes = np.array([True, False, False, False])
            post.spikes = np.zeros(3, dtype=bool)
            rule.step(connection, 1.0, 5)
            before = connection.weights[0, 0]
            pre.spikes = np.zeros(4, dtype=bool)
            post.spikes = np.array([True, False, False])
            rule.step(connection, 1.0, 6)
            return float(connection.weights[0, 0] - before)

        assert potentiation_delta(True) > potentiation_delta(False)

    def test_zero_gain_reduces_to_plain_stdp_potentiation(self):
        asp = ASPLearningRule(nu_pre=0.0, nu_post=0.1, soft_bounds=False,
                              learning_rate_gain=0.0, leak_activity_gain=0.0,
                              tau_leak=1e12)
        stdp = PairwiseSTDP(nu_pre=0.0, nu_post=0.1, soft_bounds=False)
        results = []
        for rule in (asp, stdp):
            pre, post, connection = make_connection(rule=rule)
            rule.on_sample_start(connection)
            pre.spikes = np.array([True, False, False, False])
            post.spikes = np.zeros(3, dtype=bool)
            rule.step(connection, 1.0, 0)
            pre.spikes = np.zeros(4, dtype=bool)
            post.spikes = np.array([True, False, False])
            rule.step(connection, 1.0, 1)
            results.append(connection.weights[0, 0])
        assert results[0] == pytest.approx(results[1], rel=1e-6)


class TestBookkeeping:
    def test_asp_counts_more_operations_than_stdp(self):
        """ASP's extra traces and leak are the energy overhead of Fig. 1(b)."""
        def operations(rule) -> int:
            pre, post, connection = make_connection(rule=rule)
            counter = OperationCounter()
            rule.on_sample_start(connection)
            rng = np.random.default_rng(0)
            for t in range(20):
                pre.spikes = rng.random(4) < 0.3
                post.spikes = rng.random(3) < 0.3
                rule.step(connection, 1.0, t, counter)
            return counter.total_ops()

        asp_ops = operations(ASPLearningRule())
        stdp_ops = operations(PairwiseSTDP())
        assert asp_ops > stdp_ops

    def test_reset_clears_activity_trace(self):
        rule = ASPLearningRule()
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        post.spikes = np.ones(3, dtype=bool)
        rule.step(connection, 1.0, 0)
        assert rule._activity is not None
        rule.reset()
        assert rule._activity is None

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ASPLearningRule(tau_leak=0.0)
        with pytest.raises(ValueError):
            ASPLearningRule(leak_activity_gain=-1.0)
        with pytest.raises(ValueError):
            ASPLearningRule(tau_activity=-5.0)

"""Tests for the pair-based trace STDP rule (the baseline's learning rule)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.stdp import PairwiseSTDP
from repro.snn.neurons import InputGroup, LIFGroup
from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection


def make_connection(n_pre=4, n_post=3, initial=0.5, *, rule=None, w_max=1.0):
    pre = InputGroup(n_pre, name="pre")
    post = LIFGroup(n_post, name="post")
    connection = Connection(pre, post, np.full((n_pre, n_post), initial),
                            w_max=w_max, learning_rule=rule)
    return pre, post, connection


class TestPotentiation:
    def test_postsynaptic_spike_potentiates_recently_active_inputs(self):
        rule = PairwiseSTDP(nu_post=0.1, nu_pre=0.0, soft_bounds=False)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)

        # Step 1: presynaptic neuron 0 spikes (builds its trace).
        pre.spikes = np.array([True, False, False, False])
        post.spikes = np.zeros(3, dtype=bool)
        rule.step(connection, 1.0, 0)
        before = connection.weights.copy()

        # Step 2: postsynaptic neuron 1 spikes.
        pre.spikes = np.zeros(4, dtype=bool)
        post.spikes = np.array([False, True, False])
        rule.step(connection, 1.0, 1)

        assert connection.weights[0, 1] > before[0, 1]
        # Synapses from silent inputs to the spiking neuron are unchanged.
        np.testing.assert_allclose(connection.weights[2:, 1], before[2:, 1])
        # Synapses to silent postsynaptic neurons are unchanged.
        np.testing.assert_allclose(connection.weights[:, 0], before[:, 0])

    def test_potentiation_magnitude_scales_with_learning_rate(self):
        deltas = []
        for nu_post in (0.01, 0.1):
            rule = PairwiseSTDP(nu_post=nu_post, nu_pre=0.0, soft_bounds=False)
            pre, post, connection = make_connection(rule=rule)
            rule.on_sample_start(connection)
            pre.spikes = np.array([True, False, False, False])
            post.spikes = np.zeros(3, dtype=bool)
            rule.step(connection, 1.0, 0)
            pre.spikes = np.zeros(4, dtype=bool)
            post.spikes = np.array([True, False, False])
            rule.step(connection, 1.0, 1)
            deltas.append(connection.weights[0, 0] - 0.5)
        assert deltas[1] > deltas[0] > 0.0

    def test_soft_bounds_shrink_updates_near_w_max(self):
        def delta_for_initial(initial):
            rule = PairwiseSTDP(nu_post=0.1, nu_pre=0.0, soft_bounds=True)
            pre, post, connection = make_connection(initial=initial, rule=rule)
            rule.on_sample_start(connection)
            pre.spikes = np.array([True, False, False, False])
            post.spikes = np.zeros(3, dtype=bool)
            rule.step(connection, 1.0, 0)
            pre.spikes = np.zeros(4, dtype=bool)
            post.spikes = np.array([True, False, False])
            rule.step(connection, 1.0, 1)
            return connection.weights[0, 0] - initial

        assert delta_for_initial(0.9) < delta_for_initial(0.1)


class TestDepression:
    def test_presynaptic_spike_depresses_weights_of_active_outputs(self):
        rule = PairwiseSTDP(nu_post=0.0, nu_pre=0.1, soft_bounds=False)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)

        # Step 1: postsynaptic neuron 2 spikes (builds its trace).
        pre.spikes = np.zeros(4, dtype=bool)
        post.spikes = np.array([False, False, True])
        rule.step(connection, 1.0, 0)
        before = connection.weights.copy()

        # Step 2: presynaptic neuron 0 spikes.
        pre.spikes = np.array([True, False, False, False])
        post.spikes = np.zeros(3, dtype=bool)
        rule.step(connection, 1.0, 1)

        assert connection.weights[0, 2] < before[0, 2]
        np.testing.assert_allclose(connection.weights[1:, :], before[1:, :])

    def test_weights_never_leave_bounds(self):
        rule = PairwiseSTDP(nu_post=1.0, nu_pre=1.0, soft_bounds=False)
        pre, post, connection = make_connection(rule=rule)
        rng = np.random.default_rng(0)
        rule.on_sample_start(connection)
        for t in range(50):
            pre.spikes = rng.random(4) < 0.5
            post.spikes = rng.random(3) < 0.5
            rule.step(connection, 1.0, t)
        assert connection.weights.min() >= connection.w_min
        assert connection.weights.max() <= connection.w_max


class TestBookkeeping:
    def test_no_spikes_no_weight_change(self):
        rule = PairwiseSTDP()
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        for t in range(5):
            rule.step(connection, 1.0, t)
        np.testing.assert_array_equal(connection.weights, before)

    def test_zero_learning_rates_freeze_weights(self):
        rule = PairwiseSTDP(nu_pre=0.0, nu_post=0.0)
        pre, post, connection = make_connection(rule=rule)
        rule.on_sample_start(connection)
        before = connection.weights.copy()
        pre.spikes = np.ones(4, dtype=bool)
        post.spikes = np.ones(3, dtype=bool)
        rule.step(connection, 1.0, 0)
        np.testing.assert_array_equal(connection.weights, before)

    def test_counter_records_weight_updates(self):
        rule = PairwiseSTDP(nu_post=0.1, soft_bounds=False)
        pre, post, connection = make_connection(rule=rule)
        counter = OperationCounter()
        rule.on_sample_start(connection)
        pre.spikes = np.ones(4, dtype=bool)
        post.spikes = np.ones(3, dtype=bool)
        rule.step(connection, 1.0, 0, counter)
        assert counter.weight_updates > 0
        assert counter.trace_updates > 0

    def test_rejects_negative_learning_rates(self):
        with pytest.raises(ValueError):
            PairwiseSTDP(nu_pre=-1e-3)
        with pytest.raises(ValueError):
            PairwiseSTDP(nu_post=-1e-3)

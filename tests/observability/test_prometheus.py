"""Prometheus renderer/parser tests: round-trips and strict rejection."""

from __future__ import annotations

import math

import pytest

from repro.observability.prometheus import (
    METRIC_PREFIX,
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    render_prometheus,
)
from repro.serving.metrics import ServingMetrics


@pytest.fixture
def snapshot():
    metrics = ServingMetrics()
    metrics.record_request()
    metrics.record_request()
    metrics.record_batch(2, [0.001, 0.004])
    metrics.record_batch(4, [0.002, 0.002, 0.003, 0.008])
    metrics.record_rejected()
    metrics.record_errors(1)
    snapshot = metrics.snapshot(queue_depth=3, drift={"observed": 6, "alerts": 1})
    snapshot["backend"] = "dense"
    snapshot["model"] = "spikedyn"
    return snapshot


class TestRender:
    def test_round_trip_through_the_parser(self, snapshot):
        series = parse_prometheus_text(render_prometheus(snapshot))
        assert series[f"{METRIC_PREFIX}_requests_total"][()] == 2.0
        assert series[f"{METRIC_PREFIX}_responses_total"][()] == 6.0
        assert series[f"{METRIC_PREFIX}_errors_total"][()] == 1.0
        assert series[f"{METRIC_PREFIX}_rejected_total"][()] == 1.0
        assert series[f"{METRIC_PREFIX}_batches_total"][()] == 2.0
        assert series[f"{METRIC_PREFIX}_queue_depth"][()] == 3.0

    def test_histogram_buckets_are_cumulative(self, snapshot):
        series = parse_prometheus_text(render_prometheus(snapshot))
        buckets = series[f"{METRIC_PREFIX}_batch_size_bucket"]
        assert buckets[(("le", "2"),)] == 1.0
        assert buckets[(("le", "4"),)] == 2.0
        assert buckets[(("le", "+Inf"),)] == 2.0
        assert series[f"{METRIC_PREFIX}_batch_size_count"][()] == 2.0
        assert series[f"{METRIC_PREFIX}_batch_size_sum"][()] == 6.0

    def test_latency_quantiles_use_quantile_labels(self, snapshot):
        series = parse_prometheus_text(render_prometheus(snapshot))
        quantiles = series[f"{METRIC_PREFIX}_latency_ms"]
        labels = {key[0][1] for key in quantiles}
        assert labels == {"0.5", "0.95", "0.99"}
        assert all(value >= 0.0 for value in quantiles.values())
        assert series[f"{METRIC_PREFIX}_latency_window"][()] == 6.0
        assert series[f"{METRIC_PREFIX}_latency_mean_ms"][()] > 0.0
        assert series[f"{METRIC_PREFIX}_latency_max_ms"][()] == pytest.approx(8.0)

    def test_info_gauge_carries_identity_labels(self, snapshot):
        series = parse_prometheus_text(render_prometheus(snapshot))
        info = series[f"{METRIC_PREFIX}_info"]
        ((labels, value),) = info.items()
        assert dict(labels) == {"backend": "dense", "model": "spikedyn"}
        assert value == 1.0

    def test_drift_fields_become_gauges(self, snapshot):
        series = parse_prometheus_text(render_prometheus(snapshot))
        assert series[f"{METRIC_PREFIX}_drift_observed"][()] == 6.0
        assert series[f"{METRIC_PREFIX}_drift_alerts"][()] == 1.0

    def test_missing_sections_are_simply_absent(self):
        series = parse_prometheus_text(render_prometheus({"requests_total": 1}))
        assert set(series) == {f"{METRIC_PREFIX}_requests_total"}

    def test_empty_metrics_render_without_histogram(self):
        text = render_prometheus(ServingMetrics().snapshot())
        series = parse_prometheus_text(text)
        assert f"{METRIC_PREFIX}_batch_size_bucket" not in series
        assert series[f"{METRIC_PREFIX}_latency_window"][()] == 0.0

    def test_every_sample_has_help_and_type(self, snapshot):
        lines = render_prometheus(snapshot).splitlines()
        documented = {line.split()[2] for line in lines if line.startswith("# TYPE")}
        for line in lines:
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split()[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            assert base in documented, f"undocumented sample {name}"

    def test_label_values_are_escaped(self):
        text = render_prometheus({"requests_total": 1, "backend": 'we"ird\\name', "model": "m"})
        series = parse_prometheus_text(text)
        ((labels, _),) = series[f"{METRIC_PREFIX}_info"].items()
        assert dict(labels)["backend"] == 'we\\"ird\\\\name'

    def test_content_type_pins_exposition_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestParserRejections:
    def test_accepts_inf_and_nan_values(self):
        series = parse_prometheus_text("a 1\nb +Inf\nc -Inf\nd NaN\n")
        assert series["b"][()] == math.inf
        assert series["c"][()] == -math.inf
        assert math.isnan(series["d"][()])

    def test_rejects_unknown_comment(self):
        with pytest.raises(ValueError, match="neither # HELP nor # TYPE"):
            parse_prometheus_text("# COMMENT something\n")

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="invalid metric type"):
            parse_prometheus_text("# TYPE a frobnicator\n")

    def test_rejects_bad_metric_name_in_header(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            parse_prometheus_text("# HELP 9bad help text\n")

    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("9starts_with_digit 1\n")

    def test_rejects_missing_value(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("lonely_name\n")

    def test_rejects_malformed_label(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_prometheus_text("a{key=unquoted} 1\n")

    def test_rejects_non_numeric_value(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_prometheus_text("a{} twelve\n")

    def test_rejects_unterminated_label_value(self):
        with pytest.raises(ValueError, match="unterminated|malformed"):
            parse_prometheus_text('a{key="open 1\n')

    def test_error_messages_carry_line_numbers(self):
        with pytest.raises(ValueError, match="line 3"):
            parse_prometheus_text("a 1\nb 2\nbroken line here extra\n")

    def test_labels_with_escaped_quotes_and_commas(self):
        series = parse_prometheus_text('a{k="x,y",j="a\\"b"} 4\n')
        ((labels, value),) = series["a"].items()
        assert dict(labels) == {"k": "x,y", "j": 'a\\"b'}
        assert value == 4.0

    def test_blank_lines_are_ignored(self):
        assert parse_prometheus_text("\n\na 1\n\n")["a"][()] == 1.0

    def test_accepts_untyped_info_samples(self):
        # Exporters may emit bare "info" samples with no # TYPE header at
        # all; any number of them parse fine.
        series = parse_prometheus_text("build_info{rev=\"abc\"} 1\nuptime 3\n")
        assert series["build_info"][(("rev", "abc"),)] == 1.0
        assert series["uptime"][()] == 3.0

    def test_rejects_duplicate_type_for_one_family(self):
        text = ("# TYPE a counter\na 1\n"
                "# TYPE b gauge\nb 2\n"
                "# TYPE a counter\na 3\n")
        with pytest.raises(ValueError, match="line 5.*duplicate metric family 'a'"):
            parse_prometheus_text(text)

    def test_duplicate_rejection_names_the_first_declaration(self):
        text = "# TYPE a counter\n# TYPE a gauge\n"
        with pytest.raises(ValueError, match="already declared on line 1"):
            parse_prometheus_text(text)

    def test_retyping_is_fine_across_separate_documents(self):
        # The duplicate-family check is per parse, not global state.
        for _ in range(2):
            assert parse_prometheus_text("# TYPE a counter\na 1\n")["a"][()] == 1.0

"""Ledger <-> runner integration: every job leaves exactly one entry per run.

The round-trip property behind ``repro run-all``: each scheduled job appears
in the persistent ledger exactly once per invocation, keyed by the JobSpec
content key, with the outcome telling executed (``completed``/``failed``)
apart from cache hits (``cached``) and manifest resumes (``resumed``).
"""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.experiments.common import ExperimentScale
from repro.observability.ledger import KIND_JOB, RunLedger
from repro.runner import JobSpec, ResultCache, RunManifest, run_jobs

ECHO = "repro.runner.testing:echo_driver"
CRASH = "repro.runner.testing:crashing_driver"


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "ledger", strict=True)


def echo_jobs(scale: ExperimentScale, count: int) -> list:
    return [
        JobSpec(experiment=ECHO, scale=scale, overrides={"tag": f"job-{index}"})
        for index in range(count)
    ]


class TestRoundTripProperty:
    def test_every_job_appears_exactly_once_with_its_key(self, micro_scale, ledger):
        jobs = echo_jobs(micro_scale, 6)
        records = run_jobs(jobs, workers=0, ledger=ledger)
        assert all(record.ok for record in records)

        entries = list(ledger.entries(kind=KIND_JOB))
        assert len(entries) == len(jobs)
        counts = Counter(entry["key"] for entry in entries)
        assert counts == Counter(job.key() for job in jobs)
        assert all(count == 1 for count in counts.values())
        for entry in entries:
            assert entry["outcome"] == "completed"
            assert entry["source"] == "run"
            assert entry["experiment"] == ECHO
            assert entry["backend"] == micro_scale.backend
            assert entry["version"] == repro.__version__
            assert entry["elapsed_s"] >= 0.0
            assert len(entry["config_hash"]) == 16

    def test_cache_hits_are_recorded_as_cached(self, micro_scale, ledger, tmp_path):
        jobs = echo_jobs(micro_scale, 3)
        cache = ResultCache(tmp_path / "cache")
        run_jobs(jobs, workers=0, cache=cache, ledger=ledger)
        run_jobs(jobs, workers=0, cache=cache, ledger=ledger)

        entries = list(ledger.entries(kind=KIND_JOB))
        assert len(entries) == 2 * len(jobs)
        outcomes = Counter(entry["outcome"] for entry in entries)
        assert outcomes == {"completed": 3, "cached": 3}
        # Both invocations recorded the same content keys.
        first, second = entries[: len(jobs)], entries[len(jobs) :]
        assert {entry["key"] for entry in first} == {entry["key"] for entry in second}
        for entry in second:
            assert entry["source"] == "cache"
            assert entry["status"] == "completed"

    def test_manifest_resume_is_recorded_as_resumed(self, micro_scale, ledger, tmp_path):
        jobs = echo_jobs(micro_scale, 2)
        manifest_path = tmp_path / "manifest.json"
        manifest = RunManifest.load_or_create(manifest_path)
        run_jobs(jobs, workers=0, manifest=manifest, ledger=ledger)
        resumed = RunManifest.load_or_create(manifest_path)
        run_jobs(jobs, workers=0, manifest=resumed, ledger=ledger)

        outcomes = [entry["outcome"] for entry in ledger.entries(kind=KIND_JOB)]
        assert outcomes == ["completed", "completed", "resumed", "resumed"]

    def test_failures_are_recorded_not_skipped(self, micro_scale, ledger):
        jobs = [
            JobSpec(experiment=CRASH, scale=micro_scale),
            JobSpec(experiment=ECHO, scale=micro_scale),
        ]
        records = run_jobs(jobs, workers=0, ledger=ledger)
        assert [record.status for record in records] == ["failed", "completed"]
        outcomes = {entry["key"]: entry["outcome"] for entry in ledger.entries(kind=KIND_JOB)}
        assert outcomes == {jobs[0].key(): "failed", jobs[1].key(): "completed"}

    def test_no_ledger_means_no_recording(self, micro_scale, tmp_path):
        run_jobs(echo_jobs(micro_scale, 2), workers=0, ledger=None)
        assert RunLedger(tmp_path / "ledger").count() == 0

    def test_duplicate_jobs_record_one_entry_per_requested_job(self, micro_scale, ledger):
        job = JobSpec(experiment=ECHO, scale=micro_scale)
        records = run_jobs([job, job], workers=0, ledger=ledger)
        assert len(records) == 2
        # The scheduler collapses duplicates to one execution; the ledger
        # answers "what ran", so it records the execution once.
        assert len(list(ledger.entries(kind=KIND_JOB))) == 1


@pytest.mark.integration
class TestParallelLedger:
    def test_spawned_workers_record_through_the_parent_ledger(self, micro_scale, ledger):
        jobs = echo_jobs(micro_scale, 4)
        records = run_jobs(jobs, workers=2, ledger=ledger)
        assert all(record.ok for record in records)
        entries = list(ledger.entries(kind=KIND_JOB))
        assert Counter(entry["key"] for entry in entries) == Counter(job.key() for job in jobs)

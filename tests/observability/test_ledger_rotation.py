"""Ledger lifecycle tests: rotation, segment pruning, compaction, degrade."""

from __future__ import annotations

import json
import logging

import pytest

from repro.observability.ledger import (
    KIND_JOB,
    KIND_SPAN,
    LEDGER_MAX_BYTES_ENV,
    LEDGER_MAX_SEGMENTS_ENV,
    RunLedger,
)


def _fill(ledger: RunLedger, n: int, **extra) -> None:
    for index in range(n):
        ledger.append({"kind": KIND_JOB, "key": f"key-{index:04d}",
                       "experiment": "fig5", "outcome": "completed", **extra})


class TestRotation:
    def test_no_limits_means_no_rotation(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True)
        _fill(ledger, 50)
        assert ledger.segments() == []

    def test_size_trigger_rotates_and_keeps_every_entry(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True, max_bytes=1024)
        _fill(ledger, 40)
        assert len(ledger.segments()) >= 1
        # Active file stays under the byte budget after every append.
        assert ledger.path.stat().st_size <= 1024
        entries = list(ledger.entries())
        assert len(entries) == 40
        # Append order survives rotation (segments read oldest-first).
        assert [entry["key"] for entry in entries] == [
            f"key-{index:04d}" for index in range(40)
        ]

    def test_age_trigger_rotates_old_active_file(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True, max_age_s=60.0)
        ledger.append({"kind": KIND_JOB, "key": "old", "ts": 1.0})
        assert ledger.segments() == []
        ledger.append({"kind": KIND_JOB, "key": "new"})
        # The stale active file became a segment; the new entry started fresh.
        assert len(ledger.segments()) == 1
        assert len(list(ledger.entries())) == 2

    def test_max_segments_bounds_disk(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True, max_bytes=256, max_segments=3)
        _fill(ledger, 60)
        assert len(ledger.segments()) <= 3
        # Oldest entries were pruned with their segments; the newest survive.
        keys = [entry["key"] for entry in ledger.entries()]
        assert keys[-1] == "key-0059"
        assert len(keys) < 60

    def test_env_knobs_configure_rotation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_MAX_BYTES_ENV, "512")
        monkeypatch.setenv(LEDGER_MAX_SEGMENTS_ENV, "2")
        ledger = RunLedger(tmp_path, strict=True)
        assert ledger.max_bytes == 512
        assert ledger.max_segments == 2
        _fill(ledger, 40)
        assert 1 <= len(ledger.segments()) <= 2

    def test_stats_and_clear_cover_segments(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True, max_bytes=512)
        _fill(ledger, 20)
        stats = ledger.stats()
        assert stats["segments"] == len(ledger.segments()) >= 1
        assert stats["entries"] == len(list(ledger.entries()))
        dropped = ledger.clear()
        assert dropped == stats["entries"]
        assert ledger.count() == 0
        assert ledger.segments() == []


class TestCompaction:
    def test_squashes_repeated_cache_hits_per_key(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True)
        ledger.append({"kind": KIND_JOB, "key": "k1", "outcome": "completed"})
        for _ in range(5):
            ledger.append({"kind": KIND_JOB, "key": "k1", "outcome": "cached"})
        for _ in range(3):
            ledger.append({"kind": KIND_JOB, "key": "k2", "outcome": "resumed"})
        summary = ledger.compact()
        assert summary["entries_before"] == 9
        assert summary["entries_after"] == 3
        assert summary["bytes_after"] < summary["bytes_before"]
        entries = list(ledger.entries())
        by_outcome = {entry["outcome"]: entry for entry in entries}
        assert by_outcome["completed"]["key"] == "k1"  # executed entry verbatim
        assert by_outcome["cached"]["repeats"] == 5
        assert by_outcome["resumed"]["repeats"] == 3

    def test_single_shortcut_entry_gets_no_repeats_field(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True)
        ledger.append({"kind": KIND_JOB, "key": "k1", "outcome": "cached"})
        ledger.compact()
        (entry,) = list(ledger.entries())
        assert "repeats" not in entry

    def test_spans_and_serving_entries_survive_verbatim(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True)
        ledger.append({"kind": KIND_SPAN, "trace_id": "t1", "span_id": "s1",
                       "name": "kernel", "duration_ms": 1.5})
        ledger.append({"kind": "serving_batch", "model": "m", "outcome": "ok"})
        ledger.compact()
        kinds = [entry["kind"] for entry in ledger.entries()]
        assert kinds == [KIND_SPAN, "serving_batch"]

    def test_compaction_merges_segments_into_active_file(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True, max_bytes=512)
        _fill(ledger, 20)
        assert len(ledger.segments()) >= 1
        kept_before = len(list(ledger.entries()))
        summary = ledger.compact()
        assert ledger.segments() == []
        assert summary["segments_removed"] >= 1
        assert len(list(ledger.entries())) == kept_before


class TestDegradedWrites:
    @pytest.fixture
    def unwritable(self, tmp_path) -> RunLedger:
        """A ledger whose root path is occupied by a regular file."""
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        return RunLedger(blocker)

    def test_strict_mode_raises(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        with pytest.raises(OSError):
            RunLedger(blocker, strict=True).append({"kind": KIND_JOB, "key": "k"})

    def test_non_strict_degrades_with_one_warning(self, unwritable, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.observability.ledger"):
            assert unwritable.append({"kind": KIND_JOB, "key": "k1"}) is None
            assert unwritable.append({"kind": KIND_JOB, "key": "k2"}) is None
        warnings = [record for record in caplog.records
                    if "ledger_degraded" in record.getMessage()]
        assert len(warnings) == 1
        payload = json.loads(warnings[0].getMessage())
        assert payload["event"] == "ledger_degraded"
        assert payload["path"].endswith("ledger.jsonl")
        assert "error" in payload

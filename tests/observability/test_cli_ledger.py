"""CLI tests for `repro ledger` and default ledger recording in run-all."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.observability.ledger import KIND_JOB, KIND_SERVING_BATCH, RunLedger


@pytest.fixture
def populated(tmp_path) -> RunLedger:
    ledger = RunLedger(tmp_path / "ledger", strict=True)
    ledger.append(
        {
            "kind": KIND_JOB,
            "key": "aabb0011" * 8,
            "experiment": "fig5",
            "outcome": "completed",
            "backend": "dense",
        }
    )
    ledger.append(
        {
            "kind": KIND_SERVING_BATCH,
            "model": "spikedyn",
            "outcome": "ok",
            "backend": "dense",
            "batch_size": 4,
        }
    )
    return ledger


class TestLedgerCommand:
    def test_list_renders_table_and_stats(self, populated, capsys):
        assert main(["ledger", "list", "--ledger-dir", str(populated.root)]) == 0
        output = capsys.readouterr().out
        assert "fig5" in output
        assert "completed" in output
        assert "2 entries (job=1, serving_batch=1)" in output

    def test_list_empty_ledger(self, tmp_path, capsys):
        assert main(["ledger", "list", "--ledger-dir", str(tmp_path / "nothing")]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_kind_filter(self, populated, capsys):
        args = ["ledger", "list", "--ledger-dir", str(populated.root), "--kind", "serving"]
        assert main(args) == 0
        output = capsys.readouterr().out
        assert "spikedyn" in output
        assert "fig5" not in output

    def test_tail_respects_limit(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "ledger", strict=True)
        for index in range(5):
            ledger.append({"kind": KIND_JOB, "experiment": f"exp-{index}", "key": str(index)})
        assert main(["ledger", "tail", "--ledger-dir", str(ledger.root), "-n", "2"]) == 0
        output = capsys.readouterr().out
        assert "exp-4" in output and "exp-3" in output
        assert "exp-0" not in output

    def test_show_dumps_full_json_by_key_prefix(self, populated, capsys):
        assert main(["ledger", "show", "aabb", "--ledger-dir", str(populated.root)]) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["experiment"] == "fig5"
        assert entry["key"].startswith("aabb0011")

    def test_show_without_key_is_usage_error(self, populated, capsys):
        assert main(["ledger", "show", "--ledger-dir", str(populated.root)]) == 2
        assert "needs a job-key prefix" in capsys.readouterr().err

    def test_show_unmatched_prefix_fails(self, populated, capsys):
        assert main(["ledger", "show", "ffff", "--ledger-dir", str(populated.root)]) == 1
        assert "no ledger entry matches" in capsys.readouterr().err


@pytest.mark.integration
class TestRunAllRecordsByDefault:
    def test_run_all_writes_the_env_ledger(self, tmp_path, capsys, monkeypatch):
        ledger_dir = tmp_path / "env-ledger"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        args = [
            "run-all",
            "--scale",
            "tiny",
            "--workers",
            "1",
            "--drivers",
            "table1",
            "--out",
            str(tmp_path / "out"),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        (entry,) = list(RunLedger(ledger_dir).entries(kind=KIND_JOB))
        assert entry["experiment"] == "table1"
        assert entry["outcome"] == "completed"

        # And the ledger CLI reads the same environment default.
        assert main(["ledger", "list"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_no_ledger_flag_disables_recording(self, tmp_path, capsys, monkeypatch):
        ledger_dir = tmp_path / "env-ledger"
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(ledger_dir))
        args = [
            "run-all",
            "--scale",
            "tiny",
            "--workers",
            "0",
            "--drivers",
            "table1",
            "--out",
            str(tmp_path / "out"),
            "--no-cache",
            "--no-ledger",
        ]
        assert main(args) == 0
        assert RunLedger(ledger_dir).count() == 0

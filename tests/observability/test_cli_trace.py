"""Trace reconstruction tests: span trees, `repro trace`, `repro ledger compact`."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.observability.ledger import KIND_JOB, RunLedger
from repro.observability.trace_view import (
    build_trace_tree,
    format_trace,
    slowest_traces,
    trace_spans,
    trace_summary,
)
from repro.observability.tracing import TraceContext, record_span


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "ledger", strict=True)


def _tree(ledger: RunLedger, trace_id: str = "trace-1") -> TraceContext:
    """Record a two-level tree: http_request -> (queue_wait, shard_rpc)."""
    root = TraceContext(trace_id=trace_id).child()
    record_span(ledger, root, "http_request", 0.020, route="/v1/x")
    record_span(ledger, root.child(), "queue_wait", 0.004)
    record_span(ledger, root.child(retry=1), "shard_rpc", 0.012, shard=0)
    return root


class TestTraceView:
    def test_spans_filter_by_trace_id(self, ledger):
        _tree(ledger, "trace-1")
        _tree(ledger, "trace-2")
        ledger.append({"kind": KIND_JOB, "key": "k", "trace_id": "trace-1"})
        spans = trace_spans(ledger, "trace-1")
        assert len(spans) == 3  # the job entry is not a span
        assert {span["trace_id"] for span in spans} == {"trace-1"}

    def test_tree_links_children_under_parents(self, ledger):
        root = _tree(ledger)
        (tree,) = build_trace_tree(trace_spans(ledger, "trace-1"))
        assert tree.name == "http_request"
        assert tree.span_id == root.span_id
        assert sorted(child.name for child in tree.children) == [
            "queue_wait", "shard_rpc"
        ]
        assert len(list(tree.walk())) == 3

    def test_orphan_spans_surface_as_roots(self, ledger):
        context = TraceContext(trace_id="t", span_id="s1",
                               parent_span_id="never-recorded")
        record_span(ledger, context, "lonely", 0.001)
        roots = build_trace_tree(trace_spans(ledger, "t"))
        assert [root.name for root in roots] == ["lonely"]

    def test_summary_counts_spans_processes_and_root_time(self, ledger):
        _tree(ledger)
        summary = trace_summary(trace_spans(ledger, "trace-1"))
        assert summary["spans"] == 3
        assert summary["processes"] == 1
        assert summary["roots"] == 1
        assert summary["total_ms"] == pytest.approx(20.0)

    def test_format_trace_draws_the_tree(self, ledger):
        _tree(ledger)
        text = format_trace(ledger, "trace-1")
        assert "trace trace-1" in text
        assert "http_request" in text
        # Children are indented under the root with box-drawing connectors.
        for line in text.splitlines():
            if "queue_wait" in line or "shard_rpc" in line:
                assert "─" in line and line.startswith("   ")
        assert "retry=1" in text
        assert "shard=0" in text

    def test_format_trace_without_spans_says_so(self, ledger):
        assert "no spans recorded" in format_trace(ledger, "missing")

    def test_slowest_orders_by_total_root_time(self, ledger):
        _tree(ledger, "fast")
        slow_root = TraceContext(trace_id="slow").child()
        record_span(ledger, slow_root, "job", 1.5)
        summaries = slowest_traces(ledger, limit=10)
        assert [summary["trace_id"] for summary in summaries] == ["slow", "fast"]
        assert summaries[0]["root"] == "job"
        assert slowest_traces(ledger, limit=1)[0]["trace_id"] == "slow"


class TestTraceCommand:
    def test_show_prints_the_tree(self, ledger, capsys):
        _tree(ledger)
        assert main(["trace", "show", "trace-1",
                     "--ledger-dir", str(ledger.root)]) == 0
        output = capsys.readouterr().out
        assert "http_request" in output and "shard_rpc" in output

    def test_show_without_id_is_usage_error(self, ledger, capsys):
        assert main(["trace", "show", "--ledger-dir", str(ledger.root)]) == 2
        assert "needs a trace id" in capsys.readouterr().err

    def test_slowest_renders_table(self, ledger, capsys):
        _tree(ledger, "trace-1")
        _tree(ledger, "trace-2")
        assert main(["trace", "slowest", "--ledger-dir", str(ledger.root)]) == 0
        output = capsys.readouterr().out
        assert "trace-1" in output and "trace-2" in output
        assert "http_request" in output

    def test_slowest_respects_limit(self, ledger, capsys):
        for index in range(3):
            root = TraceContext(trace_id=f"t{index}").child()
            record_span(ledger, root, "job", 0.1 * (index + 1))
        assert main(["trace", "slowest", "-n", "1",
                     "--ledger-dir", str(ledger.root)]) == 0
        output = capsys.readouterr().out
        assert "t2" in output and "t0" not in output

    def test_slowest_on_empty_ledger(self, tmp_path, capsys):
        assert main(["trace", "slowest",
                     "--ledger-dir", str(tmp_path / "nothing")]) == 0
        assert "no spans recorded" in capsys.readouterr().out


class TestLedgerSpanIntegration:
    def test_ledger_list_filters_spans(self, ledger, capsys):
        _tree(ledger)
        ledger.append({"kind": KIND_JOB, "key": "k", "experiment": "fig5"})
        assert main(["ledger", "list", "--kind", "span",
                     "--ledger-dir", str(ledger.root)]) == 0
        output = capsys.readouterr().out
        assert "http_request" in output
        assert "fig5" not in output
        assert "trace=trace-1" in output

    def test_ledger_compact_command(self, ledger, capsys):
        for _ in range(4):
            ledger.append({"kind": KIND_JOB, "key": "k", "outcome": "cached"})
        assert main(["ledger", "compact", "--ledger-dir", str(ledger.root)]) == 0
        output = capsys.readouterr().out
        assert "compacted" in output
        assert "4 -> 1 entries" in output
        assert ledger.count() == 1

"""Bench-history pipeline tests: normalization, schema gate, baseline drift."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

import repro

SCRIPTS_DIR = Path(__file__).resolve().parent.parent.parent / "scripts"


@pytest.fixture(scope="module")
def history():
    sys.path.insert(0, str(SCRIPTS_DIR))
    try:
        import bench_history
    finally:
        sys.path.remove(str(SCRIPTS_DIR))
    return bench_history


@pytest.fixture
def report():
    return {
        "version": repro.__version__,
        "python": "3.11.7",
        "numpy": "1.26.0",
        "platform": "test",
        "batch_size": 32,
        "repeats": 3,
        "timings": {
            "calibration_s": 0.002,
            "training_s": 0.2,
            "inference_s": 0.04,
            "speedup_x": 3.5,
            "tracing_overhead_pct": 1.2,
        },
    }


class TestNormalization:
    def test_timings_divide_by_calibration(self, history, report):
        normalized = history.normalize_timings(report["timings"])
        assert normalized["training_s"] == pytest.approx(100.0)
        assert normalized["inference_s"] == pytest.approx(20.0)

    def test_ratio_metrics_pass_through(self, history, report):
        normalized = history.normalize_timings(report["timings"])
        assert normalized["speedup_x"] == pytest.approx(3.5)

    def test_percentage_metrics_pass_through(self, history, report):
        normalized = history.normalize_timings(report["timings"])
        assert normalized["tracing_overhead_pct"] == pytest.approx(1.2)

    def test_calibration_itself_is_excluded(self, history, report):
        assert "calibration_s" not in history.normalize_timings(report["timings"])

    def test_missing_calibration_raises(self, history):
        with pytest.raises(ValueError, match="calibration_s"):
            history.normalize_timings({"training_s": 1.0})


class TestSnapshotSchema:
    def test_build_then_validate_round_trip(self, history, report):
        snapshot = history.build_snapshot(report)
        assert history.validate_snapshot(snapshot, expect_version=repro.__version__) == []

    def test_missing_report_keys_are_an_error(self, history, report):
        del report["platform"]
        with pytest.raises(ValueError, match="platform"):
            history.build_snapshot(report)

    def test_version_mismatch_is_flagged(self, history, report):
        snapshot = history.build_snapshot(report)
        problems = history.validate_snapshot(snapshot, expect_version="9.9.9")
        assert any("9.9.9" in problem for problem in problems)

    def test_tampered_normalized_section_is_flagged(self, history, report):
        snapshot = history.build_snapshot(report)
        snapshot["normalized"]["training_s"] *= 2.0
        problems = history.validate_snapshot(snapshot)
        assert any("inconsistent" in problem for problem in problems)

    def test_dropped_normalized_metric_is_flagged(self, history, report):
        snapshot = history.build_snapshot(report)
        del snapshot["normalized"]["training_s"]
        problems = history.validate_snapshot(snapshot)
        assert any("do not match" in problem for problem in problems)


class TestBaselineDrift:
    def write_baseline(self, tmp_path, timings) -> Path:
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"timings": timings}), encoding="utf-8")
        return path

    def test_consistent_snapshot_passes(self, history, report, tmp_path):
        snapshot = history.build_snapshot(report)
        # A machine 10x faster than the baseline: raw timings differ, but the
        # calibration normalization cancels the machine speed entirely.
        baseline = self.write_baseline(
            tmp_path, {name: value * 10.0 for name, value in report["timings"].items()}
        )
        assert history.check_against_baseline(snapshot, baseline, tolerance=3.0) == []

    def test_drifted_metric_fails_both_directions(self, history, report, tmp_path):
        slow = dict(report["timings"], training_s=report["timings"]["training_s"] * 10.0)
        baseline = self.write_baseline(tmp_path, slow)
        problems = history.check_against_baseline(
            history.build_snapshot(report), baseline, tolerance=3.0
        )
        assert any("training_s" in problem for problem in problems)

        fast = dict(report["timings"], training_s=report["timings"]["training_s"] / 10.0)
        baseline = self.write_baseline(tmp_path, fast)
        problems = history.check_against_baseline(
            history.build_snapshot(report), baseline, tolerance=3.0
        )
        assert any("training_s" in problem for problem in problems)

    def test_unreadable_baseline_is_reported(self, history, report, tmp_path):
        problems = history.check_against_baseline(
            history.build_snapshot(report), tmp_path / "missing.json", tolerance=3.0
        )
        assert any("cannot read" in problem for problem in problems)

    def test_percentage_metrics_never_gate_relatively(self, history, report, tmp_path):
        # A 100x baseline difference in the percentage metric is fine here:
        # *_pct gates absolutely via check_absolute_gates, not by drift.
        drifted = dict(report["timings"], tracing_overhead_pct=0.01)
        baseline = self.write_baseline(tmp_path, drifted)
        assert history.check_against_baseline(
            history.build_snapshot(report), baseline, tolerance=3.0
        ) == []


class TestAbsoluteGates:
    def test_overhead_within_the_ceiling_passes(self, history, report):
        snapshot = history.build_snapshot(report)
        assert history.check_absolute_gates(snapshot) == []

    def test_overhead_beyond_the_ceiling_fails(self, history, report):
        report["timings"]["tracing_overhead_pct"] = 7.5
        snapshot = history.build_snapshot(report)
        problems = history.check_absolute_gates(snapshot)
        assert len(problems) == 1
        assert "tracing_overhead_pct" in problems[0]
        assert "7.50%" in problems[0]
        assert "3.00% ceiling" in problems[0]

    def test_snapshots_without_the_metric_pass(self, history, report):
        del report["timings"]["tracing_overhead_pct"]
        snapshot = history.build_snapshot(report)
        assert history.check_absolute_gates(snapshot) == []


class TestCliModes:
    def test_from_report_writes_snapshot_and_check_passes(self, history, report, tmp_path):
        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(report), encoding="utf-8")
        assert history.main(["--from-report", str(report_path), "--root", str(tmp_path)]) == 0
        written = history.snapshot_path(repro.__version__, tmp_path)
        assert written.is_file()
        # --check against the real committed benchmarks/baseline_smoke.json
        # would be machine-independent only by luck for this synthetic
        # report, so validate the snapshot directly instead.
        snapshot = json.loads(written.read_text(encoding="utf-8"))
        assert history.validate_snapshot(snapshot, expect_version=repro.__version__) == []

    def test_check_fails_without_a_snapshot(self, history, tmp_path, capsys):
        assert history.main(["--check", "--root", str(tmp_path)]) == 1
        assert "no benchmark-history snapshot" in capsys.readouterr().err

    def test_list_renders_the_history(self, history, report, tmp_path, capsys):
        snapshot = history.build_snapshot(report)
        path = history.snapshot_path(repro.__version__, tmp_path)
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        assert history.main(["--list", "--root", str(tmp_path)]) == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_check_and_list_are_mutually_exclusive(self, history, tmp_path):
        with pytest.raises(SystemExit):
            history.main(["--check", "--list", "--root", str(tmp_path)])

    def test_committed_snapshot_for_current_version_is_valid(self, history):
        """The repo must ship a valid BENCH_v<current>.json (the CI gate)."""
        path = history.snapshot_path(repro.__version__)
        assert path.is_file(), f"missing committed snapshot {path.name}"
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        assert history.validate_snapshot(snapshot, expect_version=repro.__version__) == []

"""Runner metrics tests: aggregation, Prometheus rendering, HTTP endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
)
from repro.observability.runmetrics import (
    RUNNER_METRIC_PREFIX,
    RunnerMetrics,
    RunnerMetricsServer,
    render_runner_prometheus,
)


def _record(status="completed", source="run", experiment="fig5", elapsed=0.5):
    return SimpleNamespace(status=status, source=source,
                           experiment=experiment, elapsed=elapsed)


class TestRunnerMetrics:
    def test_initial_snapshot_is_all_zero(self):
        snapshot = RunnerMetrics().snapshot()
        assert snapshot["jobs_started_total"] == 0
        assert snapshot["jobs_completed_total"] == 0
        assert snapshot["worker_utilization"] == 0.0
        assert snapshot["experiments"] == {}
        assert snapshot["uptime_s"] >= 0.0

    def test_terminal_outcomes_route_to_their_counters(self):
        metrics = RunnerMetrics()
        for _ in range(3):
            metrics.record_started()
        metrics.record_finished(_record(status="completed"))
        metrics.record_finished(_record(status="failed"))
        metrics.record_finished(_record(status="timeout"))
        metrics.record_finished(_record(source="cache"))
        metrics.record_finished(_record(source="manifest"))
        snapshot = metrics.snapshot()
        assert snapshot["jobs_started_total"] == 3
        assert snapshot["jobs_completed_total"] == 1
        assert snapshot["jobs_failed_total"] == 1
        assert snapshot["jobs_timeout_total"] == 1
        assert snapshot["jobs_cached_total"] == 1
        assert snapshot["jobs_resumed_total"] == 1

    def test_cache_and_manifest_shortcuts_skip_latency_windows(self):
        metrics = RunnerMetrics()
        metrics.record_finished(_record(source="cache", elapsed=9.0))
        assert metrics.snapshot()["experiments"] == {}

    def test_per_experiment_latency_stats(self):
        metrics = RunnerMetrics()
        for elapsed in (0.1, 0.2, 0.3, 0.4):
            metrics.record_finished(_record(experiment="fig5", elapsed=elapsed))
        metrics.record_finished(_record(experiment="alg1", elapsed=1.0))
        experiments = metrics.snapshot()["experiments"]
        assert set(experiments) == {"alg1", "fig5"}
        fig5 = experiments["fig5"]
        assert fig5["count"] == 4
        assert fig5["mean_s"] == pytest.approx(0.25)
        assert fig5["max_s"] == pytest.approx(0.4)
        assert 0.1 <= fig5["p50_s"] <= fig5["p95_s"] <= 0.4
        # A single sample reports itself as every quantile.
        assert experiments["alg1"]["p50_s"] == experiments["alg1"]["p95_s"] == 1.0

    def test_latency_window_is_bounded(self):
        metrics = RunnerMetrics(latency_window=4)
        for index in range(10):
            metrics.record_finished(_record(elapsed=float(index)))
        stats = metrics.snapshot()["experiments"]["fig5"]
        assert stats["count"] == 4
        assert stats["mean_s"] == pytest.approx((6 + 7 + 8 + 9) / 4)

    def test_progress_and_utilization(self):
        metrics = RunnerMetrics()
        metrics.set_workers(4)
        metrics.set_progress(queue_depth=7, running=2)
        snapshot = metrics.snapshot()
        assert snapshot["queue_depth"] == 7
        assert snapshot["running"] == 2
        assert snapshot["worker_utilization"] == pytest.approx(0.5)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            RunnerMetrics(latency_window=0)


class TestPrometheusRendering:
    def test_round_trips_through_the_strict_parser(self):
        metrics = RunnerMetrics()
        metrics.set_workers(2)
        metrics.record_started()
        metrics.record_finished(_record())
        text = render_runner_prometheus(metrics.snapshot())
        assert "# TYPE repro_runner_jobs_started_total counter" in text
        families = parse_prometheus_text(text)
        assert families[f"{RUNNER_METRIC_PREFIX}_jobs_started_total"][()] == 1.0
        assert families[f"{RUNNER_METRIC_PREFIX}_workers"][()] == 2.0

    def test_quantiles_are_labelled_per_experiment(self):
        metrics = RunnerMetrics()
        metrics.record_finished(_record(experiment="fig5", elapsed=0.5))
        families = parse_prometheus_text(
            render_runner_prometheus(metrics.snapshot())
        )
        samples = families[f"{RUNNER_METRIC_PREFIX}_job_seconds"]
        assert set(samples) == {
            (("experiment", "fig5"), ("quantile", "0.5")),
            (("experiment", "fig5"), ("quantile", "0.95")),
        }
        assert all(value == pytest.approx(0.5) for value in samples.values())


class TestRunnerMetricsServer:
    @pytest.fixture
    def server(self):
        metrics = RunnerMetrics()
        metrics.set_workers(1)
        metrics.record_finished(_record())
        with RunnerMetricsServer(metrics) as running:
            yield running

    def _get(self, server, path):
        with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as response:
            return response.status, response.headers, response.read()

    def test_metrics_endpoint_serves_prometheus_text(self, server):
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        families = parse_prometheus_text(body.decode("utf-8"))
        assert families[f"{RUNNER_METRIC_PREFIX}_jobs_completed_total"][()] == 1.0

    def test_metrics_json_endpoint(self, server):
        status, headers, body = self._get(server, "/metrics.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        snapshot = json.loads(body)
        assert snapshot["jobs_completed_total"] == 1
        assert "experiments" in snapshot

    def test_healthz_and_unknown_path(self, server):
        status, _, body = self._get(server, "/healthz")
        assert status == 200 and json.loads(body) == {"status": "ok"}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_stop_is_idempotent(self):
        server = RunnerMetricsServer(RunnerMetrics()).start()
        server.stop()
        server.stop()

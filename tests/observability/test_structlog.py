"""Structured-logging tests: bound context, JSON emission, env activation."""

from __future__ import annotations

import io
import json
import logging

import numpy as np
import pytest

from repro.observability.structlog import (
    LOG_JSON_ENV,
    LOG_LEVEL_ENV,
    StructLogger,
    _json_safe,
    configure_from_env,
    configure_structured_logging,
    get_struct_logger,
)


@pytest.fixture
def stream():
    return io.StringIO()


@pytest.fixture
def configured(stream):
    """A configured library logger whose handler is removed afterwards."""
    logger = configure_structured_logging(level=logging.DEBUG, stream=stream)
    yield logger
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_struct_handler", False):
            logger.removeHandler(handler)


def events(stream) -> list:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestContext:
    def test_bind_returns_new_logger_and_merges(self):
        base = get_struct_logger("test.bind", run="r1")
        bound = base.bind(job="j1")
        assert base.context == {"run": "r1"}
        assert bound.context == {"job": "j1", "run": "r1"}
        assert bound is not base

    def test_bind_overrides_existing_keys(self):
        bound = get_struct_logger("test.bind", run="r1").bind(run="r2")
        assert bound.context == {"run": "r2"}

    def test_unbind_removes_keys_without_mutating(self):
        base = get_struct_logger("test.bind", run="r1", job="j1")
        slim = base.unbind("job", "missing")
        assert slim.context == {"run": "r1"}
        assert base.context == {"job": "j1", "run": "r1"}

    def test_context_property_returns_a_copy(self):
        logger = get_struct_logger("test.bind", run="r1")
        logger.context["run"] = "tampered"
        assert logger.context == {"run": "r1"}

    def test_namespaced_under_repro(self):
        assert get_struct_logger("runner.worker").name == "repro.runner.worker"
        assert get_struct_logger().name == "repro"


class TestEmission:
    def test_event_is_one_json_object_with_standard_fields(self, configured, stream):
        log = get_struct_logger("test.emit", run="r1")
        log.info("job_started", experiment="fig5", workers=4)
        (event,) = events(stream)
        assert event["event"] == "job_started"
        assert event["level"] == "info"
        assert event["logger"] == "repro.test.emit"
        assert event["run"] == "r1"
        assert event["experiment"] == "fig5"
        assert event["workers"] == 4
        assert "ts" in event

    def test_call_fields_override_bound_context(self, configured, stream):
        get_struct_logger("test.emit", run="r1").info("e", run="r2")
        (event,) = events(stream)
        assert event["run"] == "r2"

    def test_level_gating(self, configured, stream):
        configured.setLevel(logging.WARNING)
        log = get_struct_logger("test.emit")
        log.debug("dropped")
        log.info("dropped_too")
        log.error("kept", code=7)
        (event,) = events(stream)
        assert event["event"] == "kept"
        assert event["level"] == "error"

    def test_unconfigured_logger_is_silent(self, capsys):
        # The NullHandler must suppress stdlib's lastResort stderr output.
        get_struct_logger("test.silent").error("invisible")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_reconfiguring_replaces_handler_instead_of_duplicating(self, stream):
        first = configure_structured_logging(stream=io.StringIO())
        logger = configure_structured_logging(stream=stream)
        try:
            get_struct_logger("test.emit").info("once")
            assert len(events(stream)) == 1
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_struct_handler", False):
                    logger.removeHandler(handler)
        assert first is logger


class TestJsonSafe:
    def test_numpy_scalars_and_arrays_reduce_to_python(self):
        assert _json_safe(np.int64(3)) == 3
        assert _json_safe(np.float32(0.5)) == pytest.approx(0.5)
        assert _json_safe(np.arange(3)) == [0, 1, 2]

    def test_nested_containers(self):
        value = {"a": (np.int32(1), [np.float64(2.0)]), "b": {3}}
        assert _json_safe(value) == {"a": [1, [2.0]], "b": [3]}

    def test_exotic_objects_fall_back_to_str(self, configured, stream):
        class Exotic:
            def __str__(self):
                return "<exotic>"

        get_struct_logger("test.emit").info("e", thing=Exotic())
        (event,) = events(stream)
        assert event["thing"] == "<exotic>"


class TestEnvActivation:
    def test_unset_env_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(LOG_JSON_ENV, raising=False)
        assert configure_from_env() is None

    @pytest.mark.parametrize("value", ["0", "false", "no", "off", ""])
    def test_falsy_values_are_a_no_op(self, monkeypatch, value):
        monkeypatch.setenv(LOG_JSON_ENV, value)
        assert configure_from_env() is None

    def test_enabled_env_streams_json(self, monkeypatch, stream):
        monkeypatch.setenv(LOG_JSON_ENV, "1")
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        logger = configure_from_env(stream=stream)
        try:
            assert logger is not None
            assert logger.level == logging.DEBUG
            get_struct_logger("test.env").debug("visible")
            (event,) = events(stream)
            assert event["event"] == "visible"
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_struct_handler", False):
                    logger.removeHandler(handler)

    def test_unknown_level_falls_back_to_info(self, monkeypatch, stream):
        monkeypatch.setenv(LOG_JSON_ENV, "yes")
        monkeypatch.setenv(LOG_LEVEL_ENV, "nonsense")
        logger = configure_from_env(stream=stream)
        try:
            assert logger.level == logging.INFO
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_struct_handler", False):
                    logger.removeHandler(handler)


class TestImmutabilityContract:
    def test_handing_a_bound_logger_to_a_helper_never_leaks(self):
        base = get_struct_logger("test.leak", run="r1")

        def helper(log: StructLogger) -> StructLogger:
            return log.bind(helper="deep")

        helper(base)
        assert base.context == {"run": "r1"}

"""Unit tests for the stdlib tracing primitives."""

from __future__ import annotations

import io
import json
import logging
import os

import pytest

from repro.observability.ledger import RunLedger
from repro.observability.structlog import (
    configure_structured_logging,
    get_struct_logger,
)
from repro.observability.tracing import (
    KIND_SPAN,
    TRACE_ENV,
    TRACE_HEADER,
    TraceContext,
    current_span_sink,
    current_trace,
    derive_trace_id,
    new_trace_id,
    record_span,
    span,
    trace_fields,
    trace_id_for_job,
    trace_id_for_request,
    trace_scope,
    tracing_forced,
)


class TestTraceIds:
    def test_derivation_is_deterministic(self):
        assert derive_trace_id("a", 1) == derive_trace_id("a", 1)
        assert derive_trace_id("a", 1) != derive_trace_id("a", 2)

    def test_request_and_job_namespaces_do_not_collide(self):
        assert trace_id_for_request("x") != trace_id_for_job("x")

    def test_ids_are_16_hex_chars(self):
        for value in (trace_id_for_request(7), trace_id_for_job("k"), new_trace_id()):
            assert len(value) == 16
            int(value, 16)

    def test_new_trace_ids_are_unique(self):
        assert new_trace_id() != new_trace_id()


class TestTraceContext:
    def test_child_keeps_trace_and_links_parent(self):
        root = TraceContext(trace_id="t1")
        child = root.child()
        grandchild = child.child()
        assert child.trace_id == "t1"
        assert child.parent_span_id is None  # root scope has no span id
        assert child.span_id is not None
        assert grandchild.parent_span_id == child.span_id
        assert child.span_id != grandchild.span_id

    def test_child_retry_override_and_inheritance(self):
        context = TraceContext(trace_id="t1").child(retry=2)
        assert context.retry == 2
        assert context.child().retry == 2  # inherited
        assert context.child(retry=0).retry == 0  # overridable

    def test_dict_round_trip(self):
        context = TraceContext(trace_id="t1").child(retry=1).child()
        restored = TraceContext.from_dict(context.to_dict())
        assert restored == context

    def test_to_dict_omits_unset_fields(self):
        assert TraceContext(trace_id="t1").to_dict() == {"trace_id": "t1"}

    def test_headers_round_trip(self):
        context = TraceContext(trace_id="abc-123")
        assert context.to_headers() == {TRACE_HEADER: "abc-123"}
        restored = TraceContext.from_headers(context.to_headers())
        assert restored is not None
        assert restored.trace_id == "abc-123"
        assert restored.span_id is None

    def test_from_headers_accepts_lowercase_key(self):
        restored = TraceContext.from_headers({TRACE_HEADER.lower(): "abc"})
        assert restored is not None and restored.trace_id == "abc"

    def test_from_headers_absent_is_none(self):
        assert TraceContext.from_headers({}) is None

    @pytest.mark.parametrize("bad", ["", "  ", "-leading", "has space", "a" * 65,
                                     "semi;colon"])
    def test_from_headers_rejects_malformed_ids(self, bad):
        with pytest.raises(ValueError):
            TraceContext.from_headers({TRACE_HEADER: bad})


class TestTracingForced:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert not tracing_forced()

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("on", True),
        ("0", False), ("false", False), ("off", False), ("", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(TRACE_ENV, value)
        assert tracing_forced() is expected


class TestTraceScope:
    def test_none_scope_is_a_no_op(self):
        with trace_scope(None) as active:
            assert active is None
            assert current_trace() is None

    def test_scope_installs_and_restores_context_and_sink(self):
        context = TraceContext(trace_id="t1")
        sink = []
        assert current_trace() is None
        with trace_scope(context, sink=sink.append):
            assert current_trace() is context
            assert current_span_sink() is not None
        assert current_trace() is None
        assert current_span_sink() is None

    def test_trace_fields_reflect_active_context(self):
        assert trace_fields() == {}
        with trace_scope(TraceContext(trace_id="t1")):
            assert trace_fields() == {"trace_id": "t1"}
        with trace_scope(TraceContext(trace_id="t1").child()) as context:
            assert trace_fields() == {"trace_id": "t1", "span_id": context.span_id}


class TestSpan:
    def test_span_is_inert_without_active_trace(self):
        sink = []
        with span("kernel", sink=sink.append) as timer:
            assert not timer.active
        assert sink == []

    def test_span_records_to_contextvar_sink(self):
        sink = []
        with trace_scope(TraceContext(trace_id="t1"), sink=sink.append):
            with span("kernel", shared_batch=3):
                pass
        (entry,) = sink
        assert entry["kind"] == KIND_SPAN
        assert entry["name"] == "kernel"
        assert entry["trace_id"] == "t1"
        assert entry["pid"] == os.getpid()
        assert entry["duration_ms"] >= 0.0
        assert entry["shared_batch"] == 3
        assert "parent_span_id" not in entry  # child of the root scope

    def test_nested_spans_link_parent_child(self):
        sink = []
        with trace_scope(TraceContext(trace_id="t1"), sink=sink.append):
            with span("outer") as outer:
                with span("inner"):
                    pass
        inner_entry, outer_entry = sink  # inner exits (and records) first
        assert inner_entry["name"] == "inner"
        assert inner_entry["parent_span_id"] == outer.context.span_id
        assert outer_entry["span_id"] == outer.context.span_id

    def test_explicit_sink_wins_over_contextvar_sink(self):
        ambient, explicit = [], []
        with trace_scope(TraceContext(trace_id="t1"), sink=ambient.append):
            with span("kernel", sink=explicit.append):
                pass
        assert ambient == []
        assert len(explicit) == 1

    def test_retry_flag_lands_in_the_record(self):
        sink = []
        with trace_scope(TraceContext(trace_id="t1"), sink=sink.append):
            with span("shard_rpc", retry=2):
                pass
        assert sink[0]["retry"] == 2

    def test_span_records_even_when_body_raises(self):
        sink = []
        with trace_scope(TraceContext(trace_id="t1"), sink=sink.append):
            with pytest.raises(RuntimeError):
                with span("kernel"):
                    raise RuntimeError("boom")
        assert sink[0]["name"] == "kernel"


class TestRecordSpan:
    def test_requires_sink_and_span_context(self):
        context = TraceContext(trace_id="t1").child()
        assert record_span(None, context, "x", 0.1) is None
        assert record_span([].append, None, "x", 0.1) is None
        # A root scope (no span id) cannot be recorded.
        assert record_span([].append, TraceContext(trace_id="t1"), "x", 0.1) is None

    def test_record_shape(self):
        sink = []
        context = TraceContext(trace_id="t1").child(retry=1).child()
        record_span(sink.append, context, "queue_wait", 0.0021, shard=2)
        assert sink[0]["duration_ms"] == 2.1
        assert sink[0]["parent_span_id"] == context.parent_span_id
        assert sink[0]["retry"] == 1
        assert sink[0]["shard"] == 2

    def test_ledger_sink_uses_append(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True)
        context = TraceContext(trace_id="t1").child()
        record_span(ledger, context, "kernel", 0.5)
        (entry,) = list(ledger.entries(kind=KIND_SPAN))
        assert entry["trace_id"] == "t1"
        assert entry["duration_ms"] == 500.0


class TestStamping:
    def test_ledger_entries_inherit_active_trace(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True)
        with trace_scope(TraceContext(trace_id="t9").child()):
            ledger.append({"kind": "job", "key": "k"})
        (entry,) = list(ledger.entries())
        assert entry["trace_id"] == "t9"
        assert entry["span_id"]

    def test_ledger_explicit_trace_id_is_not_overwritten(self, tmp_path):
        ledger = RunLedger(tmp_path, strict=True)
        with trace_scope(TraceContext(trace_id="ambient")):
            ledger.append({"kind": "job", "key": "k", "trace_id": "explicit"})
        (entry,) = list(ledger.entries())
        assert entry["trace_id"] == "explicit"

    def test_struct_log_events_inherit_active_trace(self):
        stream = io.StringIO()
        root = configure_structured_logging(level=logging.DEBUG, stream=stream)
        try:
            logger = get_struct_logger("test.tracing")
            with trace_scope(TraceContext(trace_id="t9").child()):
                logger.info("inside")
            logger.info("outside")
        finally:
            for handler in list(root.handlers):
                if getattr(handler, "_repro_struct_handler", False):
                    root.removeHandler(handler)
        inside, outside = [json.loads(line)
                           for line in stream.getvalue().splitlines()]
        assert inside["trace_id"] == "t9"
        assert "span_id" in inside
        assert "trace_id" not in outside

"""RunLedger tests: round-trips, corruption tolerance, concurrency, lineage."""

from __future__ import annotations

import json
import os
import threading

import pytest

import repro
from repro.observability.ledger import (
    KIND_JOB,
    KIND_SERVING_BATCH,
    LEDGER_DIR_ENV,
    RunLedger,
    SpanBuffer,
    artifact_lineage,
    config_hash,
    default_ledger_root,
)


@pytest.fixture
def ledger(tmp_path) -> RunLedger:
    return RunLedger(tmp_path / "ledger", strict=True)


class TestRoundTrip:
    def test_append_then_read_back(self, ledger):
        written = ledger.append({"kind": KIND_JOB, "key": "abc", "outcome": "completed"})
        (entry,) = list(ledger.entries())
        assert entry == written
        assert entry["key"] == "abc"

    def test_ts_and_version_are_stamped(self, ledger):
        entry = ledger.append({"kind": KIND_JOB})
        assert entry["version"] == repro.__version__
        assert entry["ts"] > 0

    def test_explicit_ts_and_version_win(self, ledger):
        entry = ledger.append({"kind": KIND_JOB, "ts": 123.0, "version": "0.0.0"})
        assert entry["ts"] == 123.0
        assert entry["version"] == "0.0.0"

    def test_extra_fields_merge_over_the_entry(self, ledger):
        ledger.append({"kind": KIND_JOB, "outcome": "completed"}, outcome="cached", extra=1)
        (entry,) = list(ledger.entries())
        assert entry["outcome"] == "cached"
        assert entry["extra"] == 1

    def test_append_order_is_preserved(self, ledger):
        for index in range(10):
            ledger.append({"kind": KIND_JOB, "index": index})
        assert [entry["index"] for entry in ledger.entries()] == list(range(10))

    def test_each_entry_is_one_jsonl_line(self, ledger):
        ledger.append({"kind": KIND_JOB, "nested": {"a": [1, 2]}})
        ledger.append({"kind": KIND_SERVING_BATCH})
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)


class TestBatchedAppends:
    def test_append_many_matches_sequential_appends(self, ledger):
        written = ledger.append_many([
            {"kind": KIND_JOB, "index": index} for index in range(4)
        ])
        entries = list(ledger.entries())
        assert entries == written
        assert [entry["index"] for entry in entries] == [0, 1, 2, 3]
        for entry in entries:
            assert entry["version"] == repro.__version__
            assert entry["ts"] > 0

    def test_append_many_of_nothing_is_a_no_op(self, ledger):
        assert ledger.append_many([]) == []
        assert not ledger.path.exists()

    def test_append_many_writes_one_line_per_entry(self, ledger):
        ledger.append_many([{"kind": KIND_JOB}, {"kind": KIND_SERVING_BATCH}])
        lines = ledger.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_span_buffer_defers_until_flush(self, ledger):
        buffer = SpanBuffer(ledger)
        buffer.append({"kind": "span", "name": "encode"}, duration_ms=1.5)
        buffer.append({"kind": "span", "name": "kernel"})
        assert len(buffer) == 2
        assert not ledger.path.exists()
        buffer.flush()
        assert len(buffer) == 0
        names = [entry["name"] for entry in ledger.entries()]
        assert names == ["encode", "kernel"]
        (encode, _) = list(ledger.entries())
        assert encode["duration_ms"] == 1.5

    def test_span_buffer_flush_is_idempotent(self, ledger):
        buffer = SpanBuffer(ledger)
        buffer.append({"kind": "span", "name": "only"})
        buffer.flush()
        assert buffer.flush() == []
        assert len(list(ledger.entries())) == 1


class TestReading:
    def test_missing_file_yields_nothing(self, tmp_path):
        ledger = RunLedger(tmp_path / "never-created")
        assert list(ledger.entries()) == []
        assert ledger.count() == 0
        assert ledger.tail() == []

    def test_kind_filter(self, ledger):
        ledger.append({"kind": KIND_JOB, "index": 0})
        ledger.append({"kind": KIND_SERVING_BATCH, "index": 1})
        ledger.append({"kind": KIND_JOB, "index": 2})
        assert [entry["index"] for entry in ledger.entries(kind=KIND_JOB)] == [0, 2]
        assert [entry["index"] for entry in ledger.entries(kind=KIND_SERVING_BATCH)] == [1]

    def test_corrupt_lines_are_skipped_not_fatal(self, ledger):
        ledger.append({"kind": KIND_JOB, "index": 0})
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "job", "trunca\n')
            handle.write("not json at all\n")
            handle.write('"a bare string, not an object"\n')
            handle.write("\n")
        ledger.append({"kind": KIND_JOB, "index": 1})
        assert [entry["index"] for entry in ledger.entries()] == [0, 1]
        assert ledger.count() == 2

    def test_tail_returns_last_n_oldest_first(self, ledger):
        for index in range(7):
            ledger.append({"kind": KIND_JOB, "index": index})
        assert [entry["index"] for entry in ledger.tail(3)] == [4, 5, 6]
        assert ledger.tail(0) == []
        assert len(ledger.tail(100)) == 7

    def test_find_by_key_prefix(self, ledger):
        ledger.append({"kind": KIND_JOB, "key": "aabbcc"})
        ledger.append({"kind": KIND_JOB, "key": "aaddee"})
        ledger.append({"kind": KIND_SERVING_BATCH})
        assert len(ledger.find("aa")) == 2
        assert len(ledger.find("aabb")) == 1
        assert ledger.find("zz") == []

    def test_stats_and_clear(self, ledger):
        ledger.append({"kind": KIND_JOB})
        ledger.append({"kind": KIND_SERVING_BATCH})
        stats = ledger.stats()
        assert stats["entries"] == 2
        assert stats["kinds"] == {KIND_JOB: 1, KIND_SERVING_BATCH: 1}
        assert stats["bytes"] > 0
        assert ledger.clear() == 2
        assert ledger.count() == 0
        assert ledger.stats()["bytes"] == 0


class TestDurability:
    def test_concurrent_appends_never_interleave(self, ledger):
        threads_n, per_thread = 8, 50

        def writer(thread_id: int) -> None:
            for index in range(per_thread):
                ledger.append({"kind": KIND_JOB, "thread": thread_id, "index": index})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        entries = list(ledger.entries())
        assert len(entries) == threads_n * per_thread
        seen = {(entry["thread"], entry["index"]) for entry in entries}
        assert len(seen) == threads_n * per_thread

    def test_unwritable_root_degrades_to_none_when_not_strict(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the directory should go")
        ledger = RunLedger(blocker / "ledger")
        assert ledger.append({"kind": KIND_JOB}) is None
        assert list(ledger.entries()) == []

    def test_unwritable_root_raises_when_strict(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the directory should go")
        ledger = RunLedger(blocker / "ledger", strict=True)
        with pytest.raises(OSError):
            ledger.append({"kind": KIND_JOB})


class TestDefaultRoot:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path / "from-env"))
        assert default_ledger_root() == tmp_path / "from-env"

    def test_xdg_cache_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv(LEDGER_DIR_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_ledger_root() == tmp_path / "xdg" / "repro" / "ledger"


class TestLineageHelpers:
    def test_config_hash_is_canonical_and_short(self):
        first = config_hash({"b": 2, "a": 1})
        second = config_hash({"a": 1, "b": 2})
        assert first == second
        assert len(first) == 16
        assert config_hash({"a": 1}) != first

    def test_config_hash_accepts_to_dict_objects(self):
        class Config:
            def to_dict(self):
                return {"a": 1, "b": 2}

        assert config_hash(Config()) == config_hash({"a": 1, "b": 2})

    def test_artifact_lineage_parses_registry_paths(self, tmp_path):
        class Artifact:
            path = tmp_path / "spikedyn" / "v0003"
            model_name = "spikedyn"
            backend = "dense"
            schema_version = 2
            config = {"n_exc": 12}

        lineage = artifact_lineage(Artifact())
        assert lineage["artifact_name"] == "spikedyn"
        assert lineage["artifact_version"] == "v0003"
        assert lineage["model"] == "spikedyn"
        assert lineage["backend"] == "dense"
        assert lineage["config_hash"] == config_hash({"n_exc": 12})

    def test_artifact_lineage_plain_directory(self, tmp_path):
        class Artifact:
            path = tmp_path / "my-export"
            model_name = "spikedyn"
            backend = "sparse"
            schema_version = 2
            config = None

        lineage = artifact_lineage(Artifact())
        assert lineage["artifact_name"] == "my-export"
        assert lineage["artifact_version"] is None
        assert lineage["config_hash"] is None


def test_single_write_per_append(ledger, monkeypatch):
    """The atomicity contract: one os.write call per appended line."""
    calls = []
    real_write = os.write

    def counting_write(fd, data):
        calls.append(data)
        return real_write(fd, data)

    monkeypatch.setattr(os, "write", counting_write)
    ledger.append({"kind": KIND_JOB, "key": "atomic"})
    assert len(calls) == 1
    assert calls[0].endswith(b"\n")
    json.loads(calls[0])

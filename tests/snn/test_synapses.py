"""Tests for synaptic connections and direct lateral inhibition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.stdp import PairwiseSTDP
from repro.snn.neurons import InputGroup, LIFGroup
from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection, UniformLateralInhibition


def make_groups(n_pre=4, n_post=3):
    pre = InputGroup(n_pre, name="pre")
    post = LIFGroup(n_post, name="post")
    return pre, post


class TestConnectionConstruction:
    def test_validates_weight_shape(self):
        pre, post = make_groups()
        with pytest.raises(ValueError):
            Connection(pre, post, np.zeros((3, 3)))

    def test_validates_sign(self):
        pre, post = make_groups()
        with pytest.raises(ValueError):
            Connection(pre, post, np.zeros((4, 3)), sign=0)

    def test_validates_weight_bounds(self):
        pre, post = make_groups()
        with pytest.raises(ValueError):
            Connection(pre, post, np.zeros((4, 3)), w_min=1.0, w_max=0.5)

    def test_copies_the_weight_matrix(self):
        pre, post = make_groups()
        weights = np.ones((4, 3))
        connection = Connection(pre, post, weights)
        weights[0, 0] = 99.0
        assert connection.weights[0, 0] == 1.0

    def test_plastic_flag_follows_learning_rule(self):
        pre, post = make_groups()
        assert not Connection(pre, post, np.zeros((4, 3))).is_plastic
        assert Connection(pre, post, np.zeros((4, 3)),
                          learning_rule=PairwiseSTDP()).is_plastic

    def test_weight_count_dense_for_plastic(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.zeros((4, 3)),
                                learning_rule=PairwiseSTDP())
        assert connection.weight_count == 12

    def test_weight_count_structural_for_fixed(self):
        pre, post = make_groups(3, 3)
        connection = Connection(pre, post, np.eye(3))
        assert connection.weight_count == 3

    def test_fanout(self):
        pre, post = make_groups(4, 3)
        connection = Connection(pre, post, np.ones((4, 3)),
                                learning_rule=PairwiseSTDP())
        assert connection.fanout == pytest.approx(3.0)


class TestConnectionPropagation:
    def test_no_spikes_no_current(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.ones((4, 3)))
        current = connection.propagate(1.0)
        np.testing.assert_allclose(current, 0.0)

    def test_spike_injects_weighted_conductance(self):
        pre, post = make_groups()
        weights = np.arange(12, dtype=float).reshape(4, 3)
        connection = Connection(pre, post, weights, tau_syn=5.0, w_max=20.0)
        pre.spikes = np.array([True, False, False, False])
        current = connection.propagate(1.0)
        np.testing.assert_allclose(current, weights[0])

    def test_multiple_spikes_sum(self):
        pre, post = make_groups()
        weights = np.ones((4, 3))
        connection = Connection(pre, post, weights, w_max=5.0)
        pre.spikes = np.array([True, True, False, False])
        current = connection.propagate(1.0)
        np.testing.assert_allclose(current, 2.0)

    def test_conductance_decays_exponentially(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.ones((4, 3)), tau_syn=2.0, w_max=5.0)
        pre.spikes = np.array([True, False, False, False])
        first = connection.propagate(1.0)
        pre.spikes = np.zeros(4, dtype=bool)
        second = connection.propagate(1.0)
        np.testing.assert_allclose(second, first * np.exp(-0.5))

    def test_inhibitory_sign_flips_current(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.ones((4, 3)), sign=-1, w_max=5.0)
        pre.spikes = np.array([True, False, False, False])
        current = connection.propagate(1.0)
        assert np.all(current < 0.0)

    def test_gain_scales_current(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.ones((4, 3)), gain=2.5, w_max=5.0)
        pre.spikes = np.array([True, False, False, False])
        np.testing.assert_allclose(connection.propagate(1.0), 2.5)

    def test_counter_charges_dense_ops_for_plastic_projection(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.ones((4, 3)),
                                learning_rule=PairwiseSTDP())
        counter = OperationCounter()
        connection.propagate(1.0, counter)
        assert counter.synaptic_events == 12
        assert counter.exponential_ops == 3

    def test_reset_clears_conductance(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.ones((4, 3)), w_max=5.0)
        pre.spikes = np.array([True, False, False, False])
        connection.propagate(1.0)
        connection.reset_state()
        np.testing.assert_allclose(connection.conductance, 0.0)


class TestConnectionPlasticityHelpers:
    def test_clip_weights(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.zeros((4, 3)), w_min=0.0, w_max=1.0)
        connection.weights[:] = 5.0
        connection.weights[0, 0] = -3.0
        connection.clip_weights()
        assert connection.weights.max() == 1.0
        assert connection.weights.min() == 0.0

    def test_normalize_scales_columns_to_target(self):
        pre, post = make_groups()
        weights = np.random.default_rng(0).random((4, 3)) * 0.4
        connection = Connection(pre, post, weights, norm=1.0, w_max=2.0)
        connection.normalize()
        np.testing.assert_allclose(connection.weights.sum(axis=0), 1.0)

    def test_normalize_is_noop_without_target(self):
        pre, post = make_groups()
        weights = np.full((4, 3), 0.25)
        connection = Connection(pre, post, weights)
        connection.normalize()
        np.testing.assert_allclose(connection.weights, 0.25)

    def test_normalize_skips_silent_columns(self):
        pre, post = make_groups()
        weights = np.zeros((4, 3))
        weights[:, 0] = 0.25
        connection = Connection(pre, post, weights, norm=1.0, w_max=2.0)
        connection.normalize()
        np.testing.assert_allclose(connection.weights[:, 1], 0.0)
        np.testing.assert_allclose(connection.weights[:, 0].sum(), 1.0)

    def test_apply_weight_delta(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.full((4, 3), 0.5), w_max=1.0)
        delta = np.full((4, 3), 0.25)
        connection.apply_weight_delta(delta)
        np.testing.assert_allclose(connection.weights, 0.75)

    def test_apply_weight_delta_clips(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.full((4, 3), 0.9), w_max=1.0)
        connection.apply_weight_delta(np.full((4, 3), 0.5))
        np.testing.assert_allclose(connection.weights, 1.0)

    def test_apply_weight_delta_validates_shape(self):
        pre, post = make_groups()
        connection = Connection(pre, post, np.zeros((4, 3)))
        with pytest.raises(ValueError):
            connection.apply_weight_delta(np.zeros((3, 4)))


class TestUniformLateralInhibition:
    def test_rejects_negative_strength(self):
        group = LIFGroup(4, name="exc")
        with pytest.raises(ValueError):
            UniformLateralInhibition(group, -1.0)

    def test_stores_single_weight(self):
        group = LIFGroup(4, name="exc")
        lateral = UniformLateralInhibition(group, 10.0)
        assert lateral.weight_count == 1
        assert not lateral.is_plastic

    def test_fanout_excludes_self(self):
        group = LIFGroup(5, name="exc")
        assert UniformLateralInhibition(group, 1.0).fanout == 4.0

    def test_spiking_neuron_is_not_self_inhibited(self):
        group = LIFGroup(3, name="exc")
        lateral = UniformLateralInhibition(group, 2.0, tau_syn=5.0)
        group.spikes = np.array([True, False, False])
        current = lateral.propagate(1.0)
        assert current[0] == pytest.approx(0.0)
        assert current[1] == pytest.approx(-2.0)
        assert current[2] == pytest.approx(-2.0)

    def test_multiple_spikes_accumulate_for_others(self):
        group = LIFGroup(3, name="exc")
        lateral = UniformLateralInhibition(group, 1.0)
        group.spikes = np.array([True, True, False])
        current = lateral.propagate(1.0)
        # Each spiker is inhibited only by the other spiker; the silent neuron
        # is inhibited by both.
        assert current[0] == pytest.approx(-1.0)
        assert current[1] == pytest.approx(-1.0)
        assert current[2] == pytest.approx(-2.0)

    def test_conductance_decays(self):
        group = LIFGroup(3, name="exc")
        lateral = UniformLateralInhibition(group, 1.0, tau_syn=2.0)
        group.spikes = np.array([True, False, False])
        first = lateral.propagate(1.0)
        group.spikes = np.zeros(3, dtype=bool)
        second = lateral.propagate(1.0)
        np.testing.assert_allclose(second, first * np.exp(-0.5))

    def test_counter_charges_linear_cost(self):
        group = LIFGroup(10, name="exc")
        lateral = UniformLateralInhibition(group, 1.0)
        counter = OperationCounter()
        lateral.propagate(1.0, counter)
        assert counter.synaptic_events == 10
        assert counter.exponential_ops == 10

    def test_reset_clears_conductance(self):
        group = LIFGroup(3, name="exc")
        lateral = UniformLateralInhibition(group, 1.0)
        group.spikes = np.array([True, True, True])
        lateral.propagate(1.0)
        lateral.reset_state()
        np.testing.assert_allclose(lateral.conductance, 0.0)

    def test_equivalent_to_dense_all_to_all_matrix(self):
        """The O(n) broadcast matches an explicit all-to-all-except-self matrix."""
        from repro.snn.topology import all_to_all_except_self_weights

        n, strength = 6, 3.0
        group = LIFGroup(n, name="exc")
        lateral = UniformLateralInhibition(group, strength, tau_syn=2.0)
        dense = Connection(
            group, group, all_to_all_except_self_weights(n, strength),
            sign=-1, tau_syn=2.0, w_max=strength * 2,
        )
        rng = np.random.default_rng(0)
        for _ in range(5):
            group.spikes = rng.random(n) < 0.4
            np.testing.assert_allclose(
                lateral.propagate(1.0), dense.propagate(1.0), atol=1e-12
            )

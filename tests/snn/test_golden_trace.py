"""Golden-trace regression test of the batched simulation engine.

A small SpikeDyn network with a fixed seed is driven by a fixed spike train
through ``Network.run_batch`` — once with plasticity off, once with
plasticity on — and the resulting spike counts, learned weights, and adapted
thresholds must reproduce the committed fixture *bit for bit*.  The fixture
pins the engine's numerical behaviour across refactors: any change to the
integration order, the learning rule, or the batched state layout that
shifts even one ULP shows up as a failure here rather than as a silent
accuracy drift in the experiment reports.

Regenerate the fixture (only after an *intentional* numerical change) with::

    PYTHONPATH=src python tests/snn/test_golden_trace.py --regenerate
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.core.architecture import build_spikedyn_network
from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule

FIXTURE = Path(__file__).resolve().parents[1] / "data" / "golden_trace.npz"

#: Fixed trace geometry; changing any of these invalidates the fixture.
N_INPUT = 64
N_EXC = 12
BATCH = 4
TIMESTEPS = 20
DENSITY = 0.1
NETWORK_SEED = 123
TRAIN_SEED = 2024


def _build_network(backend: str = "dense"):
    config = SpikeDynConfig.scaled_down(
        n_input=N_INPUT, n_exc=N_EXC, t_sim=float(TIMESTEPS),
        seed=NETWORK_SEED, backend=backend,
    )
    return build_spikedyn_network(
        config, learning_rule=SpikeDynLearningRule(), rng=NETWORK_SEED
    )


def _spike_trains() -> np.ndarray:
    rng = np.random.default_rng(TRAIN_SEED)
    return rng.random((BATCH, TIMESTEPS, N_INPUT)) < DENSITY


def compute_trace(backend: str = "dense") -> Dict[str, np.ndarray]:
    """The full golden trace, recomputed from the fixed seeds."""
    trains = _spike_trains()

    inference_net = _build_network(backend)
    inference = inference_net.run_batch(trains, learning=False)
    inference_counts = np.stack(
        [result.counts("excitatory") for result in inference]
    )

    learning_net = _build_network(backend)
    learning = learning_net.run_batch(trains, learning=True)
    learning_counts = np.stack(
        [result.counts("excitatory") for result in learning]
    )

    return {
        "inference_counts": inference_counts,
        "learning_counts": learning_counts,
        "final_weights": np.array(
            learning_net.connection("input_to_exc").weights
        ),
        "final_theta": np.array(learning_net.group("excitatory").theta),
    }


def test_fixture_exists():
    assert FIXTURE.exists(), (
        f"golden-trace fixture missing at {FIXTURE}; regenerate with "
        "'PYTHONPATH=src python tests/snn/test_golden_trace.py --regenerate'"
    )


def test_run_batch_reproduces_the_golden_trace():
    expected = dict(np.load(FIXTURE))
    actual = compute_trace()
    assert set(actual) == set(expected)
    for key in sorted(expected):
        np.testing.assert_array_equal(
            actual[key], expected[key],
            err_msg=f"golden-trace field {key!r} diverged from the fixture",
        )


def test_sparse_backend_replays_the_golden_trace():
    """The event-driven backend reproduces the dense fixture.

    Spike counts are integers and must match exactly.  Weights and theta may
    in principle differ by summation-order rounding (the sparse backend
    segment-sums only the spiking weight rows), so they are held to
    double-precision tightness rather than bit equality.
    """
    expected = dict(np.load(FIXTURE))
    actual = compute_trace(backend="sparse")
    np.testing.assert_array_equal(
        actual["inference_counts"], expected["inference_counts"],
        err_msg="sparse-backend inference diverged from the golden trace",
    )
    np.testing.assert_array_equal(
        actual["learning_counts"], expected["learning_counts"],
        err_msg="sparse-backend learning diverged from the golden trace",
    )
    np.testing.assert_allclose(
        actual["final_weights"], expected["final_weights"],
        rtol=1e-10, atol=1e-12,
        err_msg="sparse-backend weights diverged from the golden trace",
    )
    np.testing.assert_allclose(
        actual["final_theta"], expected["final_theta"],
        rtol=1e-10, atol=1e-12,
        err_msg="sparse-backend theta diverged from the golden trace",
    )


def test_trace_is_stable_within_a_session():
    # Guards the guard: if recomputing the trace twice in one process ever
    # disagrees, the fixture comparison above is meaningless.
    first = compute_trace()
    second = compute_trace()
    for key in first:
        np.testing.assert_array_equal(first[key], second[key])


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(FIXTURE, **compute_trace())
        print(f"wrote {FIXTURE}")
    else:
        print(__doc__)

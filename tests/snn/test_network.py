"""Tests for the network orchestration and its run loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.stdp import PairwiseSTDP
from repro.snn.monitors import SpikeMonitor, StateMonitor
from repro.snn.network import Network, SampleResult
from repro.snn.neurons import AdaptiveLIFGroup, InputGroup, LIFGroup
from repro.snn.simulation import SimulationParameters
from repro.snn.synapses import Connection, UniformLateralInhibition
from repro.snn.topology import dense_random_weights


def build_feedforward_network(n_input=6, n_exc=4, *, learning_rule=None,
                              weight_value=5.0, params=None) -> Network:
    """A minimal input -> excitatory network with strong uniform weights."""
    network = Network(params or SimulationParameters(dt=1.0, t_sim=20.0, t_rest=5.0))
    input_group = network.add_group(InputGroup(n_input, name="input"))
    excitatory = network.add_group(AdaptiveLIFGroup(
        n_exc, refractory=0.0, theta_plus=0.0, name="excitatory"
    ))
    network.add_connection(Connection(
        input_group, excitatory, np.full((n_input, n_exc), weight_value),
        w_max=weight_value * 2, learning_rule=learning_rule, name="input_to_exc",
    ))
    return network


class TestConstruction:
    def test_group_names_must_be_unique(self):
        network = Network()
        network.add_group(LIFGroup(2, name="layer"))
        with pytest.raises(ValueError):
            network.add_group(LIFGroup(3, name="layer"))

    def test_only_one_input_group(self):
        network = Network()
        network.add_group(InputGroup(2, name="input_a"))
        with pytest.raises(ValueError):
            network.add_group(InputGroup(2, name="input_b"))

    def test_connection_requires_registered_groups(self):
        network = Network()
        pre = InputGroup(2, name="input")
        post = LIFGroup(2, name="exc")
        network.add_group(pre)
        with pytest.raises(ValueError):
            network.add_connection(Connection(pre, post, np.zeros((2, 2))))

    def test_connection_requires_same_object(self):
        network = Network()
        network.add_group(InputGroup(2, name="input"))
        network.add_group(LIFGroup(2, name="exc"))
        other_input = InputGroup(2, name="input")
        with pytest.raises(ValueError):
            network.add_connection(
                Connection(other_input, network.group("exc"), np.zeros((2, 2)))
            )

    def test_input_group_property_requires_an_input(self):
        network = Network()
        network.add_group(LIFGroup(2, name="exc"))
        with pytest.raises(RuntimeError):
            _ = network.input_group

    def test_group_lookup(self):
        network = Network()
        group = network.add_group(LIFGroup(2, name="exc"))
        assert network.group("exc") is group
        with pytest.raises(KeyError):
            network.group("missing")

    def test_connection_lookup(self):
        network = build_feedforward_network()
        assert network.connection("input_to_exc").name == "input_to_exc"
        with pytest.raises(KeyError):
            network.connection("missing")


class TestParameterAccounting:
    def test_weight_count_sums_connections(self):
        network = build_feedforward_network(n_input=6, n_exc=4,
                                            learning_rule=PairwiseSTDP())
        excitatory = network.group("excitatory")
        network.add_connection(UniformLateralInhibition(excitatory, 1.0))
        assert network.weight_count == 6 * 4 + 1

    def test_neuron_parameter_count_sums_groups(self):
        network = build_feedforward_network(n_input=6, n_exc=4)
        # Input neurons carry no parameters; adaptive LIF neurons carry three.
        assert network.neuron_parameter_count == 3 * 4


class TestRunSample:
    def test_returns_per_group_counts(self):
        network = build_feedforward_network()
        train = np.ones((10, 6), dtype=bool)
        result = network.run_sample(train, learning=False)
        assert isinstance(result, SampleResult)
        assert set(result.spike_counts) == {"input", "excitatory"}
        assert result.counts("input").sum() == 60
        assert result.counts("excitatory").sum() > 0
        assert result.steps == 10
        assert not result.learning

    def test_silent_input_produces_no_output(self):
        network = build_feedforward_network()
        result = network.run_sample(np.zeros((10, 6), dtype=bool), learning=False)
        assert result.counts("excitatory").sum() == 0

    def test_unknown_group_raises_in_counts(self):
        network = build_feedforward_network()
        result = network.run_sample(np.zeros((5, 6), dtype=bool), learning=False)
        with pytest.raises(KeyError):
            result.counts("missing")

    def test_rest_period_extends_steps(self):
        params = SimulationParameters(dt=1.0, t_sim=20.0, t_rest=5.0)
        network = build_feedforward_network(params=params)
        result = network.run_sample(np.zeros((10, 6), dtype=bool),
                                    learning=False, include_rest=True)
        assert result.steps == 15

    def test_learning_false_preserves_weights(self):
        network = build_feedforward_network(learning_rule=PairwiseSTDP(),
                                            weight_value=0.5)
        connection = network.connection("input_to_exc")
        before = connection.weights.copy()
        network.run_sample(np.ones((10, 6), dtype=bool), learning=False)
        np.testing.assert_array_equal(connection.weights, before)

    def test_learning_true_updates_weights(self):
        network = build_feedforward_network(learning_rule=PairwiseSTDP(nu_post=0.5),
                                            weight_value=5.0)
        connection = network.connection("input_to_exc")
        connection.norm = None  # keep the raw STDP change visible
        before = connection.weights.copy()
        network.run_sample(np.ones((10, 6), dtype=bool), learning=True)
        assert not np.array_equal(connection.weights, before)

    def test_transient_state_is_cleared_between_samples(self):
        network = build_feedforward_network()
        network.run_sample(np.ones((10, 6), dtype=bool), learning=False)
        excitatory = network.group("excitatory")
        np.testing.assert_allclose(excitatory.v, excitatory.v_rest)
        np.testing.assert_allclose(
            network.connection("input_to_exc").conductance, 0.0
        )

    def test_operation_counter_accumulates(self):
        network = build_feedforward_network()
        network.run_sample(np.ones((10, 6), dtype=bool), learning=False)
        first_total = network.counter.total_ops()
        network.run_sample(np.ones((10, 6), dtype=bool), learning=False)
        assert first_total > 0
        assert network.counter.total_ops() > first_total

    def test_monitors_observe_every_step(self):
        network = build_feedforward_network()
        spike_monitor = network.add_spike_monitor(
            SpikeMonitor(network.group("excitatory"), record_raster=True)
        )
        state_monitor = network.add_state_monitor(
            StateMonitor(network.group("excitatory"), "v")
        )
        network.run_sample(np.ones((10, 6), dtype=bool), learning=False)
        assert spike_monitor.raster.shape == (10, 4)
        assert state_monitor.history.shape == (10, 4)


class TestLateralInhibitionNetwork:
    def test_lateral_inhibition_sharpens_competition(self):
        """With strong lateral inhibition, fewer excitatory spikes survive."""
        def total_spikes(strength: float) -> int:
            network = build_feedforward_network(n_input=6, n_exc=4)
            excitatory = network.group("excitatory")
            if strength > 0:
                network.add_connection(
                    UniformLateralInhibition(excitatory, strength)
                )
            rng = np.random.default_rng(0)
            train = rng.random((30, 6)) < 0.5
            return int(network.run_sample(train, learning=False)
                       .counts("excitatory").sum())

        assert total_spikes(50.0) < total_spikes(0.0)


class TestReset:
    def test_full_reset_clears_counters_and_monitors(self):
        network = build_feedforward_network()
        monitor = network.add_spike_monitor(
            SpikeMonitor(network.group("excitatory"))
        )
        network.run_sample(np.ones((10, 6), dtype=bool), learning=False)
        network.reset(full=True)
        assert network.counter.total_ops() == 0
        assert monitor.total_spikes == 0

    def test_reset_never_touches_weights(self):
        network = build_feedforward_network(learning_rule=PairwiseSTDP())
        connection = network.connection("input_to_exc")
        before = connection.weights.copy()
        network.reset(full=True)
        np.testing.assert_array_equal(connection.weights, before)

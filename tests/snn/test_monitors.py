"""Tests for spike and state monitors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.snn.monitors import SpikeMonitor, StateMonitor
from repro.snn.neurons import LIFGroup


class TestSpikeMonitor:
    def test_accumulates_counts(self):
        group = LIFGroup(3, name="g")
        monitor = SpikeMonitor(group)
        group.spikes = np.array([True, False, True])
        monitor.observe()
        group.spikes = np.array([True, False, False])
        monitor.observe()
        np.testing.assert_array_equal(monitor.counts, [2, 0, 1])
        assert monitor.total_spikes == 3

    def test_raster_disabled_by_default(self):
        group = LIFGroup(3, name="g")
        monitor = SpikeMonitor(group)
        group.spikes = np.array([True, True, True])
        monitor.observe()
        assert monitor.raster.shape == (0, 3)

    def test_raster_records_every_step(self):
        group = LIFGroup(2, name="g")
        monitor = SpikeMonitor(group, record_raster=True)
        patterns = [np.array([True, False]), np.array([False, True])]
        for pattern in patterns:
            group.spikes = pattern
            monitor.observe()
        np.testing.assert_array_equal(monitor.raster, np.vstack(patterns))

    def test_reset(self):
        group = LIFGroup(2, name="g")
        monitor = SpikeMonitor(group, record_raster=True)
        group.spikes = np.array([True, True])
        monitor.observe()
        monitor.reset()
        assert monitor.total_spikes == 0
        assert monitor.raster.shape == (0, 2)


class TestStateMonitor:
    def test_requires_existing_attribute(self):
        group = LIFGroup(2, name="g")
        with pytest.raises(AttributeError):
            StateMonitor(group, "does_not_exist")

    def test_records_history(self):
        group = LIFGroup(2, name="g")
        monitor = StateMonitor(group, "v")
        monitor.observe()
        group.v[:] = -50.0
        monitor.observe()
        history = monitor.history
        assert history.shape == (2, 2)
        np.testing.assert_allclose(history[0], group.v_rest)
        np.testing.assert_allclose(history[1], -50.0)

    def test_history_stores_copies(self):
        group = LIFGroup(2, name="g")
        monitor = StateMonitor(group, "v")
        monitor.observe()
        group.v[:] = 0.0
        np.testing.assert_allclose(monitor.history[0], group.v_rest)

    def test_last_value(self):
        group = LIFGroup(1, name="g")
        monitor = StateMonitor(group, "v")
        assert monitor.last is None
        monitor.observe()
        np.testing.assert_allclose(monitor.last, group.v_rest)

    def test_empty_history_shape(self):
        group = LIFGroup(2, name="g")
        monitor = StateMonitor(group, "v")
        assert monitor.history.shape == (0,)

    def test_reset(self):
        group = LIFGroup(2, name="g")
        monitor = StateMonitor(group, "v")
        monitor.observe()
        monitor.reset()
        assert monitor.last is None

    def test_long_runs_grow_the_buffer(self):
        # 200 observations cross the initial capacity twice; every recorded
        # value must survive the buffer growth verbatim and in order.
        group = LIFGroup(3, name="g")
        monitor = StateMonitor(group, "v")
        for step in range(200):
            group.v[:] = float(step)
            monitor.observe()
        history = monitor.history
        assert history.shape == (200, 3)
        np.testing.assert_array_equal(history[:, 0], np.arange(200.0))
        np.testing.assert_allclose(monitor.last, 199.0)

    def test_history_is_a_snapshot_not_a_live_view(self):
        group = LIFGroup(2, name="g")
        monitor = StateMonitor(group, "v")
        monitor.observe()
        history = monitor.history
        group.v[:] = 0.0
        monitor.observe()
        np.testing.assert_allclose(history[0], group.v_rest)
        assert history.shape == (1, 2)

    def test_mixed_shapes_keep_last_and_raise_on_history(self):
        group = LIFGroup(2, name="g")
        monitor = StateMonitor(group, "v")
        monitor.observe()
        # Simulate a batched run without a reset: the attribute changes shape.
        group.v = np.zeros((4, 2))
        monitor.observe()
        with pytest.raises(ValueError, match="mixes"):
            monitor.history
        assert monitor.last.shape == (4, 2)
        monitor.reset()
        monitor.observe()
        assert monitor.history.shape == (1, 4, 2)

    def test_reset_allows_a_new_shape(self):
        group = LIFGroup(2, name="g")
        monitor = StateMonitor(group, "v")
        monitor.observe()
        monitor.reset()
        group.v = np.zeros((3, 2))
        monitor.observe()
        assert monitor.history.shape == (1, 3, 2)

"""Batched-vs-sequential equivalence of the simulation engine.

``Network.run_batch`` must reproduce ``B`` sequential ``run_sample`` calls
bit-for-bit: spike counts, learned weights (with plasticity enabled),
membrane/conductance trajectories, and ``OperationCounter`` totals.  The
tests build twin networks from identical seeds, drive one sequentially and
one batched, and compare exactly (no tolerances).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import build_baseline_network, build_spikedyn_network
from repro.core.config import SpikeDynConfig
from repro.core.learning import SpikeDynLearningRule
from repro.learning.stdp import PairwiseSTDP
from repro.snn.monitors import SpikeMonitor
from repro.snn.neurons import AdaptiveLIFGroup, InputGroup
from repro.snn.network import Network
from repro.snn.simulation import SimulationParameters
from repro.snn.synapses import Connection


def _spikedyn_net(n_exc: int = 24, seed: int = 0, t_sim: float = 40.0) -> "Network":
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=n_exc,
                                        t_sim=t_sim, seed=seed)
    return build_spikedyn_network(config, learning_rule=SpikeDynLearningRule(),
                                  rng=seed)


def _baseline_net(n_exc: int = 16, seed: int = 0, t_sim: float = 40.0) -> "Network":
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=n_exc,
                                        t_sim=t_sim, seed=seed)
    return build_baseline_network(config, learning_rule=PairwiseSTDP(), rng=seed)


def _random_trains(batch_size: int, timesteps: int, n_input: int = 196,
                   seed: int = 7, density: float = 0.05) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((batch_size, timesteps, n_input)) < density


def _freeze_adaptation(network) -> None:
    """Make sequential samples independent (no cross-sample theta drift)."""
    for group in network.groups.values():
        if isinstance(group, AdaptiveLIFGroup):
            group.adapt_theta = False


class TestBatchedInferenceEquivalence:
    @pytest.mark.parametrize("make_net", [_spikedyn_net, _baseline_net])
    def test_spike_counts_and_counters_match_exactly(self, make_net):
        trains = _random_trains(6, 40)
        sequential_net, batched_net = make_net(), make_net()
        _freeze_adaptation(sequential_net)
        _freeze_adaptation(batched_net)

        sequential = [sequential_net.run_sample(train, learning=False)
                      for train in trains]
        batched = batched_net.run_batch(trains, learning=False)

        assert len(batched) == len(sequential)
        for seq, bat in zip(sequential, batched):
            assert bat.steps == seq.steps
            assert bat.learning is False
            for name in seq.spike_counts:
                np.testing.assert_array_equal(bat.counts(name), seq.counts(name))
        assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()

    def test_acceptance_case_b8_on_100_excitatory_neurons(self):
        """The issue's acceptance scenario: B=8, 100 excitatory neurons."""
        trains = _random_trains(8, 30)
        sequential_net = _spikedyn_net(n_exc=100, t_sim=30.0)
        batched_net = _spikedyn_net(n_exc=100, t_sim=30.0)
        _freeze_adaptation(sequential_net)
        _freeze_adaptation(batched_net)

        sequential = [sequential_net.run_sample(train, learning=False)
                      for train in trains]
        batched = batched_net.run_batch(trains, learning=False)
        for seq, bat in zip(sequential, batched):
            np.testing.assert_array_equal(bat.counts("excitatory"),
                                          seq.counts("excitatory"))
        np.testing.assert_array_equal(
            sequential_net.connection("input_to_exc").weights,
            batched_net.connection("input_to_exc").weights,
        )
        assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()

    def test_batch_of_one_matches_run_sample(self):
        trains = _random_trains(1, 40)
        sequential_net, batched_net = _spikedyn_net(), _spikedyn_net()
        _freeze_adaptation(sequential_net)
        _freeze_adaptation(batched_net)
        seq = sequential_net.run_sample(trains[0], learning=False)
        (bat,) = batched_net.run_batch(trains, learning=False)
        np.testing.assert_array_equal(bat.counts("excitatory"),
                                      seq.counts("excitatory"))
        assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()

    def test_include_rest_matches(self):
        trains = _random_trains(4, 20)
        sequential_net, batched_net = _spikedyn_net(t_sim=20.0), _spikedyn_net(t_sim=20.0)
        _freeze_adaptation(sequential_net)
        _freeze_adaptation(batched_net)
        sequential = [sequential_net.run_sample(train, learning=False,
                                                include_rest=True)
                      for train in trains]
        batched = batched_net.run_batch(trains, learning=False,
                                        include_rest=True)
        for seq, bat in zip(sequential, batched):
            assert bat.steps == seq.steps
            np.testing.assert_array_equal(bat.counts("excitatory"),
                                          seq.counts("excitatory"))
        assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()


class TestBatchedLearningEquivalence:
    @pytest.mark.parametrize("make_net", [_spikedyn_net, _baseline_net])
    def test_final_weights_match_bit_for_bit(self, make_net):
        trains = _random_trains(5, 40)
        sequential_net, batched_net = make_net(), make_net()

        sequential = [sequential_net.run_sample(train, learning=True)
                      for train in trains]
        batched = batched_net.run_batch(trains, learning=True)

        np.testing.assert_array_equal(
            sequential_net.connection("input_to_exc").weights,
            batched_net.connection("input_to_exc").weights,
        )
        for seq, bat in zip(sequential, batched):
            assert bat.learning is True
            np.testing.assert_array_equal(bat.counts("excitatory"),
                                          seq.counts("excitatory"))
        assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()
        # Learning mode also preserves adaptation drift exactly.
        np.testing.assert_array_equal(
            sequential_net.group("excitatory").theta,
            batched_net.group("excitatory").theta,
        )


class TestBatchLifecycle:
    def test_adaptation_state_is_restored_after_batched_inference(self):
        network = _spikedyn_net()
        excitatory = network.group("excitatory")
        theta_before = excitatory.theta.copy()
        network.run_batch(_random_trains(4, 40), learning=False)
        assert excitatory.theta.shape == (excitatory.n,)
        np.testing.assert_array_equal(excitatory.theta, theta_before)

    def test_state_buffers_are_single_sample_after_run_batch(self):
        network = _spikedyn_net()
        network.run_batch(_random_trains(3, 40), learning=False)
        assert network.batch_size is None
        for group in network.groups.values():
            assert group.spikes.shape == (group.n,)
        for connection in network.connections:
            assert connection.conductance.shape == (connection.post.n,)

    def test_run_sample_works_after_run_batch(self):
        trains = _random_trains(3, 40)
        network = _spikedyn_net()
        _freeze_adaptation(network)
        reference = _spikedyn_net()
        _freeze_adaptation(reference)

        network.run_batch(trains, learning=False)
        after_batch = network.run_sample(trains[0], learning=False)
        fresh = reference.run_sample(trains[0], learning=False)
        np.testing.assert_array_equal(after_batch.counts("excitatory"),
                                      fresh.counts("excitatory"))

    def test_double_begin_batch_is_rejected(self):
        group = AdaptiveLIFGroup(4, name="g")
        group.begin_batch(2)
        with pytest.raises(RuntimeError):
            group.begin_batch(3)
        group.end_batch()
        group.end_batch()  # idempotent

    def test_reset_exits_batch_mode(self):
        network = _spikedyn_net()
        network._begin_batch(4)
        assert network.batch_size == 4
        network.reset(full=True)
        assert network.batch_size is None
        for group in network.groups.values():
            assert group.spikes.shape == (group.n,)


class TestRunBatchValidation:
    def test_rejects_wrong_rank(self):
        network = _spikedyn_net()
        with pytest.raises(ValueError, match="batch_size, timesteps"):
            network.run_batch(np.zeros((10, 196), dtype=bool))

    def test_rejects_wrong_input_width(self):
        network = _spikedyn_net()
        with pytest.raises(ValueError, match="input channels"):
            network.run_batch(np.zeros((2, 10, 7), dtype=bool))

    def test_rejects_ragged_trains(self):
        network = _spikedyn_net()
        ragged = [np.zeros((10, 196), dtype=bool), np.zeros((12, 196), dtype=bool)]
        with pytest.raises(ValueError, match="same number of timesteps"):
            network.run_batch(ragged)

    def test_accepts_a_list_of_equal_length_trains(self):
        network = _spikedyn_net()
        trains = [train for train in _random_trains(3, 20)]
        results = network.run_batch(trains, learning=False)
        assert len(results) == 3


class TestBatchedInputGroup:
    def test_batched_train_shape_is_validated(self):
        group = InputGroup(5, name="input")
        group.begin_batch(2)
        with pytest.raises(ValueError, match="batched spike train"):
            group.set_spike_train(np.zeros((3, 5), dtype=bool))
        group.set_spike_train(np.zeros((2, 3, 5), dtype=bool))
        assert group.remaining_steps == 3
        group.end_batch()
        assert group.remaining_steps == 0

    def test_batched_replay_emits_per_sample_rows(self):
        group = InputGroup(3, name="input")
        group.begin_batch(2)
        train = np.zeros((2, 2, 3), dtype=bool)
        train[0, 0, 1] = True
        train[1, 1, 2] = True
        group.set_spike_train(train)
        first = group.step(np.zeros((2, 3)), dt=1.0)
        np.testing.assert_array_equal(first, train[:, 0])
        second = group.step(np.zeros((2, 3)), dt=1.0)
        np.testing.assert_array_equal(second, train[:, 1])
        third = group.step(np.zeros((2, 3)), dt=1.0)
        assert not third.any()
        group.end_batch()


class TestBatchedMonitors:
    def test_spike_monitor_counts_stay_per_neuron_in_batch_mode(self):
        network = _spikedyn_net()
        monitor = network.add_spike_monitor(
            SpikeMonitor(network.group("excitatory"))
        )
        results = network.run_batch(_random_trains(4, 40), learning=False)
        assert monitor.counts.shape == (network.group("excitatory").n,)
        total = sum(result.counts("excitatory").sum() for result in results)
        assert monitor.total_spikes == total

    def test_monitor_after_reset_has_no_stale_batch_buffers(self):
        """Regression: reset() must leave no batch-shaped state behind."""
        network = _spikedyn_net()
        monitor = network.add_spike_monitor(
            SpikeMonitor(network.group("excitatory"), record_raster=True)
        )
        network.run_batch(_random_trains(3, 20), learning=False)
        assert monitor.raster.ndim == 3  # (timesteps, batch, n)

        network.reset(full=True)
        assert monitor.total_spikes == 0
        assert monitor.raster.shape == (0, network.group("excitatory").n)

        # A fresh monitor attached after the reset sees plain (n,) spikes.
        late_monitor = network.add_spike_monitor(
            SpikeMonitor(network.group("excitatory"), record_raster=True)
        )
        steps = 20
        train = _random_trains(1, steps)[0]
        network.run_sample(train, learning=False)
        assert late_monitor.counts.shape == (network.group("excitatory").n,)
        assert late_monitor.raster.shape == (steps, network.group("excitatory").n)

    def test_mixed_shape_raster_raises_until_reset(self):
        network = _spikedyn_net()
        monitor = network.add_spike_monitor(
            SpikeMonitor(network.group("excitatory"), record_raster=True)
        )
        network.run_batch(_random_trains(2, 10), learning=False)
        network.run_sample(_random_trains(1, 10)[0], learning=False)
        with pytest.raises(ValueError, match="mixes"):
            monitor.raster
        monitor.reset()
        assert monitor.raster.shape == (0, network.group("excitatory").n)


class TestHandBuiltNetworkBatched:
    """Equivalence on a minimal hand-assembled network (no model builders)."""

    @staticmethod
    def _make():
        params = SimulationParameters(dt=1.0, t_sim=15.0, t_rest=5.0)
        network = Network(params, name="tiny")
        inputs = network.add_group(InputGroup(6, name="input"))
        excitatory = network.add_group(
            AdaptiveLIFGroup(4, name="excitatory", theta_plus=0.0)
        )
        rng = np.random.default_rng(11)
        network.add_connection(Connection(
            inputs, excitatory, rng.random((6, 4)), gain=40.0,
            name="input_to_exc",
        ))
        return network

    def test_counts_match(self):
        trains = _random_trains(5, 15, n_input=6, density=0.4)
        sequential_net, batched_net = self._make(), self._make()
        sequential = [sequential_net.run_sample(train, learning=False)
                      for train in trains]
        batched = batched_net.run_batch(trains, learning=False)
        for seq, bat in zip(sequential, batched):
            np.testing.assert_array_equal(bat.counts("excitatory"),
                                          seq.counts("excitatory"))
        assert batched_net.counter.as_dict() == sequential_net.counter.as_dict()


class TestBatchedTraces:
    """Batch lifecycle of SpikeTrace (used by future batched learning)."""

    def test_batched_updates_match_sequential_per_sample(self):
        from repro.snn.traces import SpikeTrace

        rng = np.random.default_rng(0)
        spikes = rng.random((3, 4, 6)) < 0.3  # (timesteps, batch, n)

        batched = SpikeTrace(6, tau=15.0, mode="set")
        batched.begin_batch(4)
        assert batched.state_shape == (4, 6)
        for step in spikes:
            batched.step(step, dt=1.0)
        batched_values = batched.values.copy()
        batched.end_batch()
        assert batched.values.shape == (6,)

        for sample in range(4):
            sequential = SpikeTrace(6, tau=15.0, mode="set")
            for step in spikes:
                sequential.step(step[sample], dt=1.0)
            np.testing.assert_array_equal(batched_values[sample],
                                          sequential.values)

    def test_batched_counter_accounting(self):
        from repro.snn.simulation import OperationCounter
        from repro.snn.traces import SpikeTrace

        batched_counter, sequential_counter = OperationCounter(), OperationCounter()
        spikes = np.ones((3, 5), dtype=bool)

        batched = SpikeTrace(5, mode="add")
        batched.begin_batch(3)
        batched.step(spikes, dt=1.0, counter=batched_counter)

        sequential = SpikeTrace(5, mode="add")
        for row in spikes:
            sequential.reset()
            sequential.step(row, dt=1.0, counter=sequential_counter)
        assert batched_counter.as_dict() == sequential_counter.as_dict()

    def test_shape_validation_and_lifecycle_errors(self):
        from repro.snn.traces import SpikeTrace

        trace = SpikeTrace(4)
        trace.begin_batch(2)
        with pytest.raises(RuntimeError):
            trace.begin_batch(2)
        with pytest.raises(ValueError):
            trace.update(np.zeros(4, dtype=bool))  # 1-D spikes in batch mode
        trace.end_batch()
        trace.end_batch()  # idempotent
        with pytest.raises(ValueError):
            trace.update(np.zeros((2, 4), dtype=bool))  # batch spikes outside


class TestBatchedStateMonitor:
    def test_mixed_shape_history_raises_until_reset(self):
        from repro.snn.monitors import StateMonitor

        network = _spikedyn_net()
        monitor = network.add_state_monitor(
            StateMonitor(network.group("excitatory"), "v")
        )
        network.run_batch(_random_trains(2, 10), learning=False)
        assert monitor.history.shape[1:] == (2, network.group("excitatory").n)
        network.run_sample(_random_trains(1, 10)[0], learning=False)
        with pytest.raises(ValueError, match="mixes"):
            monitor.history
        monitor.reset()
        network.run_sample(_random_trains(1, 10)[0], learning=False)
        assert monitor.history.shape[1:] == (network.group("excitatory").n,)

"""Tests for exponentially decaying spike traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.snn.simulation import OperationCounter
from repro.snn.traces import SpikeTrace


class TestConstruction:
    def test_starts_at_zero(self):
        trace = SpikeTrace(5)
        np.testing.assert_allclose(trace.values, 0.0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            SpikeTrace(5, mode="multiply")

    def test_rejects_non_positive_tau(self):
        with pytest.raises(ValueError):
            SpikeTrace(5, tau=0.0)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            SpikeTrace(0)


class TestDecay:
    def test_exponential_decay_factor(self):
        trace = SpikeTrace(3, tau=20.0)
        trace.values[:] = 1.0
        trace.decay(1.0)
        np.testing.assert_allclose(trace.values, np.exp(-1.0 / 20.0))

    def test_decay_counts_operations(self):
        trace = SpikeTrace(4, tau=20.0)
        counter = OperationCounter()
        trace.decay(1.0, counter)
        assert counter.exponential_ops == 4
        assert counter.trace_updates == 4


class TestUpdate:
    def test_set_mode_clamps_to_increment(self):
        trace = SpikeTrace(3, increment=1.0, mode="set")
        trace.values[:] = 0.4
        trace.update(np.array([True, False, True]))
        np.testing.assert_allclose(trace.values, [1.0, 0.4, 1.0])

    def test_add_mode_accumulates(self):
        trace = SpikeTrace(2, increment=0.5, mode="add")
        trace.update(np.array([True, True]))
        trace.update(np.array([True, False]))
        np.testing.assert_allclose(trace.values, [1.0, 0.5])

    def test_update_validates_shape(self):
        trace = SpikeTrace(3)
        with pytest.raises(ValueError):
            trace.update(np.array([True, False]))

    def test_update_counts_spiking_elements_only(self):
        trace = SpikeTrace(4)
        counter = OperationCounter()
        trace.update(np.array([True, False, True, False]), counter)
        assert counter.trace_updates == 2


class TestStepAndReset:
    def test_step_decays_then_updates(self):
        trace = SpikeTrace(2, tau=10.0, increment=1.0, mode="set")
        trace.values[:] = 1.0
        values = trace.step(np.array([False, True]), 1.0)
        assert values[0] == pytest.approx(np.exp(-0.1))
        assert values[1] == pytest.approx(1.0)

    def test_step_returns_live_view(self):
        trace = SpikeTrace(2)
        values = trace.step(np.array([True, False]), 1.0)
        assert values is trace.values

    def test_reset(self):
        trace = SpikeTrace(3)
        trace.update(np.array([True, True, True]))
        trace.reset()
        np.testing.assert_allclose(trace.values, 0.0)

    def test_trace_never_negative_under_decay(self):
        trace = SpikeTrace(3, tau=1.0)
        trace.update(np.array([True, True, True]))
        for _ in range(50):
            trace.decay(5.0)
        assert np.all(trace.values >= 0.0)

"""Tests for the event-stream representation and the event-driven engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.learning import SpikeDynLearningRule
from repro.learning.asp import ASPLearningRule
from repro.learning.stdp import PairwiseSTDP
from repro.snn.events import (
    EventStream,
    advance_analytic,
    as_event_stream,
    silence_is_provable,
)
from repro.snn.monitors import SpikeMonitor
from repro.snn.network import Network
from repro.snn.neurons import AdaptiveLIFGroup, InputGroup
from repro.snn.simulation import SimulationParameters
from repro.snn.synapses import Connection

N_INPUT = 8
N_EXC = 4


def bursty_train(timesteps=400, n=N_INPUT, bursts=4, burst_steps=3,
                 p=0.5, seed=7) -> np.ndarray:
    """Low-density dense train with long silent gaps between bursts."""
    rng = np.random.default_rng(seed)
    train = np.zeros((timesteps, n), dtype=bool)
    spacing = timesteps // bursts
    for b in range(bursts):
        window = rng.random((burst_steps, n)) < p
        train[b * spacing:b * spacing + burst_steps] = window
    return train


def build_network(*, backend="eventqueue", learning_rule=None,
                  weight=1.5, t_sim=400.0, t_rest=20.0,
                  seed=3) -> Network:
    """Small input -> adaptive-excitatory network with lateral inhibition."""
    rng = np.random.default_rng(seed)
    network = Network(
        SimulationParameters(dt=1.0, t_sim=t_sim, t_rest=t_rest),
        backend=backend,
    )
    input_group = network.add_group(InputGroup(N_INPUT, name="input"))
    excitatory = network.add_group(AdaptiveLIFGroup(
        N_EXC, refractory=2.0, theta_plus=0.05, name="excitatory"
    ))
    network.add_connection(Connection(
        input_group, excitatory,
        rng.uniform(0.0, weight, size=(N_INPUT, N_EXC)),
        w_max=weight * 2, learning_rule=learning_rule, name="input_to_exc",
    ))
    return network


def paired_networks(rule_factory=None, **kwargs):
    """Two bit-identical networks, one for each engine under comparison.

    Each network gets its own learning-rule instance (rules carry state, so
    sharing one across both engines would couple the comparison).
    """
    return (
        build_network(learning_rule=rule_factory() if rule_factory else None,
                      **kwargs),
        build_network(learning_rule=rule_factory() if rule_factory else None,
                      **kwargs),
    )


class TestEventStream:
    def test_dense_round_trip_is_lossless(self):
        train = bursty_train()
        stream = EventStream.from_dense(train)
        np.testing.assert_array_equal(stream.to_dense(), train)
        assert stream.n_events == int(train.sum())
        assert stream.density == pytest.approx(train.mean())

    def test_events_are_stably_sorted_by_time(self):
        stream = EventStream(times=[5, 1, 5, 0], channels=[2, 1, 0, 3],
                             n_steps=6, n_channels=4)
        np.testing.assert_array_equal(stream.times, [0, 1, 5, 5])
        np.testing.assert_array_equal(stream.channels, [3, 1, 2, 0])

    def test_step_channels_groups_by_active_step(self):
        stream = EventStream(times=[0, 0, 7], channels=[1, 2, 0],
                             n_steps=10, n_channels=3)
        active, per_step = stream.step_channels()
        np.testing.assert_array_equal(active, [0, 7])
        np.testing.assert_array_equal(sorted(per_step[0]), [1, 2])
        np.testing.assert_array_equal(per_step[1], [0])

    def test_bounds_are_validated(self):
        with pytest.raises(ValueError, match="times"):
            EventStream(times=[10], channels=[0], n_steps=10, n_channels=2)
        with pytest.raises(ValueError, match="channels"):
            EventStream(times=[0], channels=[2], n_steps=10, n_channels=2)
        with pytest.raises(ValueError, match="equal length"):
            EventStream(times=[0, 1], channels=[0], n_steps=10, n_channels=2)

    def test_empty_stream(self):
        stream = EventStream.empty(50, 4)
        assert stream.n_events == 0
        assert stream.active_steps.size == 0
        assert not stream.to_dense().any()

    def test_as_event_stream_checks_the_channel_count(self):
        stream = EventStream.empty(10, 4)
        assert as_event_stream(stream) is stream
        with pytest.raises(ValueError, match="channels"):
            as_event_stream(stream, n_channels=5)


class TestSilenceBound:
    def test_fresh_network_is_provably_silent(self):
        network = build_network()
        assert silence_is_provable(network)

    def test_pending_spikes_veto_the_jump(self):
        network = build_network()
        network.group("excitatory").spikes[:] = True
        assert not silence_is_provable(network)

    def test_refractory_timers_veto_the_jump(self):
        network = build_network()
        network.group("excitatory").refrac_remaining[0] = 1.0
        assert not silence_is_provable(network)

    def test_membrane_near_threshold_vetoes_the_jump(self):
        network = build_network()
        group = network.group("excitatory")
        group.v[:] = group.v_thresh - 1e-9
        assert not silence_is_provable(network)

    def test_advance_matches_stepping_on_silent_input(self):
        stepped, jumped = paired_networks()
        silent_row = np.zeros(N_INPUT, dtype=bool)
        # Charge both networks identically, then step out the unprovable
        # post-burst span in lockstep before comparing an analytic jump.
        burst = bursty_train(timesteps=6, bursts=1, burst_steps=3, p=0.9)
        for network in (stepped, jumped):
            for t, row in enumerate(burst):
                network._step(1.0, False, t, input_override=row)
        t = len(burst)
        while not silence_is_provable(jumped):
            for network in (stepped, jumped):
                network._step(1.0, False, t, input_override=silent_row)
            t += 1
            assert t < 200, "silence never became provable"
        for offset in range(30):
            stepped._step(1.0, False, t + offset, input_override=silent_row)
        advance_analytic(jumped, 30)
        exc_s, exc_j = stepped.group("excitatory"), jumped.group("excitatory")
        np.testing.assert_allclose(exc_j.v, exc_s.v, rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(exc_j.theta, exc_s.theta,
                                   rtol=1e-6, atol=1e-9)
        conn_s, conn_j = stepped.connections[0], jumped.connections[0]
        np.testing.assert_allclose(conn_j.conductance, conn_s.conductance,
                                   rtol=1e-6, atol=1e-9)


class TestRunEventsEquivalence:
    def test_counts_match_the_stepped_reference_exactly(self):
        stepped, events = paired_networks()
        train = bursty_train()
        reference = stepped.run_sample(train, learning=False)
        result = events.run_events(train, learning=False)
        np.testing.assert_array_equal(result.counts("excitatory"),
                                      reference.counts("excitatory"))
        assert events.counter.steps_skipped > len(train) // 2
        assert events.counter.events_processed == int(train.sum())

    def test_event_stream_and_dense_inputs_agree(self):
        first, second = paired_networks()
        train = bursty_train()
        a = first.run_events(EventStream.from_dense(train), learning=False)
        b = second.run_events(train, learning=False)
        np.testing.assert_array_equal(a.counts("excitatory"),
                                      b.counts("excitatory"))

    def test_include_rest_matches_the_stepped_reference(self):
        stepped, events = paired_networks()
        train = bursty_train()
        reference = stepped.run_sample(train, learning=False,
                                       include_rest=True)
        result = events.run_events(train, learning=False, include_rest=True)
        assert result.steps == reference.steps
        np.testing.assert_array_equal(result.counts("excitatory"),
                                      reference.counts("excitatory"))

    def test_batched_inputs_return_one_result_per_sample(self):
        network = build_network()
        trains = np.stack([bursty_train(seed=s) for s in (1, 2)])
        results = network.run_events(trains, learning=False)
        assert len(results) == 2
        streams = [EventStream.from_dense(t) for t in trains]
        listed = network.run_events(streams, learning=False)
        assert len(listed) == 2

    def test_run_events_rejects_active_batch_mode(self):
        network = build_network()
        network._begin_batch(2)
        try:
            with pytest.raises(RuntimeError, match="single-sample"):
                network.run_events(EventStream.empty(10, N_INPUT))
        finally:
            network._end_batch()

    def test_monitors_force_full_stepping(self):
        network = build_network()
        network.add_spike_monitor(SpikeMonitor(network.group("excitatory")))
        network.run_events(bursty_train(), learning=False)
        assert network.counter.steps_skipped == 0

    def test_unsupporting_backend_defaults_to_stepping(self):
        network = build_network(backend="dense")
        train = bursty_train()
        network.run_events(train, learning=False)
        assert network.counter.steps_skipped == 0
        # ... but the caller can force jumps explicitly.
        network.run_events(train, learning=False, allow_jumps=True)
        assert network.counter.steps_skipped > 0


class TestRunEventsLearning:
    def test_pairwise_stdp_learns_identically_through_jumps(self):
        stepped, events = paired_networks(rule_factory=PairwiseSTDP)
        train = bursty_train()
        stepped.run_sample(train, learning=True)
        events.run_events(train, learning=True)
        assert events.counter.steps_skipped > 0
        np.testing.assert_array_equal(events.connections[0].weights,
                                      stepped.connections[0].weights)

    @pytest.mark.parametrize("rule_factory", [ASPLearningRule,
                                              SpikeDynLearningRule])
    def test_per_step_rules_force_stepping_and_stay_exact(self, rule_factory):
        stepped, events = paired_networks(rule_factory=rule_factory)
        train = bursty_train()
        stepped.run_sample(train, learning=True)
        events.run_events(train, learning=True)
        assert events.counter.steps_skipped == 0
        np.testing.assert_array_equal(events.connections[0].weights,
                                      stepped.connections[0].weights)

    def test_silence_support_declarations(self):
        assert PairwiseSTDP.supports_analytic_silence is True
        assert ASPLearningRule.supports_analytic_silence is False
        assert SpikeDynLearningRule.supports_analytic_silence is False


class TestZeroSpikeInputs:
    def test_empty_stream_is_one_jump(self):
        network = build_network()
        result = network.run_events(EventStream.empty(500, N_INPUT))
        assert result.counts("excitatory").sum() == 0
        assert network.counter.steps_skipped == 500
        assert network.counter.events_processed == 0

    def test_empty_stream_matches_stepped_silence(self):
        stepped, events = paired_networks()
        silent = np.zeros((200, N_INPUT), dtype=bool)
        reference = stepped.run_sample(silent, learning=False)
        result = events.run_events(EventStream.empty(200, N_INPUT))
        np.testing.assert_array_equal(result.counts("excitatory"),
                                      reference.counts("excitatory"))

"""Tests for the weight-matrix builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.snn.topology import (
    all_to_all_except_self_weights,
    dense_random_weights,
    lateral_inhibition_weights,
    one_to_one_weights,
)


class TestDenseRandomWeights:
    def test_shape(self):
        assert dense_random_weights(5, 7, rng=0).shape == (5, 7)

    def test_values_within_bounds(self):
        weights = dense_random_weights(20, 20, low=0.1, high=0.4, rng=0)
        assert weights.min() >= 0.1
        assert weights.max() <= 0.4

    def test_deterministic_for_seed(self):
        np.testing.assert_array_equal(
            dense_random_weights(4, 4, rng=3), dense_random_weights(4, 4, rng=3)
        )

    def test_different_seeds_differ(self):
        a = dense_random_weights(4, 4, rng=1)
        b = dense_random_weights(4, 4, rng=2)
        assert not np.array_equal(a, b)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            dense_random_weights(2, 2, low=0.5, high=0.1)

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            dense_random_weights(0, 2)


class TestOneToOneWeights:
    def test_diagonal_value(self):
        weights = one_to_one_weights(4, 22.5)
        np.testing.assert_allclose(np.diag(weights), 22.5)

    def test_off_diagonal_is_zero(self):
        weights = one_to_one_weights(4, 22.5)
        off_diagonal = weights[~np.eye(4, dtype=bool)]
        np.testing.assert_allclose(off_diagonal, 0.0)

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            one_to_one_weights(4, -1.0)


class TestAllToAllExceptSelf:
    def test_zero_diagonal(self):
        weights = all_to_all_except_self_weights(5, 17.0)
        np.testing.assert_allclose(np.diag(weights), 0.0)

    def test_uniform_off_diagonal(self):
        weights = all_to_all_except_self_weights(5, 17.0)
        off_diagonal = weights[~np.eye(5, dtype=bool)]
        np.testing.assert_allclose(off_diagonal, 17.0)

    def test_nonzero_count(self):
        weights = all_to_all_except_self_weights(6, 1.0)
        assert np.count_nonzero(weights) == 6 * 5

    def test_lateral_inhibition_alias(self):
        np.testing.assert_array_equal(
            lateral_inhibition_weights(4, 2.0),
            all_to_all_except_self_weights(4, 2.0),
        )

"""Tests for the neuron group models (input, LIF, adaptive LIF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.snn.neurons import AdaptiveLIFGroup, InputGroup, LIFGroup, NeuronGroup
from repro.snn.simulation import OperationCounter


class TestNeuronGroupBase:
    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            NeuronGroup(0)

    def test_spike_vector_starts_empty(self):
        group = NeuronGroup(4)
        assert group.spikes.shape == (4,)
        assert not group.spikes.any()

    def test_step_is_abstract(self):
        group = NeuronGroup(2)
        with pytest.raises(NotImplementedError):
            group.step(np.zeros(2), 1.0)


class TestInputGroup:
    def test_replays_loaded_train(self):
        group = InputGroup(3)
        train = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1]], dtype=bool)
        group.set_spike_train(train)
        for expected in train:
            spikes = group.step(np.zeros(3), 1.0)
            np.testing.assert_array_equal(spikes, expected)

    def test_silent_after_train_is_exhausted(self):
        group = InputGroup(2)
        group.set_spike_train(np.ones((1, 2), dtype=bool))
        group.step(np.zeros(2), 1.0)
        assert not group.step(np.zeros(2), 1.0).any()

    def test_silent_without_a_train(self):
        group = InputGroup(2)
        assert not group.step(np.zeros(2), 1.0).any()

    def test_remaining_steps(self):
        group = InputGroup(2)
        assert group.remaining_steps == 0
        group.set_spike_train(np.zeros((5, 2), dtype=bool))
        assert group.remaining_steps == 5
        group.step(np.zeros(2), 1.0)
        assert group.remaining_steps == 4

    def test_set_spike_train_validates_shape(self):
        group = InputGroup(3)
        with pytest.raises(ValueError):
            group.set_spike_train(np.zeros((4, 2), dtype=bool))
        with pytest.raises(ValueError):
            group.set_spike_train(np.zeros(3, dtype=bool))

    def test_clear_spike_train(self):
        group = InputGroup(2)
        group.set_spike_train(np.ones((3, 2), dtype=bool))
        group.clear_spike_train()
        assert group.remaining_steps == 0
        assert not group.step(np.zeros(2), 1.0).any()

    def test_reset_rewinds_cursor(self):
        group = InputGroup(2)
        train = np.array([[1, 1], [0, 0]], dtype=bool)
        group.set_spike_train(train)
        group.step(np.zeros(2), 1.0)
        group.reset_state()
        np.testing.assert_array_equal(group.step(np.zeros(2), 1.0), train[0])

    def test_full_reset_drops_train(self):
        group = InputGroup(2)
        group.set_spike_train(np.ones((3, 2), dtype=bool))
        group.reset_state(full=True)
        assert group.remaining_steps == 0

    def test_reset_does_not_corrupt_the_loaded_train(self):
        """Regression test: resetting must not zero the replayed train row
        through the spike-vector alias."""
        group = InputGroup(2)
        train = np.ones((2, 2), dtype=bool)
        group.set_spike_train(train)
        group.step(np.zeros(2), 1.0)
        group.reset_state()
        np.testing.assert_array_equal(group.step(np.zeros(2), 1.0), [True, True])

    def test_no_persistent_parameters(self):
        assert InputGroup(10).parameter_count == 0


class TestLIFGroup:
    def make_group(self, n=3, **kwargs) -> LIFGroup:
        defaults = dict(v_rest=-65.0, v_reset=-65.0, v_thresh=-52.0,
                        tau_m=100.0, refractory=5.0)
        defaults.update(kwargs)
        return LIFGroup(n, **defaults)

    def test_initial_potential_is_resting(self):
        group = self.make_group()
        np.testing.assert_allclose(group.v, -65.0)

    def test_parameter_count(self):
        assert self.make_group(n=7).parameter_count == 14

    def test_threshold_must_exceed_reset(self):
        with pytest.raises(ValueError):
            LIFGroup(2, v_reset=-50.0, v_thresh=-60.0)

    def test_step_validates_input_shape(self):
        group = self.make_group(n=3)
        with pytest.raises(ValueError):
            group.step(np.zeros(4), 1.0)

    def test_membrane_integrates_input(self):
        group = self.make_group()
        group.step(np.full(3, 1.0), 1.0)
        assert np.all(group.v > -65.0)

    def test_membrane_decays_towards_rest(self):
        group = self.make_group(tau_m=10.0)
        group.v[:] = -55.0
        group.step(np.zeros(3), 1.0)
        assert np.all(group.v < -55.0)
        assert np.all(group.v > -65.0)

    def test_strong_input_elicits_spike_and_reset(self):
        group = self.make_group()
        spikes = group.step(np.full(3, 100.0), 1.0)
        assert spikes.all()
        np.testing.assert_allclose(group.v, group.v_reset)

    def test_refractory_period_blocks_integration(self):
        group = self.make_group(refractory=5.0)
        group.step(np.full(3, 100.0), 1.0)           # spike -> refractory
        spikes = group.step(np.full(3, 100.0), 1.0)  # still refractory
        assert not spikes.any()
        np.testing.assert_allclose(group.v, group.v_rest, atol=1e-9)

    def test_zero_refractory_allows_consecutive_spikes(self):
        group = self.make_group(refractory=0.0)
        assert group.step(np.full(3, 100.0), 1.0).all()
        assert group.step(np.full(3, 100.0), 1.0).all()

    def test_refractory_expires(self):
        group = self.make_group(refractory=2.0)
        group.step(np.full(3, 100.0), 1.0)
        group.step(np.zeros(3), 1.0)
        group.step(np.zeros(3), 1.0)
        spikes = group.step(np.full(3, 100.0), 1.0)
        assert spikes.all()

    def test_counter_accounting(self):
        group = self.make_group(n=4)
        counter = OperationCounter()
        group.step(np.full(4, 100.0), 1.0, counter)
        assert counter.neuron_updates == 4
        assert counter.exponential_ops == 4
        assert counter.spike_events == 4

    def test_reset_state(self):
        group = self.make_group()
        group.step(np.full(3, 100.0), 1.0)
        group.reset_state()
        np.testing.assert_allclose(group.v, group.v_rest)
        assert np.all(group.refrac_remaining == 0.0)
        assert not group.spikes.any()


class TestAdaptiveLIFGroup:
    def make_group(self, n=3, **kwargs) -> AdaptiveLIFGroup:
        defaults = dict(theta_plus=0.5, tau_theta=100.0, refractory=0.0)
        defaults.update(kwargs)
        return AdaptiveLIFGroup(n, **defaults)

    def test_parameter_count_includes_theta(self):
        assert self.make_group(n=5).parameter_count == 15

    def test_initial_threshold(self):
        group = self.make_group(theta_init=1.0)
        np.testing.assert_allclose(group.firing_threshold(), group.v_thresh + 1.0)

    def test_theta_grows_on_spikes(self):
        group = self.make_group()
        group.step(np.full(3, 100.0), 1.0)
        assert np.all(group.theta > 0.0)

    def test_theta_decays_without_spikes(self):
        group = self.make_group(tau_theta=10.0)
        group.theta[:] = 1.0
        group.step(np.zeros(3), 1.0)
        assert np.all(group.theta < 1.0)
        assert np.all(group.theta > 0.0)

    def test_theta_raises_effective_threshold(self):
        group = self.make_group(theta_plus=5.0)
        # A current that spikes a fresh neuron but not one with elevated theta.
        current = np.full(3, 14.0)
        assert group.step(current, 1.0).all()
        assert not group.step(current, 1.0).all()

    def test_adaptation_can_be_disabled(self):
        group = self.make_group()
        group.adapt_theta = False
        group.step(np.full(3, 100.0), 1.0)
        np.testing.assert_allclose(group.theta, 0.0)

    def test_theta_decay_rate_property(self):
        group = self.make_group(tau_theta=200.0)
        assert group.theta_decay_rate == pytest.approx(1.0 / 200.0)

    def test_partial_reset_keeps_theta(self):
        group = self.make_group()
        group.step(np.full(3, 100.0), 1.0)
        theta_before = group.theta.copy()
        group.reset_state(full=False)
        np.testing.assert_array_equal(group.theta, theta_before)

    def test_full_reset_restores_theta_init(self):
        group = self.make_group(theta_init=0.25)
        group.step(np.full(3, 100.0), 1.0)
        group.reset_state(full=True)
        np.testing.assert_allclose(group.theta, 0.25)

    def test_counter_counts_theta_update(self):
        group = self.make_group(n=2)
        counter = OperationCounter()
        group.step(np.zeros(2), 1.0, counter)
        # One membrane update + one theta update per neuron.
        assert counter.neuron_updates == 4
        assert counter.exponential_ops == 4

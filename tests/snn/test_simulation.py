"""Tests for simulation parameters and the operation counter."""

from __future__ import annotations

import pytest

from repro.snn.simulation import OperationCounter, SimulationParameters


class TestSimulationParameters:
    def test_paper_defaults(self):
        params = SimulationParameters()
        assert params.dt == 1.0
        assert params.t_sim == 350.0
        assert params.t_rest == 150.0

    def test_steps_per_sample(self):
        params = SimulationParameters(dt=1.0, t_sim=350.0)
        assert params.steps_per_sample == 350

    def test_steps_per_sample_with_coarse_dt(self):
        params = SimulationParameters(dt=2.0, t_sim=100.0)
        assert params.steps_per_sample == 50

    def test_rest_steps(self):
        params = SimulationParameters(dt=1.0, t_rest=150.0)
        assert params.rest_steps == 150

    def test_zero_rest_is_allowed(self):
        assert SimulationParameters(t_rest=0.0).rest_steps == 0

    def test_rejects_negative_rest(self):
        with pytest.raises(ValueError):
            SimulationParameters(t_rest=-1.0)

    def test_rejects_non_positive_dt(self):
        with pytest.raises(ValueError):
            SimulationParameters(dt=0.0)

    def test_rejects_presentation_shorter_than_timestep(self):
        with pytest.raises(ValueError):
            SimulationParameters(dt=5.0, t_sim=2.0)


class TestOperationCounter:
    def test_starts_at_zero(self):
        counter = OperationCounter()
        assert counter.total_ops() == 0
        assert all(value == 0 for value in counter.as_dict().values())

    def test_add_increments_named_counters(self):
        counter = OperationCounter()
        counter.add(neuron_updates=3, synaptic_events=5)
        assert counter.neuron_updates == 3
        assert counter.synaptic_events == 5

    def test_add_accumulates(self):
        counter = OperationCounter()
        counter.add(weight_updates=2)
        counter.add(weight_updates=4)
        assert counter.weight_updates == 6

    def test_add_unknown_counter_raises(self):
        counter = OperationCounter()
        with pytest.raises(AttributeError):
            counter.add(made_up_counter=1)

    def test_total_ops_excludes_spike_events(self):
        counter = OperationCounter(neuron_updates=1, synaptic_events=2,
                                   exponential_ops=3, trace_updates=4,
                                   weight_updates=5, spike_events=100)
        assert counter.total_ops() == 15

    def test_total_ops_excludes_event_engine_tallies(self):
        # events_processed / steps_skipped attribute savings, they are not
        # compute work; total_ops must not change when they do.
        counter = OperationCounter(neuron_updates=1, events_processed=50,
                                   steps_skipped=900)
        assert counter.total_ops() == 1

    def test_event_tallies_survive_arithmetic_and_round_trip(self):
        a = OperationCounter(events_processed=5, steps_skipped=100)
        b = OperationCounter(events_processed=2, steps_skipped=40)
        assert (a + b).events_processed == 7
        assert (a - b).steps_skipped == 60
        rebuilt = OperationCounter(**a.as_dict())
        assert rebuilt == a

    def test_reset(self):
        counter = OperationCounter(neuron_updates=10)
        counter.reset()
        assert counter.neuron_updates == 0
        assert counter.total_ops() == 0

    def test_copy_is_independent(self):
        counter = OperationCounter(neuron_updates=1)
        duplicate = counter.copy()
        duplicate.add(neuron_updates=5)
        assert counter.neuron_updates == 1
        assert duplicate.neuron_updates == 6

    def test_addition(self):
        a = OperationCounter(neuron_updates=1, weight_updates=2)
        b = OperationCounter(neuron_updates=3, trace_updates=4)
        merged = a + b
        assert merged.neuron_updates == 4
        assert merged.weight_updates == 2
        assert merged.trace_updates == 4

    def test_subtraction(self):
        a = OperationCounter(neuron_updates=10, synaptic_events=7)
        b = OperationCounter(neuron_updates=4, synaptic_events=2)
        delta = a - b
        assert delta.neuron_updates == 6
        assert delta.synaptic_events == 5

    def test_addition_with_other_types_is_not_implemented(self):
        counter = OperationCounter()
        with pytest.raises(TypeError):
            counter + 3  # noqa: B018 - the error is the point

    def test_as_dict_round_trip(self):
        counter = OperationCounter(neuron_updates=2, spike_events=9)
        rebuilt = OperationCounter(**counter.as_dict())
        assert rebuilt == counter

"""Shared fixtures for the benchmark harness.

Every benchmark module reproduces one table or figure of the SpikeDyn paper
(see DESIGN.md section 4 for the experiment index).  The benchmarks run the
experiment drivers from :mod:`repro.experiments` at two scales:

* ``bench_scale`` — a seconds-per-experiment scale used for the timed
  benchmark body, so the whole harness completes in a few minutes;
* ``energy_scale`` — a slightly larger scale used by the energy/memory
  benchmarks, where the relative savings of eliminating the inhibitory layer
  only become visible once the excitatory layer is not dwarfed by the input
  projection.

Run with ``pytest benchmarks/ --benchmark-only``.  Add ``-s`` to also see the
reproduced paper tables that each benchmark prints.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """Seconds-scale experiment settings shared by the accuracy benchmarks."""
    return ExperimentScale.tiny()


@pytest.fixture(scope="session")
def energy_scale() -> ExperimentScale:
    """Larger networks (paper image size) for the energy/memory benchmarks.

    Only a couple of sample presentations are needed per model, so the larger
    sizes stay cheap while making the inhibitory-layer overhead visible.
    """
    return ExperimentScale.tiny(
        image_size=28,
        network_sizes=(100, 200),
        t_sim=100.0,
    )

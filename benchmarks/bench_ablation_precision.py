"""Bit-precision ablation — the BP knob of the analytical memory model.

The paper's memory model charges every parameter ``BP`` bits; this benchmark
sweeps the deployed precision of a trained SpikeDyn model and reports the
memory saving together with the accuracy on a held-out evaluation set, making
the memory/accuracy trade-off behind the BP choice explicit.
"""

from __future__ import annotations

import numpy as np

from repro.core.quantization import quantize_model_weights
from repro.evaluation.reporting import format_table
from repro.experiments.common import build_model, default_digit_source


def test_precision_sweep(benchmark, bench_scale):
    """Accuracy and memory across deployed bit precisions."""
    def run():
        scale = bench_scale
        classes = list(scale.class_sequence)
        rows = []
        for bits in (32, 8, 4, 2, 1):
            model = build_model("spikedyn", scale.config(max(scale.network_sizes)))
            source = default_digit_source(scale)
            rng = np.random.default_rng(scale.seed)

            for digit in classes:
                for image in source.generate(digit, scale.samples_per_task, rng=rng):
                    model.train_sample(image)
            report = quantize_model_weights(model, bits)

            assign_images, assign_labels, eval_images, eval_labels = [], [], [], []
            for digit in classes:
                for image in source.generate(digit, scale.eval_samples_per_class,
                                             rng=rng):
                    assign_images.append(image)
                    assign_labels.append(digit)
                for image in source.generate(digit, scale.eval_samples_per_class,
                                             rng=rng):
                    eval_images.append(image)
                    eval_labels.append(digit)
            model.assign_labels(assign_images, assign_labels)
            accuracy = model.evaluate_accuracy(eval_images, eval_labels)
            rows.append((bits, report.memory_bytes / 1024.0,
                         report.memory_saving, accuracy, report.rms_error))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Bit-precision ablation (SpikeDyn, deployed precision sweep)")
    print(format_table(
        ["bits", "memory_KB", "memory_saving", "accuracy", "rms_error"],
        [list(row) for row in rows],
    ))

    by_bits = {row[0]: row for row in rows}
    # Memory shrinks linearly with the precision.
    assert by_bits[8][1] < by_bits[32][1]
    assert by_bits[1][1] < by_bits[4][1]
    assert by_bits[8][2] == 0.75
    # The quantization perturbation grows as the precision shrinks.
    assert by_bits[1][4] >= by_bits[4][4] >= by_bits[8][4]
    # Accuracy values are valid fractions at every precision.
    assert all(0.0 <= row[3] <= 1.0 for row in rows)

"""Batched-engine throughput: ``run_batch`` vs a sequential ``run_sample`` loop.

The batched simulation engine advances ``B`` independent samples per
vectorized step; amortizing the per-timestep Python dispatch over the batch
is where the wall-clock win comes from.  This module both benchmarks the two
paths and *asserts* the headline claim: at ``B = 32``, batched inference is
at least 3x faster than the equivalent sequential loop while producing
bit-for-bit identical spike counts.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.spikedyn_model import SpikeDynModel

BATCH_SIZE = 32

#: Wall-clock advantage the batched path must demonstrate at ``B = 32``.
MIN_SPEEDUP = 3.0


def _make_model_and_trains(n_exc: int = 40, t_sim: float = 50.0):
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=n_exc,
                                        t_sim=t_sim, seed=0)
    model = SpikeDynModel(config)
    source = SyntheticDigits(image_size=14, seed=0)
    images = source.generate(3, BATCH_SIZE, rng=0)
    trains = model.encode_batch(images)
    return model, trains


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_inference_speedup_at_b32():
    """Batched inference is >= 3x faster than sequential and bit-identical."""
    model, trains = _make_model_and_trains()
    network = model.network

    # Correctness first: identical spike counts from both paths.  Sequential
    # presentations carry threshold-adaptation drift between samples; freeze
    # it so both paths present independent samples.
    network.group("excitatory").adapt_theta = False
    sequential_results = [network.run_sample(train, learning=False)
                          for train in trains]
    batched_results = network.run_batch(trains, learning=False)
    for seq, bat in zip(sequential_results, batched_results):
        np.testing.assert_array_equal(seq.counts("excitatory"),
                                      bat.counts("excitatory"))

    sequential_s = _best_of(lambda: [network.run_sample(t, learning=False)
                                     for t in trains])
    batched_s = _best_of(lambda: network.run_batch(trains, learning=False))
    speedup = sequential_s / batched_s
    print(f"\nsequential {sequential_s * 1e3:8.1f} ms   "
          f"batched {batched_s * 1e3:8.1f} ms   speedup {speedup:4.1f}x "
          f"(B={BATCH_SIZE})")
    assert speedup >= MIN_SPEEDUP, (
        f"batched inference at B={BATCH_SIZE} is only {speedup:.1f}x faster "
        f"than sequential (required: >= {MIN_SPEEDUP}x)"
    )


def test_batched_inference_timing(benchmark):
    """pytest-benchmark timing of the batched path (for the harness report)."""
    model, trains = _make_model_and_trains()
    benchmark.pedantic(
        lambda: model.network.run_batch(trains, learning=False),
        rounds=3,
        iterations=1,
    )


def test_sequential_inference_timing(benchmark):
    """pytest-benchmark timing of the sequential loop (comparison partner)."""
    model, trains = _make_model_and_trains()
    benchmark.pedantic(
        lambda: [model.network.run_sample(train, learning=False)
                 for train in trains],
        rounds=3,
        iterations=1,
    )

"""Fig. 6 — impact of the weight-decay rate and the adaptation potential on
the accuracy of learning new tasks in a dynamic scenario."""

from __future__ import annotations

from repro.experiments import run_decay_theta_sweep


def test_fig06_decay_and_theta_sweep(benchmark, bench_scale):
    """Sweep w_decay and the adaptation-potential scale (Fig. 6)."""
    result = benchmark.pedantic(
        run_decay_theta_sweep,
        kwargs={
            "scale": bench_scale,
            "w_decay_values": (None, 1e-1, 1e-2, 1e-3),
            "theta_scales": (1.0, 0.3, 0.1),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    # The paper's slice-style sweep: every decay at theta=1, then the
    # remaining theta scales at the selected decay -> 4 + 2 points.
    assert len(result.points) == 6
    labels = [point.label for point in result.points]
    assert len(set(labels)) == len(labels), "sweep points must be unique"
    for point in result.points:
        assert 0.0 <= point.mean_recent_accuracy <= 1.0
    best = result.best_point()
    assert best.mean_recent_accuracy >= max(
        point.mean_recent_accuracy for point in result.points
    ) - 1e-12

"""Event-queue engine: cost proportional to spike events, not timesteps.

The tentpole claim of the event-driven path: on long-horizon, low-rate
workloads (T >= 1000 steps, <= 1% input spike density, DVS-style bursts
separated by long silent gaps), ``Network.run_events`` on the ``eventqueue``
backend must be

* **equivalent** — excitatory spike counts bit-equal to the stepped sparse
  reference on every sample, and the derived predictions identical (jumped
  steps are *provably* silent, so no spike can be missed);
* **fast** — at least 3x quicker end-to-end than stepping the same streams
  through the sparse backend's clock-driven ``run_sample`` loop.

The equivalence half always runs; like the other throughput gates in this
directory, the wall-clock half is measured best-of-3.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.models.spikedyn_model import SpikeDynModel
from repro.snn.events import EventStream

#: Long-horizon geometry: 28x28 inputs, N100, T >= 1000 as the claim states.
N_INPUT = 784
N_EXC = 100
TIMESTEPS = 1200
N_STREAMS = 6

#: Burst structure of the workload (events arrive in short global windows).
N_BURSTS = 6
BURST_STEPS = 8
BURST_DENSITY = 0.2

#: Wall-clock advantage the event engine must demonstrate.
MIN_SPEEDUP = 3.0

#: Density ceiling the claim is made at.
MAX_DENSITY = 0.01


def _make_network(backend: str):
    config = SpikeDynConfig.scaled_down(
        n_input=N_INPUT, n_exc=N_EXC, t_sim=float(TIMESTEPS),
        seed=0, backend=backend,
    )
    return SpikeDynModel(config).network


def _event_streams() -> list:
    """Bursty DVS-style streams: a few active windows, long silent gaps."""
    rng = np.random.default_rng(99)
    spacing = TIMESTEPS // N_BURSTS
    streams = []
    for _ in range(N_STREAMS):
        times, channels = [], []
        for b in range(N_BURSTS):
            window = rng.random((BURST_STEPS, N_INPUT)) < BURST_DENSITY
            offset, channel = np.nonzero(window)
            times.append(b * spacing + offset)
            channels.append(channel)
        stream = EventStream(
            times=np.concatenate(times), channels=np.concatenate(channels),
            n_steps=TIMESTEPS, n_channels=N_INPUT,
        )
        assert stream.density <= MAX_DENSITY, (
            f"workload density {stream.density:.4f} exceeds the "
            f"{MAX_DENSITY:.0%} regime the claim is made at"
        )
        streams.append(stream)
    return streams


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_eventqueue_equivalence_and_speedup_on_long_horizons():
    """Counts bit-equal to stepped sparse; >= 3x faster at <= 1% density."""
    streams = _event_streams()
    stepped_net = _make_network("sparse")
    event_net = _make_network("eventqueue")

    # Correctness first, on every stream: the event engine must reproduce
    # the stepped reference's excitatory counts exactly.
    event_counts = []
    for stream in streams:
        reference = stepped_net.run_sample(stream.to_dense(), learning=False)
        result = event_net.run_events(stream, learning=False)
        np.testing.assert_array_equal(
            result.counts("excitatory"), reference.counts("excitatory"),
            err_msg="event engine diverged from the stepped reference",
        )
        event_counts.append(result.counts("excitatory"))
    assert event_net.counter.steps_skipped > 0, (
        "the event engine never jumped a silent gap on a <= 1% workload"
    )
    total_events = sum(stream.n_events for stream in streams)
    assert event_net.counter.events_processed == total_events

    def run_stepped():
        for stream in streams:
            stepped_net.run_sample(stream.to_dense(), learning=False)

    def run_events():
        for stream in streams:
            event_net.run_events(stream, learning=False)

    stepped_s = _best_of(run_stepped)
    event_s = _best_of(run_events)
    speedup = stepped_s / event_s
    density = float(np.mean([stream.density for stream in streams]))
    print(f"\nstepped {stepped_s * 1e3:8.1f} ms   events "
          f"{event_s * 1e3:8.1f} ms   speedup {speedup:4.2f}x "
          f"(T={TIMESTEPS}, density={density:.3%})")
    assert speedup >= MIN_SPEEDUP, (
        f"event engine at {density:.2%} density over T={TIMESTEPS} is only "
        f"{speedup:.2f}x faster than stepping (required: >= {MIN_SPEEDUP}x)"
    )


def test_eventqueue_predictions_match_the_stepped_reference():
    """Model-level: assignments + predictions identical on both paths."""
    streams = _event_streams()[:3]
    config = SpikeDynConfig.scaled_down(
        n_input=N_INPUT, n_exc=N_EXC, t_sim=float(TIMESTEPS),
        seed=1, backend="eventqueue",
    )
    stepped_model = SpikeDynModel(config)
    event_model = SpikeDynModel(config)

    from repro.evaluation.labeling import (
        assign_neuron_labels,
        predict_from_responses,
    )

    stepped = np.stack([
        stepped_model.network.run_sample(s.to_dense(), learning=False)
        .counts("excitatory") for s in streams
    ])
    events = np.stack([event_model.respond_events(s) for s in streams])
    labels = np.arange(len(streams))
    assignments = assign_neuron_labels(stepped, labels, 10)
    np.testing.assert_array_equal(
        predict_from_responses(events, assignments, 10),
        predict_from_responses(stepped, assignments, 10),
    )

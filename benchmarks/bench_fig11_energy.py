"""Fig. 11 — training and inference energy of baseline / ASP / SpikeDyn,
normalized to the baseline, across network sizes and GPUs."""

from __future__ import annotations

from repro.experiments import run_energy_comparison


def test_fig11_normalized_energy(benchmark, energy_scale):
    """SpikeDyn consumes less energy than both comparison partners (Fig. 11)."""
    result = benchmark.pedantic(
        run_energy_comparison,
        kwargs={"scale": energy_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for device, per_network in result.normalized_training.items():
        for label, per_model in per_network.items():
            inference = result.normalized_inference[device][label]
            assert per_model["baseline"] == 1.0
            assert inference["baseline"] == 1.0
            # The paper's headline orderings: ASP adds an overhead over the
            # baseline, SpikeDyn undercuts both, in both phases.
            assert per_model["asp"] > per_model["baseline"]
            assert per_model["spikedyn"] < per_model["baseline"]
            assert inference["spikedyn"] < inference["baseline"]
            assert inference["spikedyn"] < inference["asp"]

    savings = result.savings_vs("asp")
    print(f"mean savings of SpikeDyn vs ASP: {savings}")
    assert savings["training"] > 0.0
    assert savings["inference"] > 0.0

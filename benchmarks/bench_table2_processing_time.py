"""Table II — SpikeDyn processing time on the full MNIST dataset,
extrapolated from per-sample operation counts for the three GPUs."""

from __future__ import annotations

from repro.experiments import run_processing_time_study


def test_table2_processing_time(benchmark, energy_scale):
    """Training/inference hours and per-image latency per device (Table II)."""
    study = benchmark.pedantic(
        run_processing_time_study,
        kwargs={"scale": energy_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(study.to_text())

    devices = ("Jetson Nano", "GTX 1080 Ti", "RTX 2080 Ti")
    labels = energy_scale.network_labels
    for label in labels:
        for device in devices:
            training_hours = study.hours("training", device, label)
            inference_hours = study.hours("inference", device, label)
            assert training_hours > 0.0
            assert inference_hours > 0.0
            # Training processes 6x more samples than inference, so the
            # training phase always dominates (paper Table II shape).
            assert training_hours > inference_hours

    # The embedded GPU is the slowest, the RTX 2080 Ti the fastest — for every
    # network size and phase (Table II column ordering).
    for label in labels:
        for process in ("training", "inference"):
            nano = study.hours(process, "Jetson Nano", label)
            gtx = study.hours(process, "GTX 1080 Ti", label)
            rtx = study.hours(process, "RTX 2080 Ti", label)
            assert nano > gtx > rtx

    # Larger networks take longer on every device.
    small, large = labels[0], labels[-1]
    for device in devices:
        assert study.hours("training", device, large) >= study.hours(
            "training", device, small
        )

"""Fig. 4 — memory and energy savings of the direct-lateral-inhibition
architecture, and its accuracy-profile parity with the baseline architecture."""

from __future__ import annotations

from repro.experiments import run_architecture_reduction
from repro.experiments.fig04_architecture import (
    LABEL_BASELINE_ARCH,
    LABEL_OPTIMIZED_ARCH,
)


def test_fig04_memory_and_energy_savings(benchmark, energy_scale):
    """The optimized architecture saves memory and inference energy (Fig. 4b,c)."""
    result = benchmark.pedantic(
        run_architecture_reduction,
        kwargs={"scale": energy_scale, "include_accuracy_profile": False},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for label in energy_scale.network_labels:
        assert result.memory_savings(label) > 0.0
        assert result.energy_savings(label) > 0.0
        # The savings grow with the network size because the eliminated
        # inhibitory layer scales quadratically with n_exc.
    labels = list(energy_scale.network_labels)
    assert result.memory_savings(labels[-1]) >= result.memory_savings(labels[0])


def test_fig04_accuracy_profile_parity(benchmark, bench_scale):
    """Both architectures, trained with the same STDP rule, reach a similar
    accuracy profile in the dynamic scenario (Fig. 4d)."""
    result = benchmark.pedantic(
        run_architecture_reduction,
        kwargs={"scale": bench_scale, "include_accuracy_profile": True},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    baseline_profile = result.accuracy_profiles[LABEL_BASELINE_ARCH]
    optimized_profile = result.accuracy_profiles[LABEL_OPTIMIZED_ARCH]
    assert list(baseline_profile.class_sequence) == list(optimized_profile.class_sequence)
    for task in baseline_profile.class_sequence:
        assert 0.0 <= optimized_profile.final_task_accuracy[task] <= 1.0

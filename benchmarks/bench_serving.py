"""Serving throughput: micro-batched replica pool vs per-request sequential.

Drives the in-process serving stack (no HTTP, so the measurement isolates
the batching win from socket noise) at concurrency 32 against two
deployments of the same artifact:

* **sequential** — ``max_batch=1``: every request is its own engine call,
  the classic request-per-inference serving shape;
* **micro-batched** — ``max_batch=32``: concurrent requests coalesce into
  one ``Network.run_batch`` call.

Both must return bit-identical predictions (each equal to the offline
batched eval path), and the micro-batched deployment must be **>= 3x**
faster — the acceptance criterion of the serving subsystem.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving import (
    ReplicaPool,
    load_artifact,
    offline_predictions,
    pool_sender,
    run_load,
)

CONCURRENCY = 32
N_REQUESTS = 64

#: Throughput advantage micro-batching must demonstrate at concurrency 32.
MIN_SPEEDUP = 3.0


def _make_artifact_and_requests(tmp_dir: str, n_exc: int = 40,
                                t_sim: float = 50.0):
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=n_exc,
                                        t_sim=t_sim, seed=0)
    artifact = load_artifact(SpikeDynModel(config).save(tmp_dir))
    source = SyntheticDigits(image_size=14, seed=0)
    images = [np.asarray(image, dtype=float)
              for image in source.generate(3, N_REQUESTS, rng=0)]
    seeds = list(range(N_REQUESTS))
    return artifact, images, seeds


def _drive(artifact, images, seeds, max_batch: int):
    # from_artifact builds an independent replica per worker, so this stays
    # correct if the worker count is ever raised.
    pool = ReplicaPool.from_artifact(artifact, workers=1,
                                     max_batch=max_batch, max_wait_ms=5.0,
                                     max_queue=4 * N_REQUESTS)
    with pool:
        return run_load(pool_sender(pool), images, seeds,
                        concurrency=CONCURRENCY)


def test_micro_batched_serving_speedup_at_c32():
    """Micro-batching is >= 3x sequential serving and prediction-identical."""
    with tempfile.TemporaryDirectory() as tmp:
        artifact, images, seeds = _make_artifact_and_requests(tmp)
        reference = offline_predictions(artifact.build_model(), images, seeds)

        sequential = _drive(artifact, images, seeds, max_batch=1)
        batched = _drive(artifact, images, seeds, max_batch=CONCURRENCY)

    assert sequential.errors == []
    assert batched.errors == []
    np.testing.assert_array_equal(sequential.predictions, reference)
    np.testing.assert_array_equal(batched.predictions, reference)

    speedup = batched.throughput_rps / sequential.throughput_rps
    print(f"\nsequential {sequential.throughput_rps:8.1f} req/s   "
          f"micro-batched {batched.throughput_rps:8.1f} req/s   "
          f"speedup {speedup:4.1f}x "
          f"(concurrency={CONCURRENCY}, n={N_REQUESTS})")
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batched serving at concurrency {CONCURRENCY} is only "
        f"{speedup:.1f}x faster than per-request sequential "
        f"(required: >= {MIN_SPEEDUP}x)"
    )


def test_micro_batched_serving_timing(benchmark):
    """pytest-benchmark timing of the micro-batched deployment."""
    with tempfile.TemporaryDirectory() as tmp:
        artifact, images, seeds = _make_artifact_and_requests(tmp)
        benchmark.pedantic(
            lambda: _drive(artifact, images, seeds, max_batch=CONCURRENCY),
            rounds=3,
            iterations=1,
        )


def test_sequential_serving_timing(benchmark):
    """pytest-benchmark timing of the per-request deployment (partner)."""
    with tempfile.TemporaryDirectory() as tmp:
        artifact, images, seeds = _make_artifact_and_requests(tmp)
        benchmark.pedantic(
            lambda: _drive(artifact, images, seeds, max_batch=1),
            rounds=3,
            iterations=1,
        )

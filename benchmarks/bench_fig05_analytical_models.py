"""Fig. 5 — validation of the analytical memory/energy models and the
exploration-time savings of the model-search algorithm."""

from __future__ import annotations

from repro.experiments import run_analytical_validation


def test_fig05_analytical_model_validation(benchmark, energy_scale):
    """Analytical estimates track the actual-run reference (Fig. 5a-c)."""
    result = benchmark.pedantic(
        run_analytical_validation,
        kwargs={"scale": energy_scale, "actual_run_samples": 2},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    assert result.rows, "the validation produced no rows"
    for row in result.rows:
        # The analytical memory model ignores only the transient simulation
        # state, so it always under-estimates and stays within a small margin
        # at paper-like layer sizes.
        assert row.analytical_memory_bytes <= row.actual_memory_bytes
        assert row.memory_error < 0.10
        # The energy model extrapolates from a single sample; sample-to-sample
        # Poisson variability keeps it within a modest band of the reference.
        assert row.training_energy_error < 0.25
        assert row.inference_energy_error < 0.25

    # Exploring with the analytical models is orders of magnitude faster than
    # actually running every configuration (Fig. 5d,e).
    assert result.exploration_speedup > 100.0


def test_fig05_memory_error_shrinks_with_network_size(benchmark, energy_scale):
    """The relative memory error decreases as the network grows (Fig. 5a)."""
    sizes = (50, 100, 200, 400)
    result = benchmark.pedantic(
        run_analytical_validation,
        kwargs={"scale": energy_scale, "network_sizes": sizes,
                "actual_run_samples": 1},
        rounds=1,
        iterations=1,
    )
    errors = [row.memory_error for row in result.rows]
    print()
    print("memory errors by n_exc:",
          {size: round(error, 4) for size, error in zip(sizes, errors)})
    assert errors == sorted(errors, reverse=True)
    # At the paper's N400 the analytical model is comfortably below 5 % error.
    assert errors[-1] < 0.05

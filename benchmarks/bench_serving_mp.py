"""Multi-process serving throughput: shard pool vs single-process pool.

The pure-Python simulation engine holds the GIL between numpy calls, so a
thread-based :class:`ReplicaPool` is pinned to roughly one core no matter
how many workers it runs.  :class:`ShardProcessPool` moves each worker into
its own OS process; this benchmark drives both deployments of the same
artifact at **concurrency 64** and gates on the multi-process speedup.

Method
------
Both pools are started (and the shard processes spawned and loaded) before
any clock runs, and each deployment serves one untimed warm-up pass, so the
measurement is steady-state serving only — no interpreter start-up, no
artifact loads, no first-batch effects.  ``max_batch`` is set well below the
request count so the queue always holds several batches and the shards can
actually run them concurrently.

Gate
----
Scaling requires cores.  On runners with >= 4 CPUs (the CI case) the shard
pool must be **>= 2x** the single-process pool; with 2-3 CPUs the bound
relaxes to the shard headroom available; on a single core the throughput
assertion is skipped outright — process shards cannot beat the GIL without
a second core — but the bit-equivalence assertions still run everywhere.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.spikedyn_model import SpikeDynModel
from repro.serving import (
    ReplicaPool,
    ShardProcessPool,
    load_artifact,
    offline_predictions,
    pool_sender,
    run_load,
)

CONCURRENCY = 64
N_REQUESTS = 64

#: Micro-batch bound — small enough that N_REQUESTS forms many batches,
#: so there is always shard-level parallelism to exploit.
MAX_BATCH = 8

#: Required multi-process speedup on a >= 4-core runner.
MIN_SPEEDUP = 2.0


def _shard_count() -> int:
    return max(1, min(4, os.cpu_count() or 1))


def _make_artifact_and_requests(tmp_dir: str):
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=40,
                                        t_sim=50.0, seed=0)
    artifact = load_artifact(SpikeDynModel(config).save(tmp_dir))
    source = SyntheticDigits(image_size=14, seed=0)
    images = [np.asarray(image, dtype=float)
              for image in source.generate(3, N_REQUESTS, rng=0)]
    seeds = list(range(N_REQUESTS))
    return artifact, images, seeds


def _steady_state_load(pool, images, seeds):
    """Warm-up pass, then the measured pass, against an already-started pool."""
    run_load(pool_sender(pool), images, seeds, concurrency=CONCURRENCY)
    return run_load(pool_sender(pool), images, seeds, concurrency=CONCURRENCY)


def test_multiprocess_serving_speedup_at_c64():
    """Shard pool >= 2x the single-process pool (cores permitting)."""
    shards = _shard_count()
    with tempfile.TemporaryDirectory() as tmp:
        artifact, images, seeds = _make_artifact_and_requests(tmp)
        reference = offline_predictions(artifact.build_model(), images, seeds)

        sp_pool = ReplicaPool.from_artifact(
            artifact, workers=shards, max_batch=MAX_BATCH, max_wait_ms=5.0,
            max_queue=4 * N_REQUESTS,
        )
        with sp_pool:
            single = _steady_state_load(sp_pool, images, seeds)

        mp_pool = ShardProcessPool.from_artifact(
            artifact, shards=shards, max_batch=MAX_BATCH, max_wait_ms=5.0,
            max_queue=4 * N_REQUESTS,
        )
        with mp_pool:
            multi = _steady_state_load(mp_pool, images, seeds)
        assert mp_pool.respawns_total == 0  # a crashy run is not a benchmark

    assert single.errors == []
    assert multi.errors == []
    np.testing.assert_array_equal(single.predictions, reference)
    np.testing.assert_array_equal(multi.predictions, reference)

    speedup = multi.throughput_rps / single.throughput_rps
    cpus = os.cpu_count() or 1
    print(f"\nsingle-process {single.throughput_rps:8.1f} req/s   "
          f"multi-process {multi.throughput_rps:8.1f} req/s   "
          f"speedup {speedup:4.2f}x "
          f"(shards={shards}, cpus={cpus}, concurrency={CONCURRENCY})")

    if cpus >= 4:
        required = MIN_SPEEDUP
    elif cpus >= 2:
        # 2-3 cores bound the theoretical speedup at the core count; demand
        # a clear win but leave room for the dispatch/IPC overhead.
        required = 1.2
    else:
        print("single-core runner: multi-process speedup assertion skipped "
              "(equivalence still verified)")
        return
    assert speedup >= required, (
        f"multi-process serving at concurrency {CONCURRENCY} is only "
        f"{speedup:.2f}x the single-process pool on {cpus} CPUs "
        f"(required: >= {required}x)"
    )


def test_multiprocess_serving_timing(benchmark):
    """pytest-benchmark timing of the steady-state shard-pool deployment."""
    with tempfile.TemporaryDirectory() as tmp:
        artifact, images, seeds = _make_artifact_and_requests(tmp)
        pool = ShardProcessPool.from_artifact(
            artifact, shards=_shard_count(), max_batch=MAX_BATCH,
            max_wait_ms=5.0, max_queue=4 * N_REQUESTS,
        )
        with pool:
            run_load(pool_sender(pool), images, seeds,
                     concurrency=CONCURRENCY)  # warm-up
            benchmark.pedantic(
                lambda: run_load(pool_sender(pool), images, seeds,
                                 concurrency=CONCURRENCY),
                rounds=3,
                iterations=1,
            )

"""Table I — GPU specifications of the paper's evaluation platforms."""

from __future__ import annotations

from repro.estimation.hardware import GTX_1080_TI, JETSON_NANO, RTX_2080_TI
from repro.experiments import gpu_specification_table


def test_table1_gpu_specifications(benchmark):
    """The device registry reproduces the paper's Table I rows exactly."""
    table = benchmark.pedantic(gpu_specification_table, rounds=1, iterations=1)
    print()
    print("Table I — GPU specifications")
    print(table)

    # Paper values, row by row.
    assert JETSON_NANO.architecture == "Maxwell"
    assert JETSON_NANO.cuda_cores == 128
    assert JETSON_NANO.memory == "4GB LPDDR4"
    assert JETSON_NANO.interface_width_bits == 64
    assert JETSON_NANO.tdp_watts == 10.0

    assert GTX_1080_TI.architecture == "Pascal"
    assert GTX_1080_TI.cuda_cores == 3584
    assert GTX_1080_TI.memory == "11GB GDDR5X"
    assert GTX_1080_TI.interface_width_bits == 352
    assert GTX_1080_TI.tdp_watts == 250.0

    assert RTX_2080_TI.architecture == "Turing"
    assert RTX_2080_TI.cuda_cores == 4352
    assert RTX_2080_TI.memory == "11GB GDDR6"
    assert RTX_2080_TI.interface_width_bits == 352
    assert RTX_2080_TI.tdp_watts == 250.0

    for name in ("Jetson Nano", "GTX 1080 Ti", "RTX 2080 Ti"):
        assert name in table

"""Fig. 10 — confusion matrices of SpikeDyn for previously learned tasks."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_confusion_study


def test_fig10_confusion_matrices(benchmark, bench_scale):
    """Confusion matrices per network size after the dynamic sequence."""
    result = benchmark.pedantic(
        run_confusion_study,
        kwargs={"scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    n_eval = bench_scale.eval_samples_per_class
    for label in bench_scale.network_labels:
        matrix = result.confusion(label)
        assert matrix.shape == (10, 10)
        assert matrix.dtype.kind in "iu"
        # Every evaluated task contributes exactly eval_samples_per_class rows.
        for task in bench_scale.class_sequence:
            assert matrix[task].sum() == n_eval
        # Tasks that were never evaluated contribute nothing.
        unevaluated = set(range(10)) - set(bench_scale.class_sequence)
        for task in unevaluated:
            assert matrix[task].sum() == 0
        assert int(matrix.sum()) == n_eval * len(bench_scale.class_sequence)
        target, predicted = result.most_confused(label)
        assert 0 <= target < 10 and 0 <= predicted < 10
        assert np.all(matrix >= 0)

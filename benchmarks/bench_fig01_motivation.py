"""Fig. 1 — motivational case study (baseline vs. ASP).

Reproduces the two panels of the paper's Fig. 1:

* Fig. 1(b): training/inference energy of ASP normalized to the baseline for
  two network sizes — ASP must come out *more* expensive;
* Fig. 1(c): per-task accuracy of both techniques after a dynamic task
  sequence.
"""

from __future__ import annotations

from repro.experiments import run_motivation_study


def test_fig01_energy_overhead_of_asp(benchmark, energy_scale):
    """ASP costs more training energy than the baseline (Fig. 1b)."""
    result = benchmark.pedantic(
        run_motivation_study,
        kwargs={"scale": energy_scale.replace(class_sequence=(0, 1))},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for label in energy_scale.network_labels:
        training = result.normalized_training_energy[label]
        assert training["baseline"] == 1.0
        # The paper's observation: ASP adds an energy overhead over the baseline.
        assert training["asp"] > 1.0


def test_fig01_dynamic_accuracy_profile(benchmark, bench_scale):
    """Per-task accuracy of baseline and ASP after the dynamic sequence (Fig. 1c)."""
    result = benchmark.pedantic(
        run_motivation_study,
        kwargs={"scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for model_name, protocol in result.accuracy_per_task.items():
        assert list(protocol.class_sequence) == list(bench_scale.class_sequence)
        for task in protocol.class_sequence:
            assert 0.0 <= protocol.final_task_accuracy[task] <= 1.0
            assert 0.0 <= protocol.recent_task_accuracy[task] <= 1.0

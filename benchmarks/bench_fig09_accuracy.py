"""Fig. 9 — classification accuracy of baseline / ASP / SpikeDyn in dynamic
and non-dynamic environments."""

from __future__ import annotations

from repro.experiments import (
    run_dynamic_accuracy_comparison,
    run_nondynamic_accuracy_comparison,
)


def test_fig09_dynamic_environment_accuracy(benchmark, bench_scale):
    """Most-recently-learned-task and previously-learned-task accuracy
    (Fig. 9 a.1/a.2/b.1/b.2)."""
    result = benchmark.pedantic(
        run_dynamic_accuracy_comparison,
        kwargs={"scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for label in bench_scale.network_labels:
        per_model = result.dynamic[label]
        assert set(per_model) == {"baseline", "asp", "spikedyn"}
        for model_name, protocol in per_model.items():
            assert list(protocol.class_sequence) == list(bench_scale.class_sequence)
            for task in protocol.class_sequence:
                assert 0.0 <= protocol.recent_task_accuracy[task] <= 1.0
                assert 0.0 <= protocol.final_task_accuracy[task] <= 1.0
        improvement = result.improvement_over(label, reference="baseline")
        print(f"{label}: SpikeDyn vs baseline improvement "
              f"(points): {improvement}")


def test_fig09_nondynamic_environment_accuracy(benchmark, bench_scale):
    """Accuracy as a function of the number of training samples (Fig. 9c)."""
    result = benchmark.pedantic(
        run_nondynamic_accuracy_comparison,
        kwargs={"scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    for label in bench_scale.network_labels:
        per_model = result.nondynamic[label]
        assert set(per_model) == {"baseline", "asp", "spikedyn"}
        for protocol in per_model.values():
            assert list(protocol.checkpoints) == list(bench_scale.nondynamic_checkpoints)
            for checkpoint in protocol.checkpoints:
                assert 0.0 <= protocol.accuracy_at_checkpoint[checkpoint] <= 1.0

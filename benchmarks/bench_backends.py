"""Backend throughput: every registered backend vs the dense reference.

The sparse backend's claim mirrors the paper's: SNN work should scale with
*spike events*, not with state size.  This module asserts both halves of the
backend contract on the ``run_batch`` inference hot path at paper-size
dimensions (784 inputs, N400) and realistic input spike density (3%, well
under the 5% bound the claim is made at):

* **equivalence** — the sparse backend produces exactly the same spike
  counts and OperationCounter tallies as the dense backend;
* **throughput** — the sparse backend is at least 1.5x faster (measured
  ~2.5-3x on developer hardware and CI).

The newer backends each gate their own claim:

* **float32** — identical counts and tallies with the dynamic state in
  half the memory;
* **numba** (skipped when not installed) — at least 1.5x faster than dense
  on a *small* network, where Python/ufunc dispatch overhead dominates the
  arithmetic;
* **auto** — across a grid spanning both sides of the dense/sparse
  crossover, never more than 10% slower than the best fixed backend for
  that workload (profiling happens before the clock starts).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backends import NumbaBackend
from repro.core.config import SpikeDynConfig
from repro.models.spikedyn_model import SpikeDynModel

#: Paper-size inference geometry: 28x28 inputs into the N400 network.
N_INPUT = 784
N_EXC = 400
BATCH_SIZE = 32
TIMESTEPS = 40

#: Input spike density of the benchmark workload (the claim holds for <= 5%).
SPIKE_DENSITY = 0.03

#: Wall-clock advantage the sparse backend must demonstrate.
MIN_SPEEDUP = 1.5


def _make_network(backend: str):
    config = SpikeDynConfig.scaled_down(
        n_input=N_INPUT, n_exc=N_EXC, t_sim=float(TIMESTEPS),
        seed=0, backend=backend,
    )
    return SpikeDynModel(config).network


def _spike_trains() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.random((BATCH_SIZE, TIMESTEPS, N_INPUT)) < SPIKE_DENSITY


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sparse_backend_speedup_at_low_density():
    """Sparse is >= 1.5x faster than dense at 3% density and result-equal."""
    trains = _spike_trains()
    dense_net = _make_network("dense")
    sparse_net = _make_network("sparse")

    # Correctness first: identical spike counts and operation tallies.
    dense_results = dense_net.run_batch(trains, learning=False)
    sparse_results = sparse_net.run_batch(trains, learning=False)
    for dense_result, sparse_result in zip(dense_results, sparse_results):
        np.testing.assert_array_equal(dense_result.counts("excitatory"),
                                      sparse_result.counts("excitatory"))
    assert dense_net.counter.as_dict() == sparse_net.counter.as_dict()

    dense_s = _best_of(lambda: dense_net.run_batch(trains, learning=False))
    sparse_s = _best_of(lambda: sparse_net.run_batch(trains, learning=False))
    speedup = dense_s / sparse_s
    print(f"\ndense {dense_s * 1e3:8.1f} ms   sparse {sparse_s * 1e3:8.1f} ms"
          f"   speedup {speedup:4.2f}x "
          f"({N_INPUT}x{N_EXC}, B={BATCH_SIZE}, "
          f"density={SPIKE_DENSITY:.0%})")
    assert speedup >= MIN_SPEEDUP, (
        f"sparse backend at {SPIKE_DENSITY:.0%} input density is only "
        f"{speedup:.2f}x faster than dense (required: >= {MIN_SPEEDUP}x)"
    )


def test_cross_backend_prediction_equivalence():
    """A trained model predicts identically on both backends."""
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=30, t_sim=40.0,
                                        seed=0)
    rng = np.random.default_rng(0)
    train_images = rng.random((6, 196)) * 0.7
    assign_images = rng.random((9, 196)) * 0.7
    labels = [index % 3 for index in range(len(assign_images))]
    eval_images = rng.random((12, 196)) * 0.7

    dense_model = SpikeDynModel(config)
    sparse_model = SpikeDynModel(config, backend="sparse")
    for model in (dense_model, sparse_model):
        model.train_batch(train_images)
        model.assign_labels(assign_images, labels)

    np.testing.assert_array_equal(sparse_model.predict(eval_images),
                                  dense_model.predict(eval_images))
    np.testing.assert_array_equal(sparse_model.assignments,
                                  dense_model.assignments)


def test_float32_backend_equivalence_and_memory():
    """Float32 serves identical results with the state in half the bytes."""
    trains = _spike_trains()
    dense_net = _make_network("dense")
    f32_net = _make_network("float32")

    dense_results = dense_net.run_batch(trains, learning=False)
    f32_results = f32_net.run_batch(trains, learning=False)
    for dense_result, f32_result in zip(dense_results, f32_results):
        np.testing.assert_array_equal(dense_result.counts("excitatory"),
                                      f32_result.counts("excitatory"))
    assert dense_net.counter.as_dict() == f32_net.counter.as_dict()

    # The memory claim, measured on live state: one sequential step leaves
    # every dynamic array at single precision (batch teardown reallocates,
    # so probe via run_sample).
    f32_net.run_sample(trains[0], learning=False)
    dense_net.run_sample(trains[0], learning=False)
    f32_v = f32_net.group("excitatory").v
    dense_v = dense_net.group("excitatory").v
    assert f32_v.dtype == np.float32
    assert f32_v.nbytes * 2 == dense_v.nbytes


@pytest.mark.skipif(not NumbaBackend.available(),
                    reason="numba not installed")
def test_numba_backend_speedup_on_small_network():
    """Numba is >= 1.5x faster than dense where dispatch overhead rules.

    On a 64x16 network each timestep does microseconds of arithmetic behind
    ~a dozen ufunc calls; the fused jitted loops collapse that fixed
    overhead, which is exactly the regime the backend exists for.  The
    first ``run_batch`` below happens outside the clock so JIT compilation
    (or the on-disk cache load) is never timed.
    """
    config = SpikeDynConfig.scaled_down(
        n_input=64, n_exc=16, t_sim=100.0, seed=0, backend="dense",
    )
    trains = np.random.default_rng(7).random((8, 100, 64)) < SPIKE_DENSITY
    dense_net = SpikeDynModel(config).network
    numba_net = SpikeDynModel(config.replace(backend="numba")).network

    dense_results = dense_net.run_batch(trains, learning=False)
    numba_results = numba_net.run_batch(trains, learning=False)  # warm + JIT
    for dense_result, numba_result in zip(dense_results, numba_results):
        np.testing.assert_array_equal(dense_result.counts("excitatory"),
                                      numba_result.counts("excitatory"))
    assert dense_net.counter.as_dict() == numba_net.counter.as_dict()

    dense_s = _best_of(lambda: dense_net.run_batch(trains, learning=False),
                       repeats=5)
    numba_s = _best_of(lambda: numba_net.run_batch(trains, learning=False),
                       repeats=5)
    speedup = dense_s / numba_s
    print(f"\ndense {dense_s * 1e3:8.1f} ms   numba {numba_s * 1e3:8.1f} ms"
          f"   speedup {speedup:4.2f}x (64x16, B=8, T=100)")
    assert speedup >= MIN_SPEEDUP, (
        f"numba backend on the small network is only {speedup:.2f}x faster "
        f"than dense (required: >= {MIN_SPEEDUP}x)"
    )


def test_auto_backend_tracks_the_best_fixed_backend():
    """Auto is never >10% slower than the best fixed backend per workload.

    The grid spans both sides of the crossover: a small dense-favoured
    geometry and the paper-size sparse-favoured one.  Each network's first
    ``run_batch`` is a warm-up pass — for auto that is where per-bucket
    profiling happens, so the timed passes measure pure dispatch.
    """
    grid = [
        ("small-dense-side", 64, 16, 8, 40),
        ("paper-sparse-side", N_INPUT, N_EXC, 16, TIMESTEPS),
    ]
    fixed = ["dense", "sparse"]
    if NumbaBackend.available():
        fixed.append("numba")
    margin = 1.10

    for label, n_input, n_exc, batch, timesteps in grid:
        trains = np.random.default_rng(11).random(
            (batch, timesteps, n_input)) < SPIKE_DENSITY
        config = SpikeDynConfig.scaled_down(
            n_input=n_input, n_exc=n_exc, t_sim=float(timesteps), seed=0,
        )

        networks = {}
        for backend in fixed + ["auto"]:
            network = SpikeDynModel(config.replace(backend=backend)).network
            network.run_batch(trains, learning=False)  # warm-up / profiling
            networks[backend] = network

        def measure():
            # Round-robin the timed passes so machine drift (frequency
            # scaling, noisy neighbours) hits every backend equally instead
            # of biasing whichever happened to run last.
            times = {backend: float("inf") for backend in networks}
            for _ in range(7):
                for backend, network in networks.items():
                    start = time.perf_counter()
                    network.run_batch(trains, learning=False)
                    times[backend] = min(times[backend],
                                         time.perf_counter() - start)
            auto = times.pop("auto")
            return auto, min(times.items(), key=lambda kv: kv[1])

        # The few-millisecond workloads sit near shared-runner timer noise,
        # so the margin check gets up to three independent measurements: a
        # genuinely >10%-slow dispatcher fails all of them, a noise spike
        # does not.
        for attempt in range(3):
            auto_s, (best_backend, best_s) = measure()
            print(f"\n{label}: auto {auto_s * 1e3:7.1f} ms   "
                  f"best fixed ({best_backend}) {best_s * 1e3:7.1f} ms")
            if auto_s <= best_s * margin:
                break
        else:
            raise AssertionError(
                f"auto backend on {label} took {auto_s * 1e3:.1f} ms in "
                f"every attempt, more than {margin:.0%} of the best fixed "
                f"backend ({best_backend}: {best_s * 1e3:.1f} ms)"
            )


def test_backend_timing(benchmark):
    """pytest-benchmark timing of the sparse path (for the harness report)."""
    network = _make_network("sparse")
    trains = _spike_trains()
    benchmark.pedantic(
        lambda: network.run_batch(trains, learning=False),
        rounds=3,
        warmup_rounds=1,
    )

"""Backend throughput: sparse event-driven kernels vs the dense reference.

The sparse backend's claim mirrors the paper's: SNN work should scale with
*spike events*, not with state size.  This module asserts both halves of the
backend contract on the ``run_batch`` inference hot path at paper-size
dimensions (784 inputs, N400) and realistic input spike density (3%, well
under the 5% bound the claim is made at):

* **equivalence** — the sparse backend produces exactly the same spike
  counts and OperationCounter tallies as the dense backend;
* **throughput** — the sparse backend is at least 1.5x faster (measured
  ~2.5-3x on developer hardware and CI).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.models.spikedyn_model import SpikeDynModel

#: Paper-size inference geometry: 28x28 inputs into the N400 network.
N_INPUT = 784
N_EXC = 400
BATCH_SIZE = 32
TIMESTEPS = 40

#: Input spike density of the benchmark workload (the claim holds for <= 5%).
SPIKE_DENSITY = 0.03

#: Wall-clock advantage the sparse backend must demonstrate.
MIN_SPEEDUP = 1.5


def _make_network(backend: str):
    config = SpikeDynConfig.scaled_down(
        n_input=N_INPUT, n_exc=N_EXC, t_sim=float(TIMESTEPS),
        seed=0, backend=backend,
    )
    return SpikeDynModel(config).network


def _spike_trains() -> np.ndarray:
    rng = np.random.default_rng(42)
    return rng.random((BATCH_SIZE, TIMESTEPS, N_INPUT)) < SPIKE_DENSITY


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sparse_backend_speedup_at_low_density():
    """Sparse is >= 1.5x faster than dense at 3% density and result-equal."""
    trains = _spike_trains()
    dense_net = _make_network("dense")
    sparse_net = _make_network("sparse")

    # Correctness first: identical spike counts and operation tallies.
    dense_results = dense_net.run_batch(trains, learning=False)
    sparse_results = sparse_net.run_batch(trains, learning=False)
    for dense_result, sparse_result in zip(dense_results, sparse_results):
        np.testing.assert_array_equal(dense_result.counts("excitatory"),
                                      sparse_result.counts("excitatory"))
    assert dense_net.counter.as_dict() == sparse_net.counter.as_dict()

    dense_s = _best_of(lambda: dense_net.run_batch(trains, learning=False))
    sparse_s = _best_of(lambda: sparse_net.run_batch(trains, learning=False))
    speedup = dense_s / sparse_s
    print(f"\ndense {dense_s * 1e3:8.1f} ms   sparse {sparse_s * 1e3:8.1f} ms"
          f"   speedup {speedup:4.2f}x "
          f"({N_INPUT}x{N_EXC}, B={BATCH_SIZE}, "
          f"density={SPIKE_DENSITY:.0%})")
    assert speedup >= MIN_SPEEDUP, (
        f"sparse backend at {SPIKE_DENSITY:.0%} input density is only "
        f"{speedup:.2f}x faster than dense (required: >= {MIN_SPEEDUP}x)"
    )


def test_cross_backend_prediction_equivalence():
    """A trained model predicts identically on both backends."""
    config = SpikeDynConfig.scaled_down(n_input=196, n_exc=30, t_sim=40.0,
                                        seed=0)
    rng = np.random.default_rng(0)
    train_images = rng.random((6, 196)) * 0.7
    assign_images = rng.random((9, 196)) * 0.7
    labels = [index % 3 for index in range(len(assign_images))]
    eval_images = rng.random((12, 196)) * 0.7

    dense_model = SpikeDynModel(config)
    sparse_model = SpikeDynModel(config, backend="sparse")
    for model in (dense_model, sparse_model):
        model.train_batch(train_images)
        model.assign_labels(assign_images, labels)

    np.testing.assert_array_equal(sparse_model.predict(eval_images),
                                  dense_model.predict(eval_images))
    np.testing.assert_array_equal(sparse_model.assignments,
                                  dense_model.assignments)


def test_backend_timing(benchmark):
    """pytest-benchmark timing of the sparse path (for the harness report)."""
    network = _make_network("sparse")
    trains = _spike_trains()
    benchmark.pedantic(
        lambda: network.run_batch(trains, learning=False),
        rounds=3,
        warmup_rounds=1,
    )

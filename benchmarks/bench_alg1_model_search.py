"""Alg. 1 — memory- and energy-constrained SNN model search."""

from __future__ import annotations

from repro.experiments import run_model_search_study


def test_alg1_constrained_model_search(benchmark, bench_scale):
    """The search selects the largest model that fits each memory budget."""
    study = benchmark.pedantic(
        run_model_search_study,
        kwargs={"scale": bench_scale, "n_add": 10},
        rounds=1,
        iterations=1,
    )
    print()
    print(study.to_text())

    budgets = sorted(study.results)
    selected = study.selected_sizes()

    # Larger budgets never select a smaller model.
    previous = 0
    for budget in budgets:
        size = selected[budget]
        if size is None:
            continue
        assert size >= previous
        previous = size

    for budget, result in study.results.items():
        # Every feasible candidate respects the memory budget, and the
        # selected model is the largest feasible one (Alg. 1's policy).
        for candidate in result.feasible_candidates:
            assert candidate.memory_bytes <= budget
        if result.selected is not None:
            assert result.selected.n_exc == max(
                candidate.n_exc for candidate in result.feasible_candidates
            )
        # Exploring with one sample per phase is far cheaper than running the
        # full phases for every candidate.
        if result.candidates:
            assert result.exploration_time_seconds() < result.actual_run_time_seconds(
                bench_scale.n_training_samples, bench_scale.n_inference_samples
            )


def test_alg1_energy_constraints_reject_candidates(benchmark, bench_scale):
    """A tight training-energy budget rejects candidates the memory budget allows."""
    from repro.core.model_search import search_snn_model
    from repro.estimation.hardware import GTX_1080_TI

    config = bench_scale.config(max(bench_scale.network_sizes))

    # A budget admitting a handful of candidate sizes keeps the sweep fast.
    memory_budget = 5.5 * config.n_input * 10 * config.bit_precision / 8.0

    def run():
        return search_snn_model(
            config,
            memory_budget_bytes=memory_budget,
            training_energy_budget_joules=1e-9,
            n_training_samples=bench_scale.n_training_samples,
            n_inference_samples=bench_scale.n_inference_samples,
            n_add=10,
            device=GTX_1080_TI,
            rng=bench_scale.seed,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"explored {len(result.candidates)} candidates, "
          f"feasible: {len(result.feasible_candidates)}")
    assert result.candidates, "the sweep should explore at least one candidate"
    assert not result.feasible_candidates
    assert result.selected is None
    assert all("training energy" in candidate.rejection_reason
               for candidate in result.candidates)

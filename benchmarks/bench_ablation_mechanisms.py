"""Design-choice ablation — disabling SpikeDyn's learning mechanisms one at a
time (adaptive rates, weight decay, adaptive threshold, update gating)."""

from __future__ import annotations

from repro.experiments import run_mechanism_ablation
from repro.experiments.ablation import ABLATION_VARIANTS


def test_ablation_of_learning_mechanisms(benchmark, bench_scale):
    """Each mechanism can be disabled in isolation; gating saves energy."""
    result = benchmark.pedantic(
        run_mechanism_ablation,
        kwargs={"scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())

    assert set(result.variants) == set(ABLATION_VARIANTS)
    normalized = result.normalized_training_energy()
    assert normalized["full"] == 1.0
    # Removing the update gating reverts to per-timestep updates, which costs
    # strictly more weight-update energy than the gated rule.
    assert normalized["no_update_gating"] > normalized["full"]
    for variant, entry in result.variants.items():
        assert 0.0 <= entry.mean_recent_accuracy <= 1.0
        assert 0.0 <= entry.mean_final_accuracy <= 1.0
        assert entry.training_energy_joules > 0.0

"""SpikeDyn core: the paper's primary contribution.

The three mechanisms of the SpikeDyn framework (DAC 2021) live here:

1. **Reduced neuronal operations** — :mod:`repro.core.architecture` builds
   the optimized network in which the inhibitory layer is replaced by direct
   lateral inhibition (Section III-B).
2. **Memory- and energy-constrained model search** — Algorithm 1 in
   :mod:`repro.core.model_search`, driven by the analytical estimators of
   :mod:`repro.estimation` (Section III-C).
3. **Continual and unsupervised learning** — Algorithm 2 in
   :mod:`repro.core.learning`, combining adaptive learning rates, synaptic
   weight decay, an adaptive membrane threshold potential, and
   spurious-update reduction (Section III-D).

The :class:`~repro.core.framework.SpikeDynFramework` facade ties all three
together behind a small API.
"""

from repro.core.adaptive_rates import (
    AdaptiveLearningRates,
    depression_factor,
    potentiation_factor,
)
from repro.core.adaptive_threshold import (
    AdaptiveThresholdPolicy,
    adaptation_potential,
)
from repro.core.architecture import (
    build_baseline_network,
    build_spikedyn_network,
)
from repro.core.config import SpikeDynConfig
from repro.core.framework import SpikeDynFramework
from repro.core.learning import SpikeDynLearningRule
from repro.core.model_search import ModelCandidate, ModelSearchResult, search_snn_model
from repro.core.spurious import SpikeAccumulator
from repro.core.weight_decay import SynapticWeightDecay, decay_rate_for_network_size

__all__ = [
    "AdaptiveLearningRates",
    "AdaptiveThresholdPolicy",
    "ModelCandidate",
    "ModelSearchResult",
    "SpikeAccumulator",
    "SpikeDynConfig",
    "SpikeDynFramework",
    "SpikeDynLearningRule",
    "SynapticWeightDecay",
    "adaptation_potential",
    "build_baseline_network",
    "build_spikedyn_network",
    "decay_rate_for_network_size",
    "depression_factor",
    "potentiation_factor",
    "search_snn_model",
]

"""Adaptive learning rates (paper Eq. 1).

SpikeDyn modulates the magnitude of STDP potentiation and depression with
two activity-derived factors:

* the **potentiation factor** ``kp = ceil(maxSp_post / Sp_th)`` grows when the
  postsynaptic side is highly active, i.e. when the corresponding synapses
  need to learn the currently presented input features;
* the **depression factor** ``kd = maxSp_post / maxSp_pre`` scales depression
  by how responsive the postsynaptic layer has been relative to the input
  drive, weakening connections when the network stays silent.

Both factors are computed from the accumulated pre- and postsynaptic spike
counts maintained by :class:`repro.core.spurious.SpikeAccumulator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


def potentiation_factor(max_post_spikes: float, spike_threshold: float) -> float:
    """Potentiation factor ``kp`` of Eq. 1(a).

    Parameters
    ----------
    max_post_spikes:
        Maximum accumulated postsynaptic spike count (``maxSp_post``).
    spike_threshold:
        Normalizing spike threshold ``Sp_th``.

    Returns
    -------
    float
        ``ceil(max_post_spikes / spike_threshold)``; zero when the
        postsynaptic layer has not spiked at all.
    """
    check_non_negative(max_post_spikes, "max_post_spikes")
    check_positive(spike_threshold, "spike_threshold")
    if max_post_spikes == 0:
        return 0.0
    return float(math.ceil(max_post_spikes / spike_threshold))


def depression_factor(max_post_spikes: float, max_pre_spikes: float) -> float:
    """Depression factor ``kd`` of Eq. 1(b).

    Parameters
    ----------
    max_post_spikes:
        Maximum accumulated postsynaptic spike count (``maxSp_post``).
    max_pre_spikes:
        Maximum accumulated presynaptic spike count (``maxSp_pre``).

    Returns
    -------
    float
        ``max_post_spikes / max_pre_spikes``; zero when the input has not
        spiked yet (no evidence on which to base depression).
    """
    check_non_negative(max_post_spikes, "max_post_spikes")
    check_non_negative(max_pre_spikes, "max_pre_spikes")
    if max_pre_spikes == 0:
        return 0.0
    return float(max_post_spikes) / float(max_pre_spikes)


@dataclass
class AdaptiveLearningRates:
    """Convenience container computing both factors of Eq. 1.

    Parameters
    ----------
    spike_threshold:
        The normalizing threshold ``Sp_th`` used by the potentiation factor.
    """

    spike_threshold: float = 4.0

    def __post_init__(self) -> None:
        check_positive(self.spike_threshold, "spike_threshold")

    def kp(self, max_post_spikes: float) -> float:
        """Potentiation factor for the given accumulated postsynaptic count."""
        return potentiation_factor(max_post_spikes, self.spike_threshold)

    def kd(self, max_post_spikes: float, max_pre_spikes: float) -> float:
        """Depression factor for the given accumulated spike counts."""
        return depression_factor(max_post_spikes, max_pre_spikes)

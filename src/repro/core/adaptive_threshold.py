"""Adaptive membrane threshold potential (paper Section III-D).

The firing threshold of an excitatory neuron is ``V_th + theta``.  SpikeDyn
sizes the adaptation potential ``theta`` so that the network stays balanced
in dynamic scenarios: some neurons remain available to learn new tasks while
others retain previously learned information.  The paper defines

    ``theta = c_theta * theta_decay * t_sim``

i.e. the adaptation potential is proportional to its own decay rate and to
the presentation time of one sample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snn.neurons import AdaptiveLIFGroup
from repro.utils.validation import check_non_negative, check_positive


def adaptation_potential(c_theta: float, theta_decay: float, t_sim: float) -> float:
    """Adaptation potential ``theta = c_theta * theta_decay * t_sim``.

    Parameters
    ----------
    c_theta:
        Adaptation constant (dimensionless).
    theta_decay:
        Decay rate of the adaptation potential, i.e. ``1 / tau_theta`` in
        1/ms.
    t_sim:
        Presentation time of one input sample in milliseconds.
    """
    check_non_negative(c_theta, "c_theta")
    check_non_negative(theta_decay, "theta_decay")
    check_positive(t_sim, "t_sim")
    return c_theta * theta_decay * t_sim


@dataclass
class AdaptiveThresholdPolicy:
    """Policy that configures an excitatory group's threshold adaptation.

    The policy computes the adaptation potential from the configured
    constants and installs it as the per-spike threshold increment
    (``theta_plus``) of an :class:`~repro.snn.neurons.AdaptiveLIFGroup`,
    leaving the exponential decay (rate ``theta_decay``) to the group itself.

    Parameters
    ----------
    c_theta:
        Adaptation constant ``c_theta``.
    theta_decay:
        Decay rate of the adaptation potential (1/ms).
    t_sim:
        Presentation time of a sample (ms).
    """

    c_theta: float = 1.0
    theta_decay: float = 1.0e-3
    t_sim: float = 350.0

    def __post_init__(self) -> None:
        check_non_negative(self.c_theta, "c_theta")
        check_non_negative(self.theta_decay, "theta_decay")
        check_positive(self.t_sim, "t_sim")

    @property
    def theta(self) -> float:
        """The adaptation potential produced by this policy."""
        return adaptation_potential(self.c_theta, self.theta_decay, self.t_sim)

    def configure_group(self, group: AdaptiveLIFGroup) -> AdaptiveLIFGroup:
        """Install the policy on an adaptive LIF group and return it."""
        if not isinstance(group, AdaptiveLIFGroup):
            raise TypeError(
                "AdaptiveThresholdPolicy requires an AdaptiveLIFGroup, "
                f"got {type(group).__name__}"
            )
        group.theta_plus = self.theta
        group.tau_theta = 1.0 / self.theta_decay if self.theta_decay > 0 else group.tau_theta
        return group

"""Spike accumulation for spurious-update reduction (paper Alg. 2, Fig. 7).

The baseline STDP rule updates weights at every spike event, which produces
"spurious updates": weight changes driven by unpredictable spikes from the
random weight initialization, or by neurons that respond to overlapping
features of different classes.  SpikeDyn instead accumulates pre- and
postsynaptic spikes and only commits weight changes at *timestep* (update
window) boundaries: potentiation for the most active postsynaptic neuron when
at least one postsynaptic spike occurred in the window, depression otherwise.

The :class:`SpikeAccumulator` keeps the accumulated counts (``Nsp_pre``,
``Nsp_post`` in the paper's notation) over a sample presentation, plus the
per-window postsynaptic activity needed to decide between potentiation and
depression.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int


class SpikeAccumulator:
    """Accumulates pre-/postsynaptic spike counts over a sample presentation.

    Parameters
    ----------
    n_pre:
        Number of presynaptic (input) neurons.
    n_post:
        Number of postsynaptic (excitatory) neurons.

    Notes
    -----
    The paper's Alg. 2 stores presynaptic counts per (neuron, synapse) pair;
    because every excitatory neuron sees the same input spike train, the
    per-input-neuron vector kept here carries the identical information with
    ``n_post`` times less memory.
    """

    def __init__(self, n_pre: int, n_post: int) -> None:
        self.n_pre = check_positive_int(n_pre, "n_pre")
        self.n_post = check_positive_int(n_post, "n_post")
        self.pre_counts = np.zeros(self.n_pre, dtype=np.int64)
        self.post_counts = np.zeros(self.n_post, dtype=np.int64)
        self.window_post_counts = np.zeros(self.n_post, dtype=np.int64)

    # -- updates -------------------------------------------------------------

    def update(self, pre_spikes: np.ndarray, post_spikes: np.ndarray) -> None:
        """Add one timestep's spikes to the accumulated counts."""
        pre_spikes = np.asarray(pre_spikes, dtype=bool)
        post_spikes = np.asarray(post_spikes, dtype=bool)
        if pre_spikes.shape != (self.n_pre,):
            raise ValueError(
                f"pre_spikes must have shape ({self.n_pre},), got {pre_spikes.shape}"
            )
        if post_spikes.shape != (self.n_post,):
            raise ValueError(
                f"post_spikes must have shape ({self.n_post},), got {post_spikes.shape}"
            )
        self.pre_counts += pre_spikes
        self.post_counts += post_spikes
        self.window_post_counts += post_spikes

    def close_window(self) -> None:
        """Reset the per-window postsynaptic counts (called at boundaries)."""
        self.window_post_counts[:] = 0

    def reset(self) -> None:
        """Clear all accumulated counts (called at sample boundaries)."""
        self.pre_counts[:] = 0
        self.post_counts[:] = 0
        self.window_post_counts[:] = 0

    # -- statistics -----------------------------------------------------------

    @property
    def max_pre(self) -> int:
        """``maxSp_pre``: largest accumulated presynaptic spike count."""
        return int(self.pre_counts.max())

    @property
    def max_post(self) -> int:
        """``maxSp_post``: largest accumulated postsynaptic spike count."""
        return int(self.post_counts.max())

    @property
    def post_spiked_in_window(self) -> bool:
        """Whether any postsynaptic spike occurred in the current window."""
        return bool(self.window_post_counts.any())

    @property
    def most_active_post(self) -> int:
        """Index ``m`` of the most active postsynaptic neuron (accumulated)."""
        return int(np.argmax(self.post_counts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpikeAccumulator(n_pre={self.n_pre}, n_post={self.n_post}, "
            f"max_pre={self.max_pre}, max_post={self.max_post})"
        )

"""Network-architecture builders (paper Section III-B).

Two architectures are provided:

* :func:`build_baseline_network` — the classic Diehl & Cook topology used by
  both the baseline and the ASP comparator: a learned input→excitatory
  projection, a one-to-one excitatory→inhibitory projection, and a dense
  inhibitory→excitatory projection implementing winner-take-all competition.
* :func:`build_spikedyn_network` — SpikeDyn's optimized architecture in which
  the inhibitory layer is removed and replaced by *direct lateral inhibition*
  among the excitatory neurons, eliminating the inhibitory neurons' state,
  parameters, and per-timestep operations.

Group and connection names are fixed (``input``, ``excitatory``,
``inhibitory``; ``input_to_exc``, ``exc_to_inh``, ``inh_to_exc``,
``lateral_inhibition``) so that models, monitors, and the estimation code can
find them by name.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adaptive_threshold import AdaptiveThresholdPolicy
from repro.core.config import SpikeDynConfig
from repro.snn.network import Network
from repro.snn.neurons import AdaptiveLIFGroup, InputGroup, LIFGroup
from repro.snn.synapses import Connection, UniformLateralInhibition
from repro.snn.topology import (
    all_to_all_except_self_weights,
    dense_random_weights,
    one_to_one_weights,
)
from repro.utils.rng import SeedLike, ensure_rng

#: Diehl & Cook constants for the inhibitory layer of the baseline topology.
INHIBITORY_NEURON_DEFAULTS = {
    "v_rest": -60.0,
    "v_reset": -45.0,
    "v_thresh": -40.0,
    "tau_m": 10.0,
    "refractory": 2.0,
}

#: Per-spike threshold increment and decay constant used by the baseline's
#: excitatory neurons (the SpikeDyn architecture replaces these with the
#: adaptive threshold policy of Section III-D).
BASELINE_THETA_PLUS = 0.05
BASELINE_TAU_THETA = 1.0e7

#: Strength of the fixed excitatory->inhibitory one-to-one projection.
EXC_TO_INH_STRENGTH = 22.5


def _make_input_and_excitatory(config: SpikeDynConfig) -> tuple:
    """Input group plus excitatory group shared by both architectures."""
    input_group = InputGroup(config.n_input, name="input")
    excitatory = AdaptiveLIFGroup(
        config.n_exc,
        v_rest=config.v_rest,
        v_reset=config.v_reset,
        v_thresh=config.v_thresh,
        tau_m=config.tau_m,
        refractory=config.refractory,
        theta_plus=BASELINE_THETA_PLUS,
        tau_theta=BASELINE_TAU_THETA,
        name="excitatory",
    )
    return input_group, excitatory


def _make_input_projection(config: SpikeDynConfig, input_group: InputGroup,
                           excitatory: AdaptiveLIFGroup, learning_rule,
                           rng: SeedLike) -> Connection:
    """The learned input→excitatory projection shared by both architectures."""
    weights = dense_random_weights(
        config.n_input, config.n_exc, low=0.0, high=0.3, rng=rng
    )
    return Connection(
        input_group,
        excitatory,
        weights,
        sign=1,
        tau_syn=5.0,
        w_min=config.w_min,
        w_max=config.w_max,
        learning_rule=learning_rule,
        norm=config.effective_norm_total,
        name="input_to_exc",
    )


def build_baseline_network(
    config: SpikeDynConfig,
    *,
    learning_rule,
    rng: SeedLike = None,
    exc_to_inh_strength: float = EXC_TO_INH_STRENGTH,
    inh_to_exc_strength: Optional[float] = None,
    name: str = "baseline",
    backend=None,
) -> Network:
    """Build the excitatory + inhibitory architecture of Fig. 1(a).

    Parameters
    ----------
    config:
        Shared sizes, neuron constants, and timing parameters.
    learning_rule:
        Learning rule attached to the input→excitatory projection (pairwise
        STDP for the baseline, ASP for the state-of-the-art comparator).
    rng:
        Seed or generator for the weight initialization.
    exc_to_inh_strength:
        Weight of the one-to-one excitatory→inhibitory projection.
    inh_to_exc_strength:
        Weight of the dense inhibitory→excitatory projection; defaults to the
        configuration's ``inhibition_strength``.
    name:
        Network identifier.
    backend:
        Compute backend (name or instance) for the network's kernels;
        defaults to the configuration's ``backend`` field.
    """
    rng = ensure_rng(rng if rng is not None else config.seed)
    inh_strength = (
        config.inhibition_strength if inh_to_exc_strength is None else inh_to_exc_strength
    )

    network = Network(config.simulation_parameters(), name=name,
                      backend=backend if backend is not None else config.backend)
    input_group, excitatory = _make_input_and_excitatory(config)
    inhibitory = LIFGroup(config.n_exc, name="inhibitory", **INHIBITORY_NEURON_DEFAULTS)

    network.add_group(input_group)
    network.add_group(excitatory)
    network.add_group(inhibitory)

    network.add_connection(
        _make_input_projection(config, input_group, excitatory, learning_rule, rng)
    )
    network.add_connection(
        Connection(
            excitatory,
            inhibitory,
            one_to_one_weights(config.n_exc, exc_to_inh_strength),
            sign=1,
            tau_syn=1.0,
            w_max=max(exc_to_inh_strength, 1.0) * 2,
            name="exc_to_inh",
        )
    )
    network.add_connection(
        Connection(
            inhibitory,
            excitatory,
            all_to_all_except_self_weights(config.n_exc, inh_strength),
            sign=-1,
            tau_syn=config.tau_inhibition,
            w_max=max(inh_strength, 1.0) * 2,
            name="inh_to_exc",
        )
    )
    return network


def build_spikedyn_network(
    config: SpikeDynConfig,
    *,
    learning_rule,
    rng: SeedLike = None,
    name: str = "spikedyn",
    backend=None,
) -> Network:
    """Build SpikeDyn's optimized architecture (Fig. 4a, right).

    The inhibitory layer is replaced by a :class:`UniformLateralInhibition`
    projection on the excitatory group, and the excitatory group's threshold
    adaptation is configured by the adaptive threshold policy
    (``theta = c_theta * theta_decay * t_sim``).

    Parameters
    ----------
    config:
        Sizes, neuron constants, threshold-adaptation constants, lateral
        inhibition strength, and timing parameters.
    learning_rule:
        Learning rule attached to the input→excitatory projection (normally a
        :class:`repro.core.learning.SpikeDynLearningRule`).
    rng:
        Seed or generator for the weight initialization.
    name:
        Network identifier.
    backend:
        Compute backend (name or instance) for the network's kernels;
        defaults to the configuration's ``backend`` field.
    """
    rng = ensure_rng(rng if rng is not None else config.seed)

    network = Network(config.simulation_parameters(), name=name,
                      backend=backend if backend is not None else config.backend)
    input_group, excitatory = _make_input_and_excitatory(config)

    policy = AdaptiveThresholdPolicy(
        c_theta=config.c_theta,
        theta_decay=config.theta_decay,
        t_sim=config.t_sim,
    )
    policy.configure_group(excitatory)

    network.add_group(input_group)
    network.add_group(excitatory)

    network.add_connection(
        _make_input_projection(config, input_group, excitatory, learning_rule, rng)
    )
    network.add_connection(
        UniformLateralInhibition(
            excitatory,
            config.inhibition_strength,
            tau_syn=config.tau_inhibition,
            name="lateral_inhibition",
        )
    )
    return network

"""The SpikeDyn framework facade (paper Fig. 3).

:class:`SpikeDynFramework` ties the three mechanisms together behind a small
API that mirrors the paper's tool flow:

1. take the design constraints (memory, training/inference energy) and the
   number of samples the deployed system is expected to process;
2. run the model-search algorithm to pick the largest SNN model that fits;
3. build that model (optimized architecture + improved learning algorithm);
4. train it continually on a task stream and evaluate it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import SpikeDynConfig
from repro.core.model_search import ModelSearchResult, search_snn_model
from repro.estimation.energy import EnergyEstimate, EnergyModel
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.estimation.memory import architecture_parameter_counts
from repro.evaluation.protocols import (
    DynamicProtocolResult,
    NonDynamicProtocolResult,
    run_dynamic_protocol,
    run_nondynamic_protocol,
)
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


class SpikeDynFramework:
    """End-to-end facade over model search, training, and evaluation.

    Parameters
    ----------
    config:
        Base configuration; ``n_exc`` acts as the default model size when no
        model search is performed.
    device:
        GPU profile used for all energy conversions.
    rng:
        Seed or generator shared by model construction and the protocols.
    """

    def __init__(self, config: SpikeDynConfig, *,
                 device: DeviceProfile = GTX_1080_TI,
                 rng: SeedLike = None) -> None:
        self.config = config
        self.device = device
        self.rng = ensure_rng(rng if rng is not None else config.seed)
        self.energy_model = EnergyModel(device)
        self.search_result: Optional[ModelSearchResult] = None

    # -- model search -----------------------------------------------------------

    def search_model(self, *, memory_budget_bytes: float,
                     training_energy_budget_joules: Optional[float] = None,
                     inference_energy_budget_joules: Optional[float] = None,
                     n_training_samples: int = 60_000,
                     n_inference_samples: int = 10_000,
                     n_add: int = 100) -> ModelSearchResult:
        """Run Alg. 1 with the given constraints and remember the result."""
        self.search_result = search_snn_model(
            self.config,
            memory_budget_bytes=memory_budget_bytes,
            training_energy_budget_joules=training_energy_budget_joules,
            inference_energy_budget_joules=inference_energy_budget_joules,
            n_training_samples=n_training_samples,
            n_inference_samples=n_inference_samples,
            n_add=n_add,
            device=self.device,
            rng=self.rng,
        )
        return self.search_result

    def selected_network_size(self) -> int:
        """Excitatory-layer size chosen by the last search (or the default)."""
        if self.search_result is not None and self.search_result.selected is not None:
            return self.search_result.selected.n_exc
        return self.config.n_exc

    # -- model construction -------------------------------------------------------

    def build_model(self, n_exc: Optional[int] = None):
        """Build a :class:`~repro.models.spikedyn_model.SpikeDynModel`.

        Parameters
        ----------
        n_exc:
            Excitatory-layer size; defaults to the size selected by the last
            model search (or the configuration's size when no search ran).
        """
        from repro.models.spikedyn_model import SpikeDynModel

        size = n_exc if n_exc is not None else self.selected_network_size()
        check_positive_int(size, "n_exc")
        return SpikeDynModel(self.config.with_network_size(size), rng=self.rng)

    # -- training and evaluation ----------------------------------------------------

    def run_dynamic(self, model, source, *,
                    class_sequence: Optional[Sequence[int]] = None,
                    samples_per_task: int = 10,
                    eval_samples_per_class: int = 5) -> DynamicProtocolResult:
        """Train/evaluate ``model`` under the dynamic-environment protocol."""
        return run_dynamic_protocol(
            model, source,
            class_sequence=class_sequence,
            samples_per_task=samples_per_task,
            eval_samples_per_class=eval_samples_per_class,
            rng=self.rng,
        )

    def run_nondynamic(self, model, source, *,
                       checkpoints: Sequence[int] = (20, 50, 100),
                       classes: Optional[Sequence[int]] = None,
                       eval_samples_per_class: int = 5) -> NonDynamicProtocolResult:
        """Train/evaluate ``model`` under the non-dynamic protocol."""
        return run_nondynamic_protocol(
            model, source,
            checkpoints=checkpoints,
            classes=classes,
            eval_samples_per_class=eval_samples_per_class,
            rng=self.rng,
        )

    # -- estimation ---------------------------------------------------------------

    def estimate_memory_bytes(self, n_exc: Optional[int] = None) -> float:
        """Analytical memory footprint of the (selected) SpikeDyn model."""
        size = n_exc if n_exc is not None else self.selected_network_size()
        counts = architecture_parameter_counts("spikedyn", self.config.n_input, size)
        return counts.memory_bytes(self.config.bit_precision)

    def estimate_phase_energy(self, model, image, *, learning: bool,
                              n_samples: int) -> EnergyEstimate:
        """Analytical phase energy ``E = E1 * N`` measured from one sample."""
        check_positive_int(n_samples, "n_samples")
        before = model.counter.copy()
        if learning:
            model.train_sample(image)
        else:
            model.respond(image)
        counter = model.counter - before
        return self.energy_model.estimate(counter).scaled(float(n_samples))

"""Memory- and energy-constrained SNN model search (paper Alg. 1).

The search sweeps the number of excitatory neurons in steps of ``n_add``.
For every candidate it

1. estimates the memory footprint analytically (``mem = (Pw + Pn) * BP``) and
   stops the sweep once the memory constraint is exceeded;
2. trains the candidate on a single sample, converts the measured operations
   into the single-sample training energy ``E1t``, and extrapolates the full
   training energy ``Et = E1t * N`` (the analytical energy model);
3. if the training energy fits the budget, repeats the measurement for one
   inference sample and checks the inference energy budget;
4. keeps every candidate that satisfies all three constraints.

The selected model is the **largest** feasible candidate, "since larger
networks usually achieve higher accuracy" (Section III-C).  Because each
candidate only processes a single sample instead of the full dataset, the
exploration is orders of magnitude faster than actually running every
configuration — the saving reported in Fig. 5(d,e).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import SpikeDynConfig
from repro.estimation.energy import EnergyEstimate, EnergyModel
from repro.estimation.hardware import DeviceProfile, GTX_1080_TI
from repro.estimation.memory import architecture_parameter_counts
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int


@dataclass
class ModelCandidate:
    """One explored SNN model size and its estimated costs.

    Attributes
    ----------
    n_exc:
        Number of excitatory neurons of this candidate.
    memory_bytes:
        Analytical memory footprint.
    training_energy, inference_energy:
        Extrapolated full-phase energies (``E = E1 * N``); ``None`` when the
        candidate was rejected before the corresponding measurement.
    sample_training_energy, sample_inference_energy:
        The measured single-sample energies (``E1``).
    feasible:
        Whether the candidate satisfies every provided constraint.
    rejection_reason:
        Human-readable reason when infeasible.
    """

    n_exc: int
    memory_bytes: float
    training_energy: Optional[EnergyEstimate] = None
    inference_energy: Optional[EnergyEstimate] = None
    sample_training_energy: Optional[EnergyEstimate] = None
    sample_inference_energy: Optional[EnergyEstimate] = None
    feasible: bool = False
    rejection_reason: str = ""


@dataclass
class ModelSearchResult:
    """Outcome of one Alg. 1 sweep.

    Attributes
    ----------
    candidates:
        Every explored candidate, in sweep order.
    selected:
        The largest feasible candidate, or ``None`` if no candidate fits.
    constraints:
        The constraint values the sweep was run with.
    """

    candidates: List[ModelCandidate] = field(default_factory=list)
    selected: Optional[ModelCandidate] = None
    constraints: Dict[str, float] = field(default_factory=dict)

    @property
    def feasible_candidates(self) -> List[ModelCandidate]:
        """All candidates that satisfy every constraint."""
        return [candidate for candidate in self.candidates if candidate.feasible]

    def exploration_time_seconds(self) -> float:
        """Wall-clock estimate of the search itself (one sample per phase)."""
        total = 0.0
        for candidate in self.candidates:
            if candidate.sample_training_energy is not None:
                total += candidate.sample_training_energy.seconds
            if candidate.sample_inference_energy is not None:
                total += candidate.sample_inference_energy.seconds
        return total

    def actual_run_time_seconds(self, n_train_samples: int,
                                n_inference_samples: int) -> float:
        """Wall-clock estimate of actually running every configuration fully."""
        check_positive_int(n_train_samples, "n_train_samples")
        check_positive_int(n_inference_samples, "n_inference_samples")
        total = 0.0
        for candidate in self.candidates:
            if candidate.sample_training_energy is not None:
                total += candidate.sample_training_energy.seconds * n_train_samples
            if candidate.sample_inference_energy is not None:
                total += candidate.sample_inference_energy.seconds * n_inference_samples
        return total


def _default_model_factory(config: SpikeDynConfig, rng):
    """Build a SpikeDyn model (imported lazily to avoid a circular import)."""
    from repro.models.spikedyn_model import SpikeDynModel

    return SpikeDynModel(config, rng=rng)


def _default_sample_image(config: SpikeDynConfig, rng) -> np.ndarray:
    """A synthetic digit image matching the configuration's input size."""
    from repro.datasets.synthetic_mnist import SyntheticDigits

    side = int(round(np.sqrt(config.n_input)))
    if side * side != config.n_input:
        # Non-square input sizes fall back to a random intensity image.
        return ensure_rng(rng).random(config.n_input)
    source = SyntheticDigits(image_size=side, seed=rng)
    return source.generate(0, 1, rng=rng)[0]


def search_snn_model(
    base_config: SpikeDynConfig,
    *,
    memory_budget_bytes: float,
    training_energy_budget_joules: Optional[float] = None,
    inference_energy_budget_joules: Optional[float] = None,
    n_training_samples: int = 60_000,
    n_inference_samples: int = 10_000,
    n_add: int = 100,
    device: DeviceProfile = GTX_1080_TI,
    model_factory: Optional[Callable] = None,
    sample_image: Optional[np.ndarray] = None,
    rng: SeedLike = None,
) -> ModelSearchResult:
    """Run the Alg. 1 sweep and return the explored candidates.

    Parameters
    ----------
    base_config:
        Configuration whose ``n_exc`` is swept; all other fields are reused.
    memory_budget_bytes:
        Memory constraint ``mem_c``.
    training_energy_budget_joules, inference_energy_budget_joules:
        Energy constraints ``Ect`` / ``Eci``; ``None`` disables the check.
    n_training_samples, n_inference_samples:
        Sample counts ``N`` used by the analytical energy model.
    n_add:
        Sweep step ``n_add`` (number of neurons added per iteration).
    device:
        Device profile used to convert operations into energy.
    model_factory:
        ``f(config, rng) -> model`` used to build each candidate; defaults to
        :class:`~repro.models.spikedyn_model.SpikeDynModel`.
    sample_image:
        Image used for the single-sample measurements; a synthetic digit of
        the right size is generated when omitted.
    rng:
        Seed or generator for model construction and sample generation.
    """
    check_positive(memory_budget_bytes, "memory_budget_bytes")
    check_positive_int(n_training_samples, "n_training_samples")
    check_positive_int(n_inference_samples, "n_inference_samples")
    check_positive_int(n_add, "n_add")
    if training_energy_budget_joules is not None:
        check_positive(training_energy_budget_joules, "training_energy_budget_joules")
    if inference_energy_budget_joules is not None:
        check_positive(inference_energy_budget_joules, "inference_energy_budget_joules")

    generator = ensure_rng(rng)
    factory = model_factory if model_factory is not None else _default_model_factory
    image = sample_image if sample_image is not None else _default_sample_image(
        base_config, generator
    )
    energy_model = EnergyModel(device)

    result = ModelSearchResult(
        constraints={
            "memory_budget_bytes": float(memory_budget_bytes),
            "training_energy_budget_joules": float(training_energy_budget_joules or 0.0),
            "inference_energy_budget_joules": float(inference_energy_budget_joules or 0.0),
            "n_training_samples": float(n_training_samples),
            "n_inference_samples": float(n_inference_samples),
        },
    )

    n_exc = n_add
    while True:
        counts = architecture_parameter_counts("spikedyn", base_config.n_input, n_exc)
        memory_bytes = counts.memory_bytes(base_config.bit_precision)
        if memory_bytes > memory_budget_bytes:
            # Alg. 1 stops as soon as the memory estimate exceeds the budget.
            break

        candidate = ModelCandidate(n_exc=n_exc, memory_bytes=memory_bytes)
        config = base_config.with_network_size(n_exc)
        model = factory(config, generator)

        # Training with one sample -> E1t -> Et = E1t * N (Alg. 1 lines 5-8).
        before = model.counter.copy()
        model.train_sample(image)
        train_counter = model.counter - before
        candidate.sample_training_energy = energy_model.estimate(train_counter)
        candidate.training_energy = candidate.sample_training_energy.scaled(
            float(n_training_samples)
        )
        if (training_energy_budget_joules is not None
                and candidate.training_energy.joules > training_energy_budget_joules):
            candidate.rejection_reason = "training energy exceeds budget"
            result.candidates.append(candidate)
            n_exc += n_add
            continue

        # Inference with one sample -> E1i -> Ei = E1i * N (Alg. 1 lines 9-12).
        before = model.counter.copy()
        model.respond(image)
        inference_counter = model.counter - before
        candidate.sample_inference_energy = energy_model.estimate(inference_counter)
        candidate.inference_energy = candidate.sample_inference_energy.scaled(
            float(n_inference_samples)
        )
        if (inference_energy_budget_joules is not None
                and candidate.inference_energy.joules > inference_energy_budget_joules):
            candidate.rejection_reason = "inference energy exceeds budget"
            result.candidates.append(candidate)
            n_exc += n_add
            continue

        candidate.feasible = True
        result.candidates.append(candidate)
        n_exc += n_add

    feasible = result.feasible_candidates
    if feasible:
        result.selected = max(feasible, key=lambda candidate: candidate.n_exc)
    return result

"""Synaptic weight decay (paper Section III-D).

The decay follows ``tau_decay * dw/dt = -w_decay * w``: weak synaptic
connections — which encode old and insignificant information — shrink over
the training period, freeing synapses to learn new tasks.  The decay rate is
chosen inversely proportional to the network size (``w_decay ∝ 1 / n_exc``):
a smaller network has fewer synapses available for new information, so it
must forget faster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.snn.simulation import OperationCounter
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

#: Proportionality constant for ``w_decay = DECAY_SCALE / n_exc``; chosen so
#: that the paper's best-performing value for a 400-neuron network
#: (``w_decay = 1e-2``, Fig. 6) is recovered.
DECAY_SCALE = 4.0


def decay_rate_for_network_size(n_exc: int, scale: float = DECAY_SCALE) -> float:
    """Weight-decay rate ``w_decay`` for a network with ``n_exc`` excitatory
    neurons (``w_decay = scale / n_exc``).

    Parameters
    ----------
    n_exc:
        Number of excitatory neurons.
    scale:
        Proportionality constant; the default reproduces the paper's
        ``w_decay = 1e-2`` at ``n_exc = 400``.
    """
    check_positive_int(n_exc, "n_exc")
    check_non_negative(scale, "scale")
    return scale / n_exc


class SynapticWeightDecay:
    """Applies ``tau_decay * dw/dt = -w_decay * w`` to a weight matrix.

    Parameters
    ----------
    w_decay:
        Decay rate (dimensionless); zero disables the decay entirely.
    tau_decay:
        Decay time constant in milliseconds.
    """

    def __init__(self, w_decay: float, tau_decay: float = 1.0e4) -> None:
        self.w_decay = check_non_negative(w_decay, "w_decay")
        self.tau_decay = check_positive(tau_decay, "tau_decay")

    @classmethod
    def for_network_size(cls, n_exc: int, *, scale: float = DECAY_SCALE,
                         tau_decay: float = 1.0e4) -> "SynapticWeightDecay":
        """Build a decay whose rate follows ``w_decay ∝ 1 / n_exc``."""
        return cls(decay_rate_for_network_size(n_exc, scale), tau_decay)

    @property
    def enabled(self) -> bool:
        """Whether the decay has any effect."""
        return self.w_decay > 0.0

    def decay_fraction(self, elapsed_ms: float) -> float:
        """Fraction by which weights shrink over ``elapsed_ms`` milliseconds.

        The exact solution of the decay ODE over a finite interval is
        ``w(t + T) = w(t) * exp(-w_decay * T / tau_decay)``; returning
        ``1 - exp(...)`` lets callers apply the decay lazily over a whole
        update window in a single operation.
        """
        check_non_negative(elapsed_ms, "elapsed_ms")
        if not self.enabled or elapsed_ms == 0.0:
            return 0.0
        return float(1.0 - np.exp(-self.w_decay * elapsed_ms / self.tau_decay))

    def apply(self, weights: np.ndarray, elapsed_ms: float,
              counter: Optional[OperationCounter] = None) -> np.ndarray:
        """Decay ``weights`` in place for ``elapsed_ms`` milliseconds."""
        fraction = self.decay_fraction(elapsed_ms)
        if fraction == 0.0:
            return weights
        weights *= 1.0 - fraction
        if counter is not None:
            counter.add(weight_updates=weights.size)
        return weights

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SynapticWeightDecay(w_decay={self.w_decay}, "
            f"tau_decay={self.tau_decay})"
        )

"""Configuration dataclass for SpikeDyn models and experiments.

All hyperparameters of the SpikeDyn pipeline live in one
:class:`SpikeDynConfig` object so that experiments, the model-search
algorithm, and the serialization helpers share a single source of truth.
Default values follow the paper (Diehl & Cook neuron constants, 350 ms
presentation window, rate coding with a 63.75 Hz peak rate) but every field
can be overridden, and :meth:`SpikeDynConfig.scaled_down` provides the
laptop-scale settings used by the test-suite and the benchmark harness.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.backends import normalize_backend_name
from repro.core.weight_decay import DECAY_SCALE, decay_rate_for_network_size
from repro.snn.simulation import SimulationParameters
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)


@dataclass
class SpikeDynConfig:
    """Hyperparameters of a SpikeDyn model.

    Parameters
    ----------
    n_input:
        Number of input neurons (pixels of the encoded image).
    n_exc:
        Number of excitatory neurons; the paper evaluates 200 (N200) and
        400 (N400).
    dt, t_sim, t_rest:
        Simulation timestep, presentation window, and rest period (ms).
    max_rate, intensity_scale:
        Poisson rate-coding parameters (Hz peak rate and scale factor).
    v_rest, v_reset, v_thresh, tau_m, refractory:
        Excitatory LIF constants (mV / ms).
    c_theta, theta_decay:
        Adaptive-threshold constants; the adaptation potential is
        ``theta = c_theta * theta_decay * t_sim`` (Section III-D).
    inhibition_strength, tau_inhibition:
        Direct lateral inhibition strength and conductance time constant.
    nu_pre, nu_post:
        STDP learning rates for depression and potentiation.
    tau_pre, tau_post:
        Spike-trace time constants (ms).
    spike_threshold:
        ``Sp_th`` used by the potentiation factor ``kp`` (Eq. 1a).
    update_interval:
        The "timestep" ``t_step`` of Alg. 2 — the window (ms) over which
        spikes are accumulated before a weight update is committed.
    w_decay:
        Weight-decay rate; ``None`` selects ``decay_scale / n_exc``.
    decay_scale, tau_decay:
        Constants of the weight-decay law.
    w_min, w_max:
        Hard weight bounds of the learned input→excitatory projection.
    norm_total:
        Per-excitatory-neuron target for incoming-weight normalization;
        ``None`` selects ``0.1 * n_input`` (the Diehl & Cook convention).
    soft_bounds:
        Use multiplicative (soft-bound) STDP updates.
    bit_precision:
        Bits per stored parameter, used by the analytical memory model.
    seed:
        Seed controlling weight initialization and Poisson encoding.
    backend:
        Registry name of the compute backend executing the simulation
        kernels (``"dense"`` / ``"sparse"``; see :mod:`repro.backends`).
    """

    n_input: int = 784
    n_exc: int = 400

    # Simulation timing.
    dt: float = 1.0
    t_sim: float = 350.0
    t_rest: float = 150.0

    # Input encoding.
    max_rate: float = 63.75
    intensity_scale: float = 4.0

    # Excitatory neuron constants.
    v_rest: float = -65.0
    v_reset: float = -65.0
    v_thresh: float = -52.0
    tau_m: float = 100.0
    refractory: float = 5.0

    # Adaptive membrane threshold potential.
    c_theta: float = 1.0
    theta_decay: float = 1.0e-3

    # Direct lateral inhibition.
    inhibition_strength: float = 17.0
    tau_inhibition: float = 2.0

    # Learning (Alg. 2).
    nu_pre: float = 1e-4
    nu_post: float = 1e-2
    tau_pre: float = 20.0
    tau_post: float = 20.0
    spike_threshold: float = 4.0
    update_interval: float = 10.0

    # Synaptic weight decay.
    w_decay: Optional[float] = None
    decay_scale: float = DECAY_SCALE
    tau_decay: float = 1.0e4

    # Weight bounds and normalization.
    w_min: float = 0.0
    w_max: float = 1.0
    norm_total: Optional[float] = None
    soft_bounds: bool = True

    # Analytical-model inputs.
    bit_precision: int = 32

    # Reproducibility.
    seed: Optional[int] = 0

    # Compute backend executing the simulation kernels ("dense" / "sparse";
    # see repro.backends).  Like ``seed`` it never changes *what* the model
    # computes, only how, so artifact compatibility checks exempt it.
    backend: str = "dense"

    def __post_init__(self) -> None:
        check_positive_int(self.n_input, "n_input")
        check_positive_int(self.n_exc, "n_exc")
        check_positive(self.dt, "dt")
        check_positive(self.t_sim, "t_sim")
        check_non_negative(self.t_rest, "t_rest")
        check_non_negative(self.max_rate, "max_rate")
        check_non_negative(self.intensity_scale, "intensity_scale")
        check_positive(self.tau_m, "tau_m")
        check_non_negative(self.refractory, "refractory")
        check_non_negative(self.c_theta, "c_theta")
        check_non_negative(self.theta_decay, "theta_decay")
        check_non_negative(self.inhibition_strength, "inhibition_strength")
        check_positive(self.tau_inhibition, "tau_inhibition")
        check_non_negative(self.nu_pre, "nu_pre")
        check_non_negative(self.nu_post, "nu_post")
        check_positive(self.tau_pre, "tau_pre")
        check_positive(self.tau_post, "tau_post")
        check_positive(self.spike_threshold, "spike_threshold")
        check_positive(self.update_interval, "update_interval")
        if self.w_decay is not None:
            check_non_negative(self.w_decay, "w_decay")
        check_non_negative(self.decay_scale, "decay_scale")
        check_positive(self.tau_decay, "tau_decay")
        check_positive_int(self.bit_precision, "bit_precision")
        normalize_backend_name(self.backend)
        if self.w_max <= self.w_min:
            raise ValueError(
                f"w_max ({self.w_max}) must exceed w_min ({self.w_min})"
            )
        if self.t_sim < self.update_interval:
            raise ValueError(
                "update_interval must not exceed the presentation window t_sim"
            )

    # -- derived quantities ---------------------------------------------------

    @property
    def effective_w_decay(self) -> float:
        """Weight-decay rate, defaulting to ``decay_scale / n_exc``."""
        if self.w_decay is not None:
            return self.w_decay
        return decay_rate_for_network_size(self.n_exc, self.decay_scale)

    @property
    def effective_norm_total(self) -> float:
        """Incoming-weight normalization target (``0.1 * n_input`` default)."""
        if self.norm_total is not None:
            return self.norm_total
        return 0.1 * self.n_input

    @property
    def adaptation_potential(self) -> float:
        """Adaptation potential ``theta = c_theta * theta_decay * t_sim``."""
        return self.c_theta * self.theta_decay * self.t_sim

    @property
    def tau_theta(self) -> float:
        """Decay time constant of the adaptation potential (``1/theta_decay``)."""
        if self.theta_decay <= 0:
            return float("inf")
        return 1.0 / self.theta_decay

    def simulation_parameters(self) -> SimulationParameters:
        """Timing parameters for :class:`repro.snn.network.Network`."""
        return SimulationParameters(dt=self.dt, t_sim=self.t_sim, t_rest=self.t_rest)

    # -- convenience constructors ---------------------------------------------

    def with_network_size(self, n_exc: int) -> "SpikeDynConfig":
        """Copy of this configuration with a different excitatory layer size."""
        return dataclasses.replace(self, n_exc=n_exc)

    def replace(self, **changes) -> "SpikeDynConfig":
        """Copy of this configuration with arbitrary field overrides."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def paper_n200(cls, **overrides) -> "SpikeDynConfig":
        """Paper-scale configuration with 200 excitatory neurons (N200)."""
        return cls(n_exc=200, **overrides)

    @classmethod
    def paper_n400(cls, **overrides) -> "SpikeDynConfig":
        """Paper-scale configuration with 400 excitatory neurons (N400)."""
        return cls(n_exc=400, **overrides)

    @classmethod
    def scaled_down(cls, *, n_input: int = 196, n_exc: int = 30,
                    t_sim: float = 60.0, update_interval: float = 10.0,
                    **overrides) -> "SpikeDynConfig":
        """Laptop-scale configuration used by tests and CI-sized experiments.

        The image is 14x14 instead of 28x28, the excitatory layer is small,
        and the presentation window is shortened; all learning mechanisms are
        otherwise identical to the paper-scale configuration.
        """
        return cls(
            n_input=n_input,
            n_exc=n_exc,
            t_sim=t_sim,
            t_rest=0.0,
            update_interval=update_interval,
            **overrides,
        )

    def to_dict(self) -> dict:
        """Plain-dict view of the configuration (for JSON serialization)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SpikeDynConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        field_names = {spec.name for spec in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ValueError(f"unknown configuration fields: {sorted(unknown)}")
        return cls(**data)

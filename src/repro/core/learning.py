"""SpikeDyn's continual and unsupervised learning rule (paper Alg. 2).

The rule combines the four mechanisms of Section III-D:

1. **Adaptive learning rates** — the potentiation factor ``kp`` and the
   depression factor ``kd`` (Eq. 1) scale the trace-STDP update of Eq. 2.
2. **Synaptic weight decay** — weak connections, which represent old and
   insignificant information, are gradually removed so the synapses become
   available for new tasks.
3. **Adaptive membrane threshold potential** — installed on the excitatory
   group by :class:`repro.core.adaptive_threshold.AdaptiveThresholdPolicy`
   (not part of this rule, but part of the same algorithm).
4. **Spurious-update reduction** — weight changes are committed only at
   update-window boundaries: potentiation of the most active postsynaptic
   neuron if at least one postsynaptic spike occurred in the window,
   depression of all synapses otherwise.

Compared to the per-spike-event updates of the baseline and ASP rules, this
drastically reduces the number of weight updates per sample, which is one of
the three sources of SpikeDyn's training-energy savings (together with the
eliminated inhibitory layer and the reduced exponential calculations).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.adaptive_rates import AdaptiveLearningRates
from repro.core.spurious import SpikeAccumulator
from repro.core.weight_decay import SynapticWeightDecay
from repro.learning.base import LearningRule
from repro.snn.simulation import OperationCounter
from repro.snn.synapses import Connection
from repro.utils.validation import check_non_negative, check_positive


class SpikeDynLearningRule(LearningRule):
    """Timestep-gated, activity-modulated STDP (Alg. 2 of the paper).

    Parameters
    ----------
    nu_pre:
        Base learning rate ``eta_pre`` of the depression term in Eq. 2.
    nu_post:
        Base learning rate ``eta_post`` of the potentiation term in Eq. 2.
    spike_threshold:
        Normalizing threshold ``Sp_th`` of the potentiation factor (Eq. 1a).
    update_interval:
        Window length ``t_step`` (ms) over which spikes are accumulated
        before a weight update is committed.
    weight_decay:
        The synaptic weight decay applied between updates; ``None`` disables
        it (used by the ablation benchmarks).
    adaptive_rates:
        When ``False``, ``kp`` and ``kd`` are pinned to 1 (ablation switch).
    gate_updates:
        When ``False``, the rule degenerates to per-timestep updates without
        the window gating (ablation switch for the spurious-update study).
    soft_bounds:
        Use multiplicative soft-bounded updates.
    tau_pre, tau_post, trace_mode:
        Spike-trace parameters (see :class:`repro.learning.base.LearningRule`).
    """

    # Window boundaries fire on the timestep clock regardless of activity
    # (a silent window still commits depression and lazy decay), so the
    # event engine must step this rule through silent gaps.
    supports_analytic_silence = False

    def __init__(
        self,
        *,
        nu_pre: float = 1e-4,
        nu_post: float = 1e-2,
        spike_threshold: float = 4.0,
        update_interval: float = 10.0,
        weight_decay: Optional[SynapticWeightDecay] = None,
        adaptive_rates: bool = True,
        gate_updates: bool = True,
        soft_bounds: bool = True,
        tau_pre: float = 20.0,
        tau_post: float = 20.0,
        trace_mode: str = "set",
    ) -> None:
        super().__init__(tau_pre=tau_pre, tau_post=tau_post, trace_mode=trace_mode)
        self.nu_pre = check_non_negative(nu_pre, "nu_pre")
        self.nu_post = check_non_negative(nu_post, "nu_post")
        self.update_interval = check_positive(update_interval, "update_interval")
        self.rates = AdaptiveLearningRates(spike_threshold=spike_threshold)
        self.weight_decay = weight_decay
        self.adaptive_rates = bool(adaptive_rates)
        self.gate_updates = bool(gate_updates)
        self.soft_bounds = bool(soft_bounds)
        self.accumulator: Optional[SpikeAccumulator] = None

    # -- internal helpers -----------------------------------------------------

    def _ensure_accumulator(self, connection: Connection) -> SpikeAccumulator:
        if (
            self.accumulator is None
            or self.accumulator.n_pre != connection.pre.n
            or self.accumulator.n_post != connection.post.n
        ):
            self.accumulator = SpikeAccumulator(connection.pre.n, connection.post.n)
        return self.accumulator

    def _steps_per_window(self, dt: float) -> int:
        return max(1, int(round(self.update_interval / dt)))

    def _factors(self) -> tuple:
        """Current (kp, kd) pair, honouring the adaptive-rates ablation switch."""
        if not self.adaptive_rates:
            return 1.0, 1.0
        accumulator = self.accumulator
        kp = self.rates.kp(accumulator.max_post)
        kd = self.rates.kd(accumulator.max_post, accumulator.max_pre)
        return kp, kd

    # -- weight updates (Eq. 2) -----------------------------------------------

    def _potentiate(self, connection: Connection, kp: float,
                    counter: Optional[OperationCounter]) -> None:
        """Potentiation of the most active postsynaptic neuron's synapses."""
        if kp <= 0.0 or self.nu_post <= 0.0:
            return
        target = self.accumulator.most_active_post
        column = connection.weights[:, target]
        delta = kp * self.nu_post * self.pre_trace.values
        if self.soft_bounds:
            delta = delta * (connection.w_max - column)
        column += delta
        np.clip(column, connection.w_min, connection.w_max, out=column)
        connection.weights[:, target] = column
        if counter is not None:
            counter.add(weight_updates=connection.pre.n)

    def _depress(self, connection: Connection, kd: float,
                 counter: Optional[OperationCounter]) -> None:
        """Depression of every synapse (no postsynaptic spike in the window)."""
        if kd <= 0.0 or self.nu_pre <= 0.0:
            return
        post_trace = self.post_trace.values
        delta = kd * self.nu_pre * post_trace[None, :]
        if self.soft_bounds:
            delta = delta * (connection.weights - connection.w_min)
        connection.weights -= delta
        connection.clip_weights()
        if counter is not None:
            counter.add(weight_updates=connection.weights.size)

    def _apply_decay(self, connection: Connection, elapsed_ms: float,
                     counter: Optional[OperationCounter]) -> None:
        """Lazily apply the accumulated weight decay over ``elapsed_ms``.

        Alg. 2 applies the decay on every non-boundary timestep; because the
        decay is a linear ODE, accumulating it and applying the exact
        closed-form factor once per window is mathematically equivalent and
        mirrors how an optimized implementation would batch the operation.
        """
        if self.weight_decay is None or not self.weight_decay.enabled:
            return
        self.weight_decay.apply(connection.weights, elapsed_ms, counter)
        connection.clip_weights()

    # -- LearningRule interface -----------------------------------------------

    def reset(self) -> None:
        super().reset()
        self.accumulator = None

    def on_sample_start(self, connection: Connection) -> None:
        super().on_sample_start(connection)
        self._ensure_accumulator(connection).reset()

    def step(self, connection: Connection, dt: float, t_index: int,
             counter: Optional[OperationCounter] = None) -> None:
        self._update_traces(connection, dt, counter)
        accumulator = self._ensure_accumulator(connection)
        accumulator.update(connection.pre.spikes, connection.post.spikes)

        steps_per_window = self._steps_per_window(dt) if self.gate_updates else 1
        at_boundary = (t_index + 1) % steps_per_window == 0
        if not at_boundary:
            return

        kp, kd = self._factors()
        if accumulator.post_spiked_in_window:
            self._potentiate(connection, kp, counter)
        else:
            self._depress(connection, kd, counter)
        self._apply_decay(connection, steps_per_window * dt, counter)
        accumulator.close_window()

    def on_sample_end(self, connection: Connection,
                      counter: Optional[OperationCounter] = None) -> None:
        super().on_sample_end(connection, counter)
        if self.accumulator is not None:
            self.accumulator.reset()

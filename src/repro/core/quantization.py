"""Weight quantization for reduced bit-precision deployments.

The analytical memory model of Section III-C charges every stored parameter
``BP`` bits, and the paper's memory budget therefore scales linearly with the
chosen precision.  This module provides the functional counterpart: uniform
quantization of the learned input→excitatory weights to a given number of
bits, so the accuracy cost of a smaller ``BP`` can be measured alongside the
memory saving (the trade-off the authors' earlier FSpiNN framework, cited as
[6], optimizes explicitly).

Quantization is applied post-training ("quantize for deployment"): training
runs at full precision, then :func:`quantize_model_weights` snaps the learned
weights onto the ``2**bits`` level grid spanning ``[w_min, w_max]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.estimation.memory import architecture_parameter_counts
from repro.utils.validation import check_positive_int


def quantization_levels(bits: int, w_min: float, w_max: float) -> np.ndarray:
    """The ``2**bits`` representable weight values in ``[w_min, w_max]``.

    Parameters
    ----------
    bits:
        Precision in bits (1–32).
    w_min, w_max:
        Weight bounds the grid spans.
    """
    check_positive_int(bits, "bits")
    if bits > 32:
        raise ValueError(f"bits must be at most 32, got {bits}")
    if w_max <= w_min:
        raise ValueError(f"w_max ({w_max}) must exceed w_min ({w_min})")
    return np.linspace(w_min, w_max, 2 ** bits)


def quantize_weights(weights: np.ndarray, bits: int, *, w_min: float,
                     w_max: float) -> np.ndarray:
    """Uniformly quantize ``weights`` to ``bits`` of precision.

    Values are clipped into ``[w_min, w_max]`` and rounded to the nearest of
    the ``2**bits`` levels.  The input array is not modified.
    """
    check_positive_int(bits, "bits")
    if bits > 32:
        raise ValueError(f"bits must be at most 32, got {bits}")
    if w_max <= w_min:
        raise ValueError(f"w_max ({w_max}) must exceed w_min ({w_min})")
    weights = np.asarray(weights, dtype=float)
    if bits >= 24:
        # Indistinguishable from full precision for float weights in [0, 1];
        # avoid building a multi-million-entry level grid.
        return np.clip(weights, w_min, w_max)

    clipped = np.clip(weights, w_min, w_max)
    step = (w_max - w_min) / (2 ** bits - 1)
    indices = np.round((clipped - w_min) / step)
    return w_min + indices * step


def quantization_error(weights: np.ndarray, bits: int, *, w_min: float,
                       w_max: float) -> float:
    """Root-mean-square error introduced by quantizing ``weights``."""
    weights = np.asarray(weights, dtype=float)
    quantized = quantize_weights(weights, bits, w_min=w_min, w_max=w_max)
    return float(np.sqrt(np.mean((weights - quantized) ** 2)))


@dataclass(frozen=True)
class QuantizationReport:
    """Outcome of quantizing one model for deployment.

    Attributes
    ----------
    bits:
        Deployed bit precision.
    memory_bytes:
        Analytical memory footprint ``(Pw + Pn) * bits`` of the quantized model.
    full_precision_memory_bytes:
        Footprint at the model's configured (training) precision.
    rms_error:
        Root-mean-square weight perturbation introduced by the quantization.
    """

    bits: int
    memory_bytes: float
    full_precision_memory_bytes: float
    rms_error: float

    @property
    def memory_saving(self) -> float:
        """Fraction of memory saved relative to the full-precision model."""
        if self.full_precision_memory_bytes == 0:
            return 0.0
        return 1.0 - self.memory_bytes / self.full_precision_memory_bytes


def quantize_model_weights(model, bits: int,
                           *, reference_bits: Optional[int] = None
                           ) -> QuantizationReport:
    """Quantize a trained classifier's learned weights in place.

    Parameters
    ----------
    model:
        Any :class:`~repro.models.base.UnsupervisedDigitClassifier`; its
        ``input_to_exc`` weights are snapped onto the quantization grid.
    bits:
        Deployed precision.
    reference_bits:
        Precision used for the "full precision" memory comparison; defaults to
        the model configuration's ``bit_precision``.

    Returns
    -------
    QuantizationReport
        Memory footprints and the introduced weight perturbation.
    """
    config = model.config
    connection = model.network.connection("input_to_exc")
    original = connection.weights.copy()
    quantized = quantize_weights(original, bits,
                                 w_min=connection.w_min, w_max=connection.w_max)
    connection.weights[:] = quantized

    counts = architecture_parameter_counts(
        model.architecture_name(), config.n_input, config.n_exc
    )
    reference = reference_bits if reference_bits is not None else config.bit_precision
    return QuantizationReport(
        bits=bits,
        memory_bytes=counts.memory_bytes(bits),
        full_precision_memory_bytes=counts.memory_bytes(reference),
        rms_error=float(np.sqrt(np.mean((original - quantized) ** 2))),
    )

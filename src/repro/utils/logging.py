"""Lightweight run logging, plain and structured.

The experiments in the benchmark harness can run for a while; a tiny logging
facade keeps progress visible without pulling in heavyweight dependencies or
configuring the root logger behind the user's back.

Two flavours share the ``repro.*`` stdlib logger hierarchy:

* :func:`get_logger` / :func:`configure_logging` — classic human-readable
  lines (``%(asctime)s %(name)s %(levelname)s: message``);
* :func:`get_struct_logger` / :func:`configure_structured_logging` — the
  JSON-lines key-value emitter from
  :mod:`repro.observability.structlog` (``bind(**ctx)``-style context,
  one JSON object per event) adopted by the runner scheduler, the worker,
  and the serving stack.  ``REPRO_LOG_JSON=1`` switches the CLI onto it.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro.observability.structlog import (
    StructLogger,
    configure_structured_logging,
    get_struct_logger,
)

__all__ = [
    "StructLogger",
    "configure_logging",
    "configure_structured_logging",
    "get_logger",
    "get_struct_logger",
]

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger, namespaced under ``repro``.

    Parameters
    ----------
    name:
        Optional child name (e.g. ``"core.model_search"``).
    """
    if name:
        return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")
    return logging.getLogger(_LIBRARY_LOGGER_NAME)


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a simple stream handler to the library logger.

    Safe to call multiple times: previously attached handlers installed by
    this function are replaced rather than duplicated.
    """
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    stream = stream if stream is not None else sys.stderr
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s"))
    handler._repro_handler = True
    logger.addHandler(handler)
    return logger

"""Lightweight run logging.

The experiments in the benchmark harness can run for a while; a tiny logging
facade keeps progress visible without pulling in heavyweight dependencies or
configuring the root logger behind the user's back.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a library logger, namespaced under ``repro``.

    Parameters
    ----------
    name:
        Optional child name (e.g. ``"core.model_search"``).
    """
    if name:
        return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")
    return logging.getLogger(_LIBRARY_LOGGER_NAME)


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a simple stream handler to the library logger.

    Safe to call multiple times: previously attached handlers installed by
    this function are replaced rather than duplicated.
    """
    logger = logging.getLogger(_LIBRARY_LOGGER_NAME)
    logger.setLevel(level)
    stream = stream if stream is not None else sys.stderr
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler._repro_handler = True
    logger.addHandler(handler)
    return logger

"""Serialization helpers for model weights and experiment configurations.

Model state is stored as an ``.npz`` archive (arrays) next to a ``.json``
file (scalar configuration), which keeps saved experiments human-inspectable
and free of pickle security concerns.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


class ArtifactError(ValueError):
    """A saved model artifact is missing, incompatible, or corrupt.

    Raised with a message that names the offending file and, for shape
    mismatches, the expected-vs-found shapes and the artifact's schema
    version — loading never silently mis-loads state.  Subclasses
    :class:`ValueError` so pre-existing ``except ValueError`` handlers keep
    working.
    """


def _json_default(obj: Any):
    """JSON encoder fallback that understands numpy scalars and arrays."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


def save_json(data: Mapping[str, Any], path: PathLike) -> Path:
    """Write ``data`` to ``path`` as pretty-printed JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(data), handle, indent=2, sort_keys=True, default=_json_default)
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON file written by :func:`save_json`."""
    with open(Path(path), "r", encoding="utf-8") as handle:
        return json.load(handle)


def atomic_write_json(data: Mapping[str, Any], path: PathLike) -> Path:
    """Write ``data`` to ``path`` as JSON via a temp file + atomic rename.

    Readers never observe a truncated file: the record is complete or absent.
    The temp file lives in the destination directory (same filesystem, so
    ``os.replace`` is atomic) with a leading dot so directory scans can skip
    in-flight writes; it is removed if anything fails before the rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(dict(data), handle, indent=2, sort_keys=True, default=_json_default)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def save_arrays(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a mapping of named arrays to a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(val) for key, val in arrays.items()})
    # numpy appends .npz when missing; normalise the returned path accordingly.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` archive written by :func:`save_arrays` into a dict."""
    with np.load(Path(path)) as archive:
        return {key: archive[key].copy() for key in archive.files}

"""Serialization helpers for model weights and experiment configurations.

Model state is stored as an ``.npz`` archive (arrays) next to a ``.json``
file (scalar configuration), which keeps saved experiments human-inspectable
and free of pickle security concerns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, Path]


def _json_default(obj: Any):
    """JSON encoder fallback that understands numpy scalars and arrays."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"Object of type {type(obj).__name__} is not JSON serializable")


def save_json(data: Mapping[str, Any], path: PathLike) -> Path:
    """Write ``data`` to ``path`` as pretty-printed JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(data), handle, indent=2, sort_keys=True, default=_json_default)
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON file written by :func:`save_json`."""
    with open(Path(path), "r", encoding="utf-8") as handle:
        return json.load(handle)


def save_arrays(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a mapping of named arrays to a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(val) for key, val in arrays.items()})
    # numpy appends .npz when missing; normalise the returned path accordingly.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` archive written by :func:`save_arrays` into a dict."""
    with np.load(Path(path)) as archive:
        return {key: archive[key].copy() for key in archive.files}

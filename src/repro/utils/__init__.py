"""Shared utilities: RNG management, validation, logging, and serialization."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "check_shape",
]

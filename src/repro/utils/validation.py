"""Argument-validation helpers used across the library.

These helpers raise uniform, descriptive errors so that misconfigured
experiments fail early with actionable messages instead of producing
silently wrong simulation results.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is finite and >= 0."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` is a strictly positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Alias of :func:`check_probability` for readability at call sites."""
    return check_probability(value, name)


def check_shape(array: np.ndarray, shape: Tuple[int, ...], name: str) -> np.ndarray:
    """Raise ``ValueError`` unless ``array`` has exactly the expected ``shape``."""
    array = np.asarray(array)
    if array.shape != tuple(shape):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {array.shape}")
    return array


def check_choice(value, choices: Sequence, name: str):
    """Raise ``ValueError`` unless ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValueError(f"{name} must be one of {list(choices)!r}, got {value!r}")
    return value

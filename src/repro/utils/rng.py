"""Random-number-generator helpers.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the conversion here keeps the
behaviour uniform and the experiments reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator usable by the caller.

    Raises
    ------
    TypeError
        If ``seed`` is neither ``None``, an integer, nor a generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, n: int) -> list:
    """Create ``n`` statistically independent child generators.

    Parameters
    ----------
    seed:
        Seed or generator for the parent stream.
    n:
        Number of independent child generators to create.

    Returns
    -------
    list of numpy.random.Generator
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(seed)
    seeds = parent.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]

"""SpikeDyn reproduction library.

A from-scratch Python implementation of *SpikeDyn: A Framework for
Energy-Efficient Spiking Neural Networks with Continual and Unsupervised
Learning Capabilities in Dynamic Environments* (Putra & Shafique, DAC 2021),
together with every substrate the paper depends on: a clock-driven SNN
simulation engine, spike encoders, the Diehl & Cook and ASP comparison
partners, analytical memory/energy/latency models for the paper's three GPU
targets, a synthetic MNIST-like digit source, and the dynamic /
non-dynamic evaluation protocols.

Quickstart
----------
>>> from repro import SpikeDynConfig, SpikeDynModel, SyntheticDigits
>>> from repro.evaluation import run_dynamic_protocol
>>> config = SpikeDynConfig.scaled_down(n_exc=20, seed=0)
>>> source = SyntheticDigits(image_size=14, seed=0)
>>> model = SpikeDynModel(config)
>>> result = run_dynamic_protocol(model, source, class_sequence=[0, 1],
...                               samples_per_task=3, eval_samples_per_class=2,
...                               rng=0)
"""

from repro.core.config import SpikeDynConfig
from repro.backends import available_backends, get_backend
from repro.core.framework import SpikeDynFramework
from repro.core.learning import SpikeDynLearningRule
from repro.core.model_search import search_snn_model
from repro.datasets.synthetic_mnist import SyntheticDigits
from repro.models.asp_model import ASPModel
from repro.models.diehl_cook import DiehlCookModel
from repro.models.spikedyn_model import SpikeDynModel

# Part of every content-addressed job key: bumping the version invalidates
# the on-disk result cache by design.
__version__ = "1.10.0"

__all__ = [
    "ASPModel",
    "DiehlCookModel",
    "SpikeDynConfig",
    "SpikeDynFramework",
    "SpikeDynLearningRule",
    "SpikeDynModel",
    "SyntheticDigits",
    "available_backends",
    "get_backend",
    "search_snn_model",
    "__version__",
]

"""Per-request inference: seeded encoding, batched prediction, offline twin.

**The equivalence contract.**  Poisson rate coding is stochastic, so "the
same prediction" is only well-defined once the encoding noise is pinned
down.  Serving therefore derives every request's spike train from a
*per-request seed*: :func:`encode_request` draws the train from a fresh
``numpy`` generator seeded with it, making the train — and everything
downstream — a pure function of ``(image, seed, model state)``.

The batched engine guarantees that ``Network.run_batch`` performs, per
sample, exactly the same floating-point operations regardless of which other
samples share the batch (see :meth:`repro.snn.network.Network.run_batch`).
Combining the two facts: however the micro-batcher groups concurrent
requests, each request's spike counts — and hence its prediction — are
bit-for-bit identical to :func:`offline_predictions`, the plain offline
evaluation path over the same ``(image, seed)`` pairs.  The serving tests
assert this end to end.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.evaluation.labeling import class_scores
from repro.models.base import N_CLASSES, UnsupervisedDigitClassifier
from repro.observability.tracing import TraceContext, record_span

#: Seeds are folded into numpy's 32-bit range.
_SEED_MODULUS = 2 ** 32


def derive_request_seed(image: np.ndarray) -> int:
    """Deterministic per-request seed derived from the image content.

    Used when a request carries no explicit seed: the same image always
    encodes to the same spike train, so repeated queries of one image are
    reproducible (and cacheable) without any client cooperation.
    """
    payload = np.ascontiguousarray(np.asarray(image, dtype=float))
    return zlib.crc32(payload.tobytes()) % _SEED_MODULUS


@dataclass
class PredictRequest:
    """One inference request: an image plus its encoding seed.

    ``trace`` is the span context this request runs under when distributed
    tracing is active (``None`` otherwise); it is excluded from equality so
    tracing never changes how requests compare or hash.
    """

    image: np.ndarray
    seed: Optional[int] = None
    trace: Optional[TraceContext] = field(default=None, compare=False, repr=False)

    def resolved_seed(self) -> int:
        """The request's seed, derived from the image when not supplied."""
        if self.seed is None:
            return derive_request_seed(self.image)
        return int(self.seed) % _SEED_MODULUS


@dataclass
class PredictResult:
    """Outcome of one served request."""

    prediction: int
    seed: int
    spike_count: float
    scores: np.ndarray = field(repr=False)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view returned by the HTTP API."""
        return {
            "prediction": int(self.prediction),
            "seed": int(self.seed),
            "spike_count": float(self.spike_count),
            "scores": [float(value) for value in self.scores],
        }


def encode_request(model: UnsupervisedDigitClassifier, image: np.ndarray,
                   seed: int) -> np.ndarray:
    """Encode one image with a generator freshly seeded by ``seed``.

    The spike probabilities come from the model's own encoder (duration,
    dt, rate constants), but the Bernoulli draws use a dedicated generator,
    so the train depends only on ``(image, seed)`` — never on how many
    requests were encoded before this one.
    """
    probabilities = model.encoder.spike_probabilities(model._check_image(image))
    draws = np.random.default_rng(int(seed)).random(
        (model.encoder.timesteps, probabilities.size)
    )
    return draws < probabilities[None, :]


class PredictionService:
    """Stateless inference wrapper around one model replica.

    ``predict_batch`` is the single entry point the micro-batcher calls: it
    encodes every request with its own seed, advances them through
    ``Network.run_batch`` in one vectorized step, and reads the predictions
    out of the neuron-label assignments.  Inference runs with plasticity
    disabled and the engine restores all adaptation state after each batch,
    so consecutive batches are independent — a replica never drifts.
    """

    def __init__(self, model: UnsupervisedDigitClassifier,
                 span_sink: Optional[Any] = None) -> None:
        self.model = model
        #: Where per-phase span records land when requests carry a trace
        #: context (typically the process-local :class:`RunLedger`).
        self.span_sink = span_sink

    @property
    def n_input(self) -> int:
        return self.model.n_input

    def _encode_timed(self, request: PredictRequest, seed: int) -> np.ndarray:
        """``encode_request`` plus one ``encode`` span under the request."""
        started = time.perf_counter()
        train = encode_request(self.model, request.image, seed)
        record_span(self.span_sink, request.trace.child(), "encode",
                    time.perf_counter() - started, seed=int(seed))
        return train

    def predict_batch(self, requests: Sequence[PredictRequest]
                      ) -> List[PredictResult]:
        """Predictions for a micro-batch of requests, in request order.

        When tracing is active (a request carries a trace context and a
        span sink is configured) the encode and kernel phases are timed and
        recorded per request — the numeric work is identical either way, so
        traced and untraced predictions stay bit-for-bit equal.
        """
        if not requests:
            return []
        model = self.model
        seeds = [request.resolved_seed() for request in requests]
        traced = self.span_sink is not None and any(
            request.trace is not None for request in requests
        )
        trains = np.stack([
            self._encode_timed(request, seed)
            if traced and request.trace is not None
            else encode_request(model, request.image, seed)
            for request, seed in zip(requests, seeds)
        ])
        kernel_started = time.perf_counter()
        results = model.network.run_batch(trains, learning=False)
        if traced:
            # One shared kernel execution; each traced request records the
            # phase under its own span so every trace tree is complete.
            kernel_s = time.perf_counter() - kernel_started
            for request in requests:
                if request.trace is not None:
                    record_span(self.span_sink, request.trace.child(),
                                "kernel", kernel_s,
                                shared_batch=len(requests))
        responses = np.stack([result.counts("excitatory")
                              for result in results]).astype(float)
        scores = class_scores(responses, model.assignments, N_CLASSES)
        predictions = np.argmax(scores, axis=1)
        return [
            PredictResult(
                prediction=int(predictions[index]),
                seed=int(seeds[index]),
                spike_count=float(responses[index].sum()),
                scores=scores[index],
            )
            for index in range(len(requests))
        ]


def offline_predictions(model: UnsupervisedDigitClassifier,
                        images: Sequence[np.ndarray],
                        seeds: Optional[Sequence[Optional[int]]] = None,
                        batch_size: Optional[int] = None) -> np.ndarray:
    """The offline reference path the serving layer must reproduce.

    Encodes every image with its per-request seed (derived from the image
    when ``seeds`` is omitted, exactly like the service) and evaluates them
    through the model's chunked ``eval_batch_size`` path — the same grouping
    ``model.predict`` uses offline.  Serving predictions for the same
    ``(image, seed)`` pairs are bit-for-bit identical however the
    micro-batcher happened to group them.
    """
    if seeds is None:
        seeds = [None] * len(images)
    if len(seeds) != len(images):
        raise ValueError(
            f"got {len(images)} images but {len(seeds)} seeds"
        )
    requests = [PredictRequest(image=np.asarray(image, dtype=float), seed=seed)
                for image, seed in zip(images, seeds)]
    limit = batch_size if batch_size is not None else model.eval_batch_size
    if limit is None or limit < 1:
        limit = 1
    service = PredictionService(model)
    predictions = np.zeros(len(requests), dtype=int)
    for start in range(0, len(requests), int(limit)):
        chunk = requests[start:start + int(limit)]
        for offset, result in enumerate(service.predict_batch(chunk)):
            predictions[start + offset] = result.prediction
    return predictions

"""Process-sharded replica pool: crash-isolated workers behind one queue.

:class:`ShardProcessPool` is the multi-core sibling of
:class:`~repro.serving.pool.ReplicaPool`.  It keeps the same front half —
one :class:`~repro.serving.batcher.MicroBatcher` fed by :meth:`submit`,
futures resolved per request — but each worker is an OS **process**
(``spawn`` start method, the same crash-isolation machinery as
:mod:`repro.runner.scheduler`) owning an independent model replica rebuilt
from the artifact directory.  The pure-Python simulation engine holds the
GIL between numpy calls, which caps a thread pool at roughly one core;
process shards sidestep the GIL entirely, so throughput scales with cores.

Per shard, a parent-side *dispatcher thread* claims micro-batches from the
shared queue and round-trips them over a duplex pipe to its worker process.
The dispatcher is also the supervisor: a shard that dies mid-batch (killed,
segfaulted, OOM) or exceeds the batch deadline is detected on the spot,
**respawned without dropping the listener**, and the interrupted batch is
retried once on the fresh process before any caller sees a
:class:`~repro.serving.errors.ShardCrashedError` — which the router treats
as transient and retries with backoff anyway.

Every executed batch is appended to the ledger with its shard index, and
spawn/crash/respawn transitions are recorded as ``serving_shard`` entries,
so a deployment's churn is auditable after the fact.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.observability.ledger import (
    KIND_SERVING_BATCH,
    KIND_SERVING_SHARD,
    RunLedger,
    artifact_lineage,
)
from repro.observability.structlog import configure_from_env, get_struct_logger
from repro.observability.tracing import TraceContext, record_span
from repro.serving.artifacts import ModelArtifact, load_artifact
from repro.serving.batcher import MicroBatcher, PendingRequest
from repro.serving.drift import SpikeCountDriftDetector
from repro.serving.errors import ShardCrashedError
from repro.serving.inference import PredictionService, PredictRequest, PredictResult
from repro.serving.metrics import ServingMetrics
from repro.utils.validation import check_positive_int

_log = get_struct_logger("serving.shards")

#: Seconds a freshly spawned shard gets to load its artifact and report ready.
DEFAULT_SPAWN_TIMEOUT_S = 120.0

#: Wall-clock budget of one micro-batch round-trip before the shard is
#: declared hung, killed, and respawned.
DEFAULT_BATCH_TIMEOUT_S = 120.0

#: Poll granularity of the dispatcher's pipe wait.
_POLL_S = 0.1


def _shard_main(artifact_dir: str, backend: Optional[str],
                conn: "multiprocessing.connection.Connection",
                shard_index: int, ledger_root: Optional[str] = None) -> None:
    """Worker-process entry point: load the artifact, answer predict RPCs.

    Protocol (parent -> child / child -> parent), one message per batch:

    * ``("predict", [(image, seed, trace), ...])`` -> ``("ok", [result,
      ...])`` or ``("error", "message")`` — a raising batch reports instead
      of dying.  ``trace`` is the request's serialized
      :class:`~repro.observability.tracing.TraceContext` (``None`` when the
      request is untraced);
    * ``("stop",)`` -> the child exits cleanly (no reply).

    On start the child sends one ``("ready", info)`` message after the model
    is rebuilt, so the parent can distinguish a slow load from a crash.
    ``ledger_root`` points the worker at the parent's ledger directory so
    worker-side spans (``shard_batch``, ``encode``, ``kernel``) land in the
    same trace store as the parent's.
    """
    configure_from_env()
    log = get_struct_logger("serving.shard").bind(shard=shard_index)
    try:
        artifact = load_artifact(artifact_dir)
        model = artifact.build_model(backend=backend)
        span_ledger = RunLedger(ledger_root) if ledger_root else None
        service = PredictionService(model, span_sink=span_ledger)
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(("failed", f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        return
    conn.send(("ready", {
        "model": model.name,
        "backend": model.backend_name,
        "n_input": service.n_input,
    }))
    log.info("shard_ready", model=model.name, backend=model.backend_name)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            conn.close()
            return
        if message[0] != "predict":  # pragma: no cover - protocol guard
            conn.send(("error", f"unknown message {message[0]!r}"))
            continue
        requests = []
        for image, seed, trace in message[1]:
            request = PredictRequest(image=np.asarray(image, dtype=float),
                                     seed=seed)
            if trace is not None and span_ledger is not None:
                # Child of the parent-side shard_rpc span: the worker's
                # whole batch phase, under which encode/kernel nest.
                request.trace = TraceContext.from_dict(trace).child()
            requests.append(request)
        batch_started = time.perf_counter()
        try:
            results = service.predict_batch(requests)
        except Exception as error:  # noqa: BLE001 - fanned back to callers
            conn.send(("error", f"{type(error).__name__}: {error}"))
            continue
        batch_s = time.perf_counter() - batch_started
        for request in requests:
            if request.trace is not None:
                record_span(span_ledger, request.trace, "shard_batch",
                            batch_s, shard=shard_index,
                            batch_size=len(requests))
        conn.send(("ok", [
            (r.prediction, r.seed, r.spike_count, r.scores) for r in results
        ]))


class _ShardHandle:
    """Parent-side view of one live shard process."""

    def __init__(self, index: int,
                 process: multiprocessing.process.BaseProcess,
                 conn: "multiprocessing.connection.Connection") -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.batches = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():  # pragma: no cover - stubborn child
                self.process.kill()
                self.process.join()
        else:
            self.process.join()


class ShardProcessPool:
    """Micro-batching inference pool sharded across worker processes.

    Drop-in for :class:`~repro.serving.pool.ReplicaPool` everywhere the
    serving stack cares (``submit`` / ``predict`` / ``metrics_snapshot`` /
    ``n_input`` / ``model_name`` / ``backend_name`` / lifecycle), with the
    worker threads replaced by supervised worker processes.

    Parameters
    ----------
    artifact_dir:
        The artifact directory every shard rebuilds its replica from (the
        path crosses the process boundary, not the model).
    shards:
        Number of worker processes.
    backend:
        Compute-backend override for every shard (default: the artifact's).
    max_batch, max_wait_ms, max_queue:
        Micro-batcher knobs, identical to :class:`ReplicaPool`.
    spawn_timeout_s, batch_timeout_s:
        Supervision budgets: artifact-load deadline per spawn, round-trip
        deadline per batch (a shard past it is killed and respawned).
    metrics, drift_detector, ledger, lineage:
        As on :class:`ReplicaPool`; ledger entries additionally carry the
        shard index, and shard lifecycle transitions are recorded as
        ``serving_shard`` entries.
    """

    def __init__(self, artifact_dir, shards: int = 2, *,
                 backend: Optional[str] = None, max_batch: int = 32,
                 max_wait_ms: float = 5.0, max_queue: int = 1024,
                 spawn_timeout_s: float = DEFAULT_SPAWN_TIMEOUT_S,
                 batch_timeout_s: float = DEFAULT_BATCH_TIMEOUT_S,
                 metrics: Optional[ServingMetrics] = None,
                 drift_detector: Optional[SpikeCountDriftDetector] = None,
                 ledger: Optional[RunLedger] = None,
                 lineage: Optional[dict] = None) -> None:
        self.artifact_dir = str(artifact_dir)
        self.shards = check_positive_int(shards, "shards")
        self.backend = backend
        # Validates the artifact in the parent at construction time, so a
        # broken path fails fast instead of inside the first spawn.
        self.artifact: ModelArtifact = load_artifact(self.artifact_dir)
        self.batcher = MicroBatcher(max_batch=max_batch,
                                    max_wait_ms=max_wait_ms,
                                    max_queue=max_queue)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.batch_timeout_s = float(batch_timeout_s)
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.drift_detector = drift_detector
        self.ledger = ledger
        self.lineage = dict(lineage) if lineage is not None \
            else artifact_lineage(self.artifact)
        if backend is not None:
            self.lineage["backend"] = backend
        self._context = multiprocessing.get_context("spawn")
        self._handles: List[Optional[_ShardHandle]] = [None] * self.shards
        self._threads: List[threading.Thread] = []
        self._respawns_total = 0
        self._started = False
        self._lock = threading.Lock()

    @classmethod
    def from_artifact(cls, artifact: ModelArtifact, shards: int = 2,
                      **kwargs) -> "ShardProcessPool":
        """Pool sharding ``artifact`` — mirrors ``ReplicaPool.from_artifact``.

        The artifact must still exist on disk at ``artifact.path``: unlike
        the thread pool, shard processes rebuild their replicas from the
        directory, not from the in-memory arrays.
        """
        return cls(artifact.path, shards, **kwargs)

    # -- introspection -------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker count (= shards), for API parity with ``ReplicaPool``."""
        return self.shards

    @property
    def n_input(self) -> int:
        return self.artifact.n_input

    @property
    def model_name(self) -> str:
        return self.artifact.model_name

    @property
    def backend_name(self) -> str:
        return self.backend if self.backend is not None else self.artifact.backend

    @property
    def queue_depth(self) -> int:
        return self.batcher.depth

    @property
    def running(self) -> bool:
        with self._lock:
            return self._started

    @property
    def respawns_total(self) -> int:
        with self._lock:
            return self._respawns_total

    def shard_pids(self) -> List[Optional[int]]:
        """PID of every shard (``None`` for a currently-dead slot)."""
        with self._lock:
            return [handle.pid if handle is not None and handle.alive else None
                    for handle in self._handles]

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ShardProcessPool":
        """Spawn every shard, wait until all report ready, start dispatch.

        Like :class:`ReplicaPool`, a stopped pool cannot be restarted —
        build a fresh one.
        """
        if self.batcher.closed:
            raise RuntimeError(
                "this pool has been stopped and cannot be restarted; "
                "build a new ShardProcessPool"
            )
        with self._lock:
            if self._started:
                return self
            self._started = True
        # Spawn all shards first, then wait for readiness — the expensive
        # interpreter start-ups overlap instead of serializing.
        spawned = [self._spawn(index) for index in range(self.shards)]
        for index, handle in enumerate(spawned):
            self._await_ready(handle)
            with self._lock:
                self._handles[index] = handle
        for index in range(self.shards):
            thread = threading.Thread(
                target=self._dispatch_loop, args=(index,),
                name=f"repro-shard-dispatch-{index}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()
        _log.info("shard_pool_started", shards=self.shards,
                  model=self.model_name, backend=self.backend_name,
                  max_batch=self.batcher.max_batch)
        return self

    def stop(self, timeout: float = 10.0, cancel_pending: bool = False) -> None:
        """Close the queue, stop the dispatchers, shut every shard down."""
        self.batcher.close(cancel_pending=cancel_pending)
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()
        with self._lock:
            handles, self._handles = self._handles, [None] * self.shards
            self._started = False
        for handle in handles:
            if handle is None:
                continue
            try:
                handle.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            handle.process.join(2.0)
            handle.kill()
            self._ledger_shard("stopped", handle.index, handle.pid)

    def __enter__(self) -> "ShardProcessPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request path --------------------------------------------------------

    def submit(self, image: np.ndarray, seed: Optional[int] = None) -> Future:
        """Enqueue one request (same contract as ``ReplicaPool.submit``)."""
        image = np.asarray(image, dtype=float)
        if image.size != self.n_input:
            self.metrics.record_rejected()
            raise ValueError(
                f"image has {image.size} pixels but the model expects "
                f"{self.n_input}"
            )
        if np.any(image < 0):
            self.metrics.record_rejected()
            raise ValueError("image intensities must be non-negative")
        request = PredictRequest(image=image, seed=seed)
        try:
            future = self.batcher.submit(request)
        except Exception:
            self.metrics.record_rejected()
            raise
        self.metrics.record_request()
        return future

    def predict(self, image: np.ndarray, seed: Optional[int] = None,
                timeout: Optional[float] = None) -> PredictResult:
        """Synchronous wrapper around :meth:`submit` (cancels on timeout)."""
        future = self.submit(image, seed=seed)
        try:
            return future.result(timeout)
        except FutureTimeoutError:
            future.cancel()
            raise

    def metrics_snapshot(self) -> dict:
        """Pool metrics plus the shard-supervision section."""
        drift = (self.drift_detector.state()
                 if self.drift_detector is not None else None)
        snapshot = self.metrics.snapshot(queue_depth=self.queue_depth,
                                         drift=drift)
        snapshot["backend"] = self.backend_name
        snapshot["model"] = self.model_name
        with self._lock:
            snapshot["shards"] = {
                "count": self.shards,
                "alive": sum(1 for handle in self._handles
                             if handle is not None and handle.alive),
                "respawns_total": self._respawns_total,
                "batches_by_shard": {
                    str(index): handle.batches
                    for index, handle in enumerate(self._handles)
                    if handle is not None
                },
            }
        return snapshot

    # -- supervision ---------------------------------------------------------

    def _spawn(self, index: int) -> _ShardHandle:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        ledger_root = str(self.ledger.root) if self.ledger is not None else None
        process = self._context.Process(
            target=_shard_main,
            args=(self.artifact_dir, self.backend, child_conn, index,
                  ledger_root),
            name=f"repro-shard-{index}", daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _ShardHandle(index, process, parent_conn)
        self._ledger_shard("spawned", index, process.pid)
        _log.info("shard_spawned", shard=index, pid=process.pid)
        return handle

    def _await_ready(self, handle: _ShardHandle) -> None:
        deadline = time.monotonic() + self.spawn_timeout_s
        while not handle.conn.poll(_POLL_S):
            if time.monotonic() > deadline:
                handle.kill()
                raise ShardCrashedError(
                    f"shard {handle.index} did not become ready within "
                    f"{self.spawn_timeout_s:.0f} s"
                )
            if not handle.alive:
                handle.kill()
                raise ShardCrashedError(
                    f"shard {handle.index} died during start-up "
                    f"(exitcode {handle.process.exitcode})"
                )
        message = handle.conn.recv()
        if message[0] != "ready":
            handle.kill()
            raise ShardCrashedError(
                f"shard {handle.index} failed to load the artifact: "
                f"{message[1] if len(message) > 1 else message[0]}"
            )

    def _respawn(self, index: int, dead: Optional[_ShardHandle]
                 ) -> _ShardHandle:
        if dead is not None:
            self._ledger_shard("crashed", index, dead.pid)
            _log.warning("shard_crashed", shard=index, pid=dead.pid)
            dead.kill()
        handle = self._spawn(index)
        self._await_ready(handle)
        with self._lock:
            self._handles[index] = handle
            self._respawns_total += 1
        self._ledger_shard("respawned", index, handle.pid)
        _log.info("shard_respawned", shard=index, pid=handle.pid)
        return handle

    def _retire(self, index: int, handle: _ShardHandle) -> None:
        """Ledger a mid-batch death and reap the dead process.

        Nulling the table slot without retiring the handle would lose it:
        the retrying attempt would respawn with ``dead=None``, the crash
        would never reach the ledger, and the dead process would never be
        joined.
        """
        with self._lock:
            if self._handles[index] is handle:
                self._handles[index] = None
        self._ledger_shard("crashed", index, handle.pid)
        _log.warning("shard_crashed", shard=index, pid=handle.pid)
        handle.kill()

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self, index: int) -> None:
        """Per-shard supervisor: claim batches, round-trip them, recover.

        The loop only exits when the batcher is closed and drained; a shard
        crash never takes the dispatcher (and therefore the listener) down.
        """
        while True:
            batch = self.batcher.next_batch(timeout=_POLL_S)
            if batch is None:
                return
            if not batch:
                continue
            self._serve_batch(index, batch)

    def _serve_batch(self, index: int,
                     batch: Sequence[PendingRequest]) -> None:
        started = time.perf_counter()
        traced = self.ledger is not None and any(
            pending.trace is not None for pending in batch
        )
        if traced:
            for pending in batch:
                if pending.trace is not None:
                    record_span(self.ledger, pending.trace.child(),
                                "queue_wait", started - pending.enqueued_at,
                                shard=index, batch_size=len(batch))
        payload = None
        if not traced:
            payload = [(pending.request.image, pending.request.seed, None)
                       for pending in batch]
        reply = None
        # One transparent retry on a fresh process: a batch interrupted by a
        # crash is usually served successfully by the respawned shard, so
        # callers only see ShardCrashedError when the failure repeats.
        for attempt in (0, 1):
            with self._lock:
                handle = self._handles[index]
            try:
                if handle is None or not handle.alive:
                    handle = self._respawn(index, handle)
            except ShardCrashedError as error:
                # The *replacement* failed to come up (the old death, if
                # any, was already ledgered by _respawn).
                with self._lock:
                    self._handles[index] = None
                if attempt == 1:
                    self._fail_batch(batch, error, started, index)
                    return
                continue
            rpc_ctxs = None
            if traced:
                # Fresh span ids per attempt: a retried RPC is a *second*
                # span of the same trace, flagged retry=1 — the worker
                # inherits the flag, so its spans mark the retry too.
                rpc_ctxs = [
                    pending.trace.child(retry=attempt)
                    if pending.trace is not None else None
                    for pending in batch
                ]
                payload = [
                    (pending.request.image, pending.request.seed,
                     ctx.to_dict() if ctx is not None else None)
                    for pending, ctx in zip(batch, rpc_ctxs)
                ]
            rpc_started = time.perf_counter()
            try:
                handle.conn.send(("predict", payload))
                reply = self._recv_reply(handle)
                self._record_rpc(rpc_ctxs, index, len(batch),
                                 time.perf_counter() - rpc_started)
                break
            except ShardCrashedError as error:
                self._record_rpc(rpc_ctxs, index, len(batch),
                                 time.perf_counter() - rpc_started,
                                 error=str(error))
                self._retire(index, handle)
                if attempt == 1:
                    self._fail_batch(batch, error, started, index)
                    return
            except (OSError, EOFError, BrokenPipeError) as error:
                self._record_rpc(rpc_ctxs, index, len(batch),
                                 time.perf_counter() - rpc_started,
                                 error=str(error))
                self._retire(index, handle)
                if attempt == 1:
                    self._fail_batch(
                        batch,
                        ShardCrashedError(
                            f"shard {index} died mid-batch ({error})"
                        ),
                        started, index,
                    )
                    return
        if reply is None:  # pragma: no cover - loop always breaks or returns
            return
        if reply[0] == "error":
            error = RuntimeError(reply[1])
            for pending in batch:
                _resolve(pending.future, error=error)
            self.metrics.record_errors(len(batch))
            _log.error("shard_batch_failed", shard=index, size=len(batch),
                       error=reply[1])
            self._ledger_batch(index, len(batch), [], outcome="error",
                               error=reply[1])
            return
        finished = time.perf_counter()
        results = [
            PredictResult(prediction=int(prediction), seed=int(seed),
                          spike_count=float(spike_count),
                          scores=np.asarray(scores))
            for prediction, seed, spike_count, scores in reply[1]
        ]
        for pending, result in zip(batch, results):
            _resolve(pending.future, result=result)
        handle.batches += 1
        latencies = [finished - pending.enqueued_at for pending in batch]
        self.metrics.record_batch(len(batch), latencies)
        self._ledger_batch(index, len(batch), latencies, outcome="ok")
        if self.drift_detector is not None:
            for result in results:
                self.drift_detector.observe(result.spike_count)

    def _record_rpc(self, rpc_ctxs, shard: int, size: int,
                    duration_s: float, error: Optional[str] = None) -> None:
        """One ``shard_rpc`` span per traced request of the attempt."""
        if not rpc_ctxs:
            return
        fields: Dict[str, object] = {"shard": int(shard),
                                     "batch_size": int(size)}
        if error is not None:
            fields["error"] = error
        for ctx in rpc_ctxs:
            if ctx is not None:
                record_span(self.ledger, ctx, "shard_rpc", duration_s,
                            **fields)

    def _recv_reply(self, handle: _ShardHandle):
        deadline = time.monotonic() + self.batch_timeout_s
        while not handle.conn.poll(_POLL_S):
            if not handle.alive:
                raise ShardCrashedError(
                    f"shard {handle.index} died mid-batch "
                    f"(exitcode {handle.process.exitcode})"
                )
            if time.monotonic() > deadline:
                handle.kill()
                raise ShardCrashedError(
                    f"shard {handle.index} exceeded the "
                    f"{self.batch_timeout_s:.0f} s batch deadline and was "
                    "killed"
                )
        return handle.conn.recv()

    def _fail_batch(self, batch: Sequence[PendingRequest],
                    error: Exception, started: float, index: int) -> None:
        for pending in batch:
            _resolve(pending.future, error=error)
        self.metrics.record_errors(len(batch))
        _log.error("shard_batch_lost", shard=index, size=len(batch),
                   error=str(error))
        self._ledger_batch(index, len(batch), [], outcome="crashed",
                           error=str(error))

    # -- ledger --------------------------------------------------------------

    def _ledger_batch(self, shard: int, size: int,
                      latencies_s: Sequence[float], outcome: str,
                      error: Optional[str] = None) -> None:
        if self.ledger is None:
            return
        entry: Dict[str, object] = {
            "kind": KIND_SERVING_BATCH,
            "outcome": outcome,
            "batch_size": int(size),
            "backend": self.backend_name,
            "model": self.model_name,
            "shard": int(shard),
        }
        entry.update(self.lineage)
        if latencies_s:
            entry["latency_mean_ms"] = round(
                1000.0 * sum(latencies_s) / len(latencies_s), 3
            )
            entry["latency_max_ms"] = round(1000.0 * max(latencies_s), 3)
        if error is not None:
            entry["error"] = error
        self.ledger.append(entry)

    def _ledger_shard(self, event: str, shard: int,
                      pid: Optional[int]) -> None:
        if self.ledger is None:
            return
        entry: Dict[str, object] = {
            "kind": KIND_SERVING_SHARD,
            "event": event,
            "shard": int(shard),
            "pid": pid,
            "model": self.model_name,
        }
        entry.update(self.lineage)
        self.ledger.append(entry)


def _resolve(future: Future, result=None, error=None) -> None:
    """Set a future's outcome, tolerating a concurrent ``cancel()``."""
    from concurrent.futures import InvalidStateError

    try:
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass

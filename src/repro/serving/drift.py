"""Online distribution-drift detection over per-request spike statistics.

The paper targets dynamic environments whose input distribution shifts over
time; offline, the scenario engine (:mod:`repro.scenarios.transforms`)
synthesizes exactly those shifts.  Online, the total excitatory spike count
of a request is a cheap, already-computed summary of how strongly the
learned receptive fields match the input — corrupted, washed-out, or
out-of-distribution traffic drives it away from the level the model was
trained at.

:class:`SpikeCountDriftDetector` freezes a *reference window* (mean/std of
the first ``window`` requests, or an explicitly provided baseline from
offline evaluation) and compares it with a rolling window of the most
recent requests.  The drift score is the shift of the rolling mean measured
in reference standard deviations; the alarm latches in ``/metrics`` once
the score crosses ``threshold``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

#: Guard against zero-variance reference windows.
_MIN_STD = 1e-9


class SpikeCountDriftDetector:
    """Rolling-window drift alarm over per-request spike counts.

    Parameters
    ----------
    window:
        Number of requests in both the reference and the rolling window.
    threshold:
        Alarm threshold in reference standard deviations.
    reference_mean, reference_std:
        Optional explicit baseline (e.g. measured on the offline evaluation
        set).  When omitted, the first ``window`` observations freeze the
        reference.
    """

    def __init__(self, window: int = 256, threshold: float = 3.0,
                 reference_mean: Optional[float] = None,
                 reference_std: Optional[float] = None) -> None:
        self.window = check_positive_int(window, "window")
        self.threshold = check_positive(threshold, "threshold")
        if (reference_mean is None) != (reference_std is None):
            raise ValueError(
                "reference_mean and reference_std must be provided together"
            )
        self._lock = threading.Lock()
        self._recent: Deque[float] = deque(maxlen=self.window)
        self._observed = 0
        self._alarmed = False
        self._reference_mean = (
            None if reference_mean is None else float(reference_mean)
        )
        self._reference_std = (
            None if reference_std is None else max(float(reference_std), _MIN_STD)
        )
        self._calibration: Optional[Deque[float]] = (
            deque(maxlen=self.window) if self._reference_mean is None else None
        )

    @property
    def calibrated(self) -> bool:
        """Whether the reference window is frozen."""
        with self._lock:
            return self._reference_mean is not None

    def observe(self, spike_count: float) -> None:
        """Feed one request's total excitatory spike count."""
        value = float(spike_count)
        with self._lock:
            self._observed += 1
            if self._reference_mean is None:
                self._calibration.append(value)
                if len(self._calibration) >= self.window:
                    baseline = np.asarray(self._calibration, dtype=float)
                    self._reference_mean = float(baseline.mean())
                    self._reference_std = max(float(baseline.std()), _MIN_STD)
                    self._calibration = None
                return
            self._recent.append(value)
            if len(self._recent) >= max(self.window // 4, 1):
                score = self._score_locked()
                if score is not None and score > self.threshold:
                    self._alarmed = True

    def _score_locked(self) -> Optional[float]:
        if self._reference_mean is None or not self._recent:
            return None
        recent_mean = float(np.mean(self._recent))
        return abs(recent_mean - self._reference_mean) / self._reference_std

    def state(self) -> Dict[str, object]:
        """JSON-safe drift state exposed under ``/metrics``."""
        with self._lock:
            score = self._score_locked()
            state: Dict[str, object] = {
                "observed": self._observed,
                "window": self.window,
                "threshold": self.threshold,
                "calibrated": self._reference_mean is not None,
                "alarm": self._alarmed,
            }
            if self._reference_mean is not None:
                state["reference_mean"] = self._reference_mean
                state["reference_std"] = self._reference_std
            if self._recent:
                state["recent_mean"] = float(np.mean(self._recent))
            if score is not None:
                state["score"] = score
        return state

    def reset_alarm(self) -> None:
        """Clear a latched alarm (the reference window is kept)."""
        with self._lock:
            self._alarmed = False

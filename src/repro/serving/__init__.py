"""Online inference serving: artifacts, micro-batching, replicas, HTTP API.

The serving subsystem turns a trained model into a concurrently-queryable
service::

    train --> save artifact --> ReplicaPool.from_artifact --> ModelServer

* :mod:`repro.serving.artifacts` — versioned, self-describing model
  artifacts (:func:`load_artifact`, :class:`ArtifactRegistry`);
* :mod:`repro.serving.inference` — seeded per-request encoding and the
  offline reference path serving is provably identical to;
* :mod:`repro.serving.batcher` — thread-safe micro-batching queue
  (``max_batch`` / ``max_wait_ms`` / backpressure);
* :mod:`repro.serving.pool` — worker threads each owning an independent
  model replica;
* :mod:`repro.serving.server` — stdlib HTTP API (``POST /predict``,
  ``GET /healthz``, ``GET /metrics`` in Prometheus text format,
  ``GET /metrics.json``) behind ``repro serve``;
* :mod:`repro.serving.metrics` / :mod:`repro.serving.drift` — request
  counters, batch-size histogram, latency quantiles, and the online
  spike-count drift alarm;
* :mod:`repro.serving.loadgen` — concurrency-controlled load generation for
  benchmarks, CI smoke tests, and examples.
"""

from repro.serving.artifacts import (
    MODEL_CLASSES,
    ArtifactRegistry,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.serving.batcher import MicroBatcher, QueueClosedError, QueueFullError
from repro.serving.drift import SpikeCountDriftDetector
from repro.serving.inference import (
    PredictionService,
    PredictRequest,
    PredictResult,
    derive_request_seed,
    encode_request,
    offline_predictions,
)
from repro.serving.loadgen import (
    LoadReport,
    fetch_json,
    fetch_text,
    http_sender,
    pool_sender,
    run_load,
    wait_until_healthy,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.pool import ReplicaPool
from repro.serving.server import ModelServer
from repro.utils.serialization import ArtifactError

__all__ = [
    "ArtifactError",
    "ArtifactRegistry",
    "LoadReport",
    "MicroBatcher",
    "MODEL_CLASSES",
    "ModelArtifact",
    "ModelServer",
    "PredictRequest",
    "PredictResult",
    "PredictionService",
    "QueueClosedError",
    "QueueFullError",
    "ReplicaPool",
    "ServingMetrics",
    "SpikeCountDriftDetector",
    "derive_request_seed",
    "encode_request",
    "fetch_json",
    "fetch_text",
    "http_sender",
    "load_artifact",
    "offline_predictions",
    "pool_sender",
    "run_load",
    "save_artifact",
    "wait_until_healthy",
]

"""Online inference serving: artifacts, shards, routing, HTTP ``/v1`` API.

The serving subsystem turns trained models into a concurrently-queryable,
multi-tenant service::

    train --> save artifact --> ShardProcessPool / ReplicaPool
          --> ModelRouter --> ModelServer (/v1)

* :mod:`repro.serving.artifacts` — versioned, self-describing model
  artifacts (:func:`load_artifact`, :class:`ArtifactRegistry`);
* :mod:`repro.serving.inference` — seeded per-request encoding and the
  offline reference path serving is provably identical to;
* :mod:`repro.serving.batcher` — thread-safe micro-batching queue
  (``max_batch`` / ``max_wait_ms`` / backpressure);
* :mod:`repro.serving.pool` — worker threads each owning an independent
  model replica (single-core friendly);
* :mod:`repro.serving.shards` — worker *processes* with crash supervision
  and respawn (multi-core throughput, fault isolation);
* :mod:`repro.serving.router` — the multi-tenant control plane: LRU model
  loading from the registry, per-tenant token-bucket rate limiting,
  per-model circuit breaker, bounded retry for transient shard failures;
* :mod:`repro.serving.errors` / :mod:`repro.serving.ratelimit` — the
  structured error envelope and the hardening primitives;
* :mod:`repro.serving.server` — stdlib HTTP API
  (``POST /v1/models/<name>/predict``, ``GET /v1/models``, per-model
  ``healthz``, Prometheus ``/v1/metrics``; deprecated pre-1.7 aliases)
  behind ``repro serve``;
* :mod:`repro.serving.metrics` / :mod:`repro.serving.drift` — request
  counters, batch-size histogram, latency quantiles, and the online
  spike-count drift alarm;
* :mod:`repro.serving.loadgen` — concurrency-controlled load generation for
  benchmarks, CI smoke tests, and examples.
"""

from repro.serving.artifacts import (
    MODEL_CLASSES,
    ArtifactRegistry,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.serving.batcher import MicroBatcher, QueueClosedError, QueueFullError
from repro.serving.drift import SpikeCountDriftDetector
from repro.serving.errors import (
    ApiError,
    CircuitOpenError,
    ModelNotFoundError,
    RateLimitedError,
    ShardCrashedError,
    error_envelope,
)
from repro.serving.inference import (
    PredictionService,
    PredictRequest,
    PredictResult,
    derive_request_seed,
    encode_request,
    offline_predictions,
)
from repro.serving.loadgen import (
    LoadReport,
    fetch_json,
    fetch_text,
    http_sender,
    pool_sender,
    run_load,
    wait_until_healthy,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.pool import ReplicaPool
from repro.serving.ratelimit import CircuitBreaker, TokenBucket
from repro.serving.router import ModelRouter
from repro.serving.server import ModelServer
from repro.serving.shards import ShardProcessPool
from repro.utils.serialization import ArtifactError

__all__ = [
    "ApiError",
    "ArtifactError",
    "ArtifactRegistry",
    "CircuitBreaker",
    "CircuitOpenError",
    "LoadReport",
    "MicroBatcher",
    "MODEL_CLASSES",
    "ModelArtifact",
    "ModelNotFoundError",
    "ModelRouter",
    "ModelServer",
    "PredictRequest",
    "PredictResult",
    "PredictionService",
    "QueueClosedError",
    "QueueFullError",
    "RateLimitedError",
    "ReplicaPool",
    "ServingMetrics",
    "ShardCrashedError",
    "ShardProcessPool",
    "SpikeCountDriftDetector",
    "TokenBucket",
    "derive_request_seed",
    "encode_request",
    "error_envelope",
    "fetch_json",
    "fetch_text",
    "http_sender",
    "load_artifact",
    "offline_predictions",
    "pool_sender",
    "run_load",
    "save_artifact",
    "wait_until_healthy",
]

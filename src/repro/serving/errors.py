"""Structured serving errors: one JSON envelope for every failure.

Every error the ``/v1`` API (and the deprecated legacy aliases) returns has
the same shape::

    {"error": {"code": "rate_limited", "message": "...", "detail": {...}}}

``code`` is a stable machine-readable identifier from the small vocabulary
below, ``message`` is human-readable, and ``detail`` carries optional
structured context (the offending field, the retry budget, ...).  The
:class:`~repro.client.ServingClient` raises typed exceptions mirroring the
same vocabulary, so a client never has to parse prose.

Retryable rejections (rate limiting, queue backpressure, an open circuit
breaker) additionally carry ``retry_after_s``, which the HTTP layer turns
into a ``Retry-After`` response header.
"""

from __future__ import annotations

from typing import Dict, Optional

# -- stable error codes ------------------------------------------------------

CODE_INVALID_REQUEST = "invalid_request"
CODE_NOT_FOUND = "not_found"
CODE_PAYLOAD_TOO_LARGE = "payload_too_large"
CODE_RATE_LIMITED = "rate_limited"
CODE_QUEUE_FULL = "queue_full"
CODE_CIRCUIT_OPEN = "circuit_open"
CODE_SHUTTING_DOWN = "shutting_down"
CODE_UPSTREAM_FAILURE = "upstream_failure"
CODE_TIMEOUT = "timeout"
CODE_INTERNAL = "internal"

#: Default HTTP status of each code (the handler may override).
CODE_STATUS: Dict[str, int] = {
    CODE_INVALID_REQUEST: 400,
    CODE_NOT_FOUND: 404,
    CODE_PAYLOAD_TOO_LARGE: 413,
    CODE_RATE_LIMITED: 429,
    CODE_QUEUE_FULL: 429,
    CODE_CIRCUIT_OPEN: 503,
    CODE_SHUTTING_DOWN: 503,
    CODE_UPSTREAM_FAILURE: 503,
    CODE_TIMEOUT: 504,
    CODE_INTERNAL: 500,
}


def error_envelope(code: str, message: str,
                   detail: Optional[dict] = None) -> dict:
    """The canonical JSON error body (``detail`` is always present)."""
    return {"error": {"code": str(code), "message": str(message),
                      "detail": dict(detail) if detail else None}}


class ApiError(Exception):
    """A serving failure with a stable code, HTTP status, and detail.

    The HTTP handler serializes any raised :class:`ApiError` straight into
    the JSON envelope; everything the response needs rides on the
    exception, so the routing layer can raise from any depth.
    """

    def __init__(self, code: str, message: str, *,
                 status: Optional[int] = None,
                 detail: Optional[dict] = None,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = int(status if status is not None
                          else CODE_STATUS.get(code, 500))
        self.detail = dict(detail) if detail else None
        self.retry_after_s = retry_after_s

    def envelope(self) -> dict:
        return error_envelope(self.code, self.message, self.detail)

    @property
    def retry_after_header(self) -> Optional[str]:
        """``Retry-After`` header value (integer seconds, >= 1) if any."""
        if self.retry_after_s is None:
            return None
        return str(max(1, int(-(-float(self.retry_after_s) // 1))))


class RateLimitedError(ApiError):
    """A tenant exhausted its token bucket; retry after the bucket refills."""

    def __init__(self, message: str, *, retry_after_s: float,
                 detail: Optional[dict] = None) -> None:
        super().__init__(CODE_RATE_LIMITED, message,
                         retry_after_s=retry_after_s, detail=detail)


class CircuitOpenError(ApiError):
    """The model's circuit breaker is shedding load; retry after reset."""

    def __init__(self, message: str, *, retry_after_s: float,
                 detail: Optional[dict] = None) -> None:
        super().__init__(CODE_CIRCUIT_OPEN, message,
                         retry_after_s=retry_after_s, detail=detail)


class ModelNotFoundError(ApiError):
    """No such model (or version) in the registry or the loaded set."""

    def __init__(self, message: str, detail: Optional[dict] = None) -> None:
        super().__init__(CODE_NOT_FOUND, message, detail=detail)


class ShardCrashedError(RuntimeError):
    """A shard process died (or hung past its deadline) mid-request.

    Transient by design: the dispatcher respawns the shard, so a bounded
    retry at the routing layer normally succeeds.  Only when retries are
    exhausted does the HTTP layer surface it as a 503 envelope.
    """

"""Load generation: drive a serving target at configurable concurrency.

The generator is target-agnostic: a *sender* is any callable taking
``(image, seed)`` and returning the predicted class (raising on failure).
:func:`pool_sender` drives a :class:`~repro.serving.pool.ReplicaPool`
in-process (what the benchmarks use — no HTTP noise in the measurement);
:func:`http_sender` drives a running server over HTTP through
:class:`~repro.client.ServingClient` — the ``/v1`` model route when a
model is named, the deprecated ``/predict`` alias otherwise (what the CI
smoke test and the example use).

:func:`run_load` fans ``n`` requests over ``concurrency`` client threads
pulling from a shared work queue, records per-request latency and the
prediction of every request *by request index*, and returns a
:class:`LoadReport` — so callers can assert the served predictions against
:func:`~repro.serving.inference.offline_predictions` as well as measure
throughput.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.pool import ReplicaPool
from repro.utils.validation import check_positive_int

#: A sender maps ``(image, seed)`` to the predicted class.
Sender = Callable[[np.ndarray, Optional[int]], int]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    n_requests: int
    concurrency: int
    elapsed_s: float
    predictions: np.ndarray = field(repr=False)
    latencies_s: np.ndarray = field(repr=False)
    errors: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> int:
        """Number of successful requests."""
        return self.n_requests - len(self.errors)

    @property
    def throughput_rps(self) -> float:
        """Successful requests per second of wall-clock."""
        if self.elapsed_s <= 0:
            return float("inf")
        return self.ok / self.elapsed_s

    def latency_quantile_ms(self, quantile: float) -> float:
        """Latency quantile (e.g. 50, 95, 99) over successful requests."""
        if self.latencies_s.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies_s, quantile) * 1000.0)

    def summary(self) -> Dict[str, object]:
        """JSON-safe summary of the run."""
        return {
            "requests": self.n_requests,
            "ok": self.ok,
            "errors": len(self.errors),
            "concurrency": self.concurrency,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_quantile_ms(50),
            "latency_p95_ms": self.latency_quantile_ms(95),
            "latency_p99_ms": self.latency_quantile_ms(99),
        }


def pool_sender(pool: ReplicaPool,
                timeout: Optional[float] = 60.0) -> Sender:
    """Sender driving a replica pool in-process (no HTTP)."""

    def send(image: np.ndarray, seed: Optional[int]) -> int:
        return pool.predict(image, seed=seed, timeout=timeout).prediction

    return send


def http_sender(url: str, timeout: float = 30.0, *,
                model: Optional[str] = None,
                version: Optional[str] = None,
                tenant: Optional[str] = None,
                retries: int = 0) -> Sender:
    """Sender driving a server through :class:`~repro.client.ServingClient`.

    ``model=None`` posts to the deprecated ``/predict`` alias; naming a
    model (and optionally a version) posts to the ``/v1`` route.
    ``retries=0`` keeps every failure visible to the load report; smoke
    tests that only care about steady state pass a positive budget.
    """
    from repro.client import ServingClient

    client = ServingClient(url, timeout=timeout, retries=retries,
                           tenant=tenant)

    def send(image: np.ndarray, seed: Optional[int]) -> int:
        body = client.predict(np.asarray(image, dtype=float).ravel(),
                              seed=seed, model=model, version=version)
        return int(body["prediction"])

    return send


def fetch_json(url: str, path: str, timeout: float = 10.0) -> dict:
    """GET ``<url><path>`` and decode the JSON body (/healthz, /metrics.json)."""
    with urllib.request.urlopen(url.rstrip("/") + path, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_text(url: str, path: str, timeout: float = 10.0) -> str:
    """GET ``<url><path>`` and return the raw text body (Prometheus /metrics)."""
    with urllib.request.urlopen(url.rstrip("/") + path, timeout=timeout) as response:
        return response.read().decode("utf-8")


def wait_until_healthy(url: str, timeout: float = 30.0,
                       interval: float = 0.2) -> dict:
    """Poll ``GET /healthz`` until it answers 200 or ``timeout`` elapses."""
    deadline = time.perf_counter() + timeout
    last_error: Optional[Exception] = None
    while time.perf_counter() < deadline:
        try:
            return fetch_json(url, "/healthz", timeout=interval * 10)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as error:
            last_error = error
            time.sleep(interval)
    raise TimeoutError(
        f"server at {url} did not become healthy within {timeout:.0f} s "
        f"(last error: {last_error})"
    )


def run_load(send: Sender, images: Sequence[np.ndarray],
             seeds: Optional[Sequence[Optional[int]]] = None,
             concurrency: int = 16) -> LoadReport:
    """Fire one request per image at ``concurrency`` and collect the report.

    Requests are pulled from a shared index queue by ``concurrency`` client
    threads; predictions land at their request's index, so the report's
    ``predictions`` array lines up with ``images``/``seeds`` for offline
    comparison.
    """
    check_positive_int(concurrency, "concurrency")
    n = len(images)
    if n == 0:
        raise ValueError("at least one request image is required")
    if seeds is None:
        seeds = [None] * n
    if len(seeds) != n:
        raise ValueError(f"got {n} images but {len(seeds)} seeds")

    predictions = np.full(n, -1, dtype=int)
    latencies = np.full(n, np.nan, dtype=float)
    errors: List[Tuple[int, str]] = []
    errors_lock = threading.Lock()
    cursor = iter(range(n))
    cursor_lock = threading.Lock()

    def client() -> None:
        while True:
            with cursor_lock:
                index = next(cursor, None)
            if index is None:
                return
            started = time.perf_counter()
            try:
                prediction = send(np.asarray(images[index], dtype=float),
                                  seeds[index])
            except Exception as error:  # noqa: BLE001 - recorded per request
                with errors_lock:
                    errors.append((index, f"{type(error).__name__}: {error}"))
                continue
            latencies[index] = time.perf_counter() - started
            predictions[index] = int(prediction)

    threads = [
        threading.Thread(target=client, name=f"repro-loadgen-{i}", daemon=True)
        for i in range(min(concurrency, n))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    return LoadReport(
        n_requests=n,
        concurrency=concurrency,
        elapsed_s=elapsed,
        predictions=predictions,
        latencies_s=latencies[~np.isnan(latencies)],
        errors=sorted(errors),
    )

"""Stdlib HTTP/JSON front end for a replica pool.

Endpoints
---------
``POST /predict``
    Body ``{"image": [...], "seed": 123}`` (``seed`` optional; the image is
    a flat or nested list of ``n_input`` pixel intensities).  Responds with
    the prediction, per-class scores, the resolved seed, the spike count,
    and the request's server-side latency.  ``400`` on malformed input,
    ``503`` when the queue sheds load, ``504`` when the request times out.
``GET /healthz``
    Liveness/readiness: status, model identity, worker count, queue depth.
``GET /metrics``
    Prometheus text exposition format (version 0.0.4): request/response/
    error counters, queue-depth and latency-quantile gauges, the batch-size
    histogram with cumulative buckets, drift-detector gauges, and an
    info-style identity gauge — directly scrapeable by a Prometheus
    ``scrape_config``.
``GET /metrics.json``
    The same :class:`~repro.serving.metrics.ServingMetrics` snapshot as
    JSON (the pre-1.6 ``/metrics`` contract, unchanged).

Implementation notes: ``ThreadingHTTPServer`` gives one handler thread per
connection — handlers block on the request future while the replica pool's
workers do the actual batched inference, so concurrent connections are what
fills micro-batches.  Everything is stdlib (``http.server`` + ``json``);
there is deliberately no framework dependency.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import CancelledError, TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
)
from repro.observability.structlog import get_struct_logger
from repro.serving.batcher import QueueClosedError, QueueFullError
from repro.serving.pool import ReplicaPool

_log = get_struct_logger("serving.server")

#: Largest accepted request body (a 64x64 float image in JSON is ~100 KiB).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Default per-request wall-clock budget awaiting a worker result.
DEFAULT_REQUEST_TIMEOUT_S = 30.0


class _ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the pool/server references."""

    daemon_threads = True
    allow_reuse_address = True
    # The socketserver default listen backlog (5) drops/resets connections
    # when a burst of clients connects at once — exactly the load-generator
    # and CI-hammer shape.  A deeper accept queue absorbs the burst.
    request_queue_size = 128

    pool: ReplicaPool
    request_timeout_s: float
    quiet: bool


class _Handler(BaseHTTPRequestHandler):
    server: _ServingHTTPServer

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:  # pragma: no cover - CLI verbose mode
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        _log.warning("request_rejected", path=self.path, status=status,
                     error=message)
        self._send_json(status, {"error": message})

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    # -- GET -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        pool = self.server.pool
        if self.path == "/healthz":
            self._send_json(200, {
                "status": "ok" if pool.running else "stopped",
                "model": pool.model_name,
                "n_input": pool.n_input,
                "workers": pool.workers,
                "queue_depth": pool.queue_depth,
                "max_batch": pool.batcher.max_batch,
                "max_wait_ms": pool.batcher.max_wait_ms,
            })
        elif self.path == "/metrics":
            self._send_text(200, render_prometheus(pool.metrics_snapshot()),
                            PROMETHEUS_CONTENT_TYPE)
        elif self.path == "/metrics.json":
            self._send_json(200, pool.metrics_snapshot())
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    # -- POST ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path != "/predict":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "invalid Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_error_json(
                400, f"request body must be 1..{MAX_BODY_BYTES} bytes"
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_json(400, f"request body is not valid JSON: {error}")
            return
        parsed = self._parse_predict(payload)
        if parsed is None:
            return
        image, seed = parsed

        pool = self.server.pool
        try:
            future = pool.submit(image, seed=seed)
        except QueueFullError as error:
            self._send_error_json(503, str(error))
            return
        except QueueClosedError:
            self._send_error_json(503, "server is shutting down")
            return
        except ValueError as error:
            self._send_error_json(400, str(error))
            return
        try:
            result = future.result(self.server.request_timeout_s)
        except FutureTimeoutError:
            future.cancel()
            self._send_error_json(504, "request timed out awaiting a worker")
            return
        except CancelledError:
            self._send_error_json(503, "request was cancelled at shutdown")
            return
        except Exception as error:  # noqa: BLE001 - worker-side failure
            self._send_error_json(500, f"inference failed: {error}")
            return
        body = result.to_dict()
        body["model"] = pool.model_name
        self._send_json(200, body)

    def _parse_predict(self, payload: object) -> Optional[Tuple[np.ndarray, Optional[int]]]:
        """Validate the /predict payload; sends the 400 itself on failure."""
        if not isinstance(payload, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        if "image" not in payload:
            self._send_error_json(400, "request is missing the 'image' field")
            return None
        try:
            image = np.asarray(payload["image"], dtype=float)
        except (TypeError, ValueError):
            self._send_error_json(400, "'image' must be a (nested) list of numbers")
            return None
        if not np.all(np.isfinite(image)):
            self._send_error_json(400, "'image' contains non-finite values")
            return None
        if np.any(image < 0):
            self._send_error_json(400, "'image' intensities must be "
                                       "non-negative")
            return None
        seed = payload.get("seed")
        if seed is not None:
            if isinstance(seed, bool) or not isinstance(seed, int):
                self._send_error_json(400, "'seed' must be an integer")
                return None
        return image, seed


class ModelServer:
    """Lifecycle wrapper: bind, serve (optionally in the background), stop.

    Parameters
    ----------
    pool:
        The (started or not-yet-started) replica pool to serve.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`address`).
    request_timeout_s:
        Per-request budget awaiting a worker result before ``504``.
    quiet:
        Suppress the per-request access log (default; the CLI turns it on
        with ``-v``).
    """

    def __init__(self, pool: ReplicaPool, host: str = "127.0.0.1",
                 port: int = 0, *,
                 request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
                 quiet: bool = True) -> None:
        self.pool = pool
        self._httpd = _ServingHTTPServer((host, port), _Handler)
        self._httpd.pool = pool
        self._httpd.request_timeout_s = float(request_timeout_s)
        self._httpd.quiet = bool(quiet)
        self._thread: Optional[threading.Thread] = None
        self._serving = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral ports."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ModelServer":
        """Start the pool and serve requests from a background thread."""
        self.pool.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http", daemon=True,
            )
            self._thread.start()
        host, port = self.address
        _log.info("server_started", host=host, port=port,
                  model=self.pool.model_name, workers=self.pool.workers)
        return self

    def serve_forever(self) -> None:
        """Start the pool and serve on the calling thread (CLI mode)."""
        self.pool.start()
        self._serving = True
        try:
            self._httpd.serve_forever()
        finally:
            self._serving = False

    def stop(self) -> None:
        """Stop accepting connections, then drain and stop the pool.

        ``shutdown()`` blocks until the serve loop acknowledges, so it is
        only issued when a loop is (or was) actually running — calling
        :meth:`stop` on a server whose loop never started must not hang.
        """
        if self._thread is not None or self._serving:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None
        self.pool.stop()

    def __enter__(self) -> "ModelServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
